"""Machine codings of the 24 Livermore loops for the MultiTitan.

Each ``_kNN(ctx)`` emits one loop through the Mahler-style vector builder
(:mod:`repro.vectorize`), falling back to raw program-builder code for the
index-heavy particle/search kernels.  Vector codings exist for the loops
the paper's Mahler recoding vectorized; ``ctx.vl == 1`` yields the scalar
coding from the same emitters ("scalar operations are simply vector
operations of length one").

Loops 13-17 mirror the simplified reference semantics in
:mod:`repro.workloads.livermore.reference`; loops 15 and 22 call inline
software subroutines for sqrt (Heron from a linear seed) and exp
(quarter-argument Taylor series, squared twice), standing in for the
scalar library calls the paper mentions for loop 22.
"""

from dataclasses import dataclass

from repro.cpu import isa
from repro.mem.memory import WORD_BYTES
from repro.workloads.livermore.data import JN18, PIC_GRID


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _to_int(ctx, value, scratch_reg, scratch_off, dest_int, mask_reg=None):
    """Move an FPU value to a CPU register, truncating toward zero.

    The MultiTitan has no FPU->CPU move, so the value travels through
    memory: truncate, store, integer load (plus an optional mask).
    """
    pb, vb = ctx.pb, ctx.vb
    t = vb.scalar_temp()
    pb.ftrunc(t.reg, value.reg)
    pb.fstore(t.reg, scratch_reg, scratch_off)
    pb.lw(dest_int, scratch_reg, scratch_off)
    if mask_reg is not None:
        pb.and_(dest_int, dest_int, mask_reg)


def _int_to_float(ctx, int_reg, scratch_reg, scratch_off):
    """CPU integer -> FPU double, again through memory plus ``float``."""
    pb, vb = ctx.pb, ctx.vb
    pb.sw(int_reg, scratch_reg, scratch_off)
    raw = vb.scalar_temp()
    pb.fload(raw.reg, scratch_reg, scratch_off)
    result = vb.scalar_temp()
    pb.ffloat(result.reg, raw.reg)
    return result


def _emit_max_into(ctx, dest, a, b, cond_reg):
    """dest = max(a, b) via a compare and conditional move."""
    pb, vb = ctx.pb, ctx.vb
    vb.move_into(dest, a)
    pb.fcmp(cond_reg, a.reg, b.reg, isa.CMP_LT)
    skip = pb.label()
    pb.beq(cond_reg, 0, skip)
    vb.move_into(dest, b)
    pb.place(skip)


def _heron_sqrt(vb, x, half, one, iterations=5):
    """sqrt(x) for x in roughly [0.25, 8]: linear seed + Heron iterations.

    Every divide inside is the six-operation Newton schedule, so one
    square root costs ~40 FPU operations -- a software subroutine, as the
    paper's Modula-2 codings would have called.
    """
    y = vb.mul(vb.add(one, x), half)
    for _ in range(iterations):
        d = vb.div(x, y)
        y = vb.mul(vb.add(y, d), half, into=y)
    return y


def _exp_poly(vb, y, quarter, one, inv_factorials):
    """exp(y) for y in [0, ~2]: Taylor on y/4, then square twice."""
    q = vb.mul(y, quarter)
    p = vb.move(inv_factorials[-1])
    for coeff in reversed(inv_factorials[:-1]):
        p = vb.mul(p, q, into=p)
        p = vb.add(p, coeff, into=p)
    p = vb.mul(p, q, into=p)
    p = vb.add(p, one, into=p)
    p = vb.mul(p, p, into=p)
    p = vb.mul(p, p, into=p)
    return p


# ---------------------------------------------------------------------------
# kernels 1..12 (the "vectorizable first half")
# ---------------------------------------------------------------------------

def _k01(ctx):
    vb, n = ctx.vb, ctx.n
    x = ctx.array("x")
    y = ctx.array("y")
    z = ctx.array("z")
    par = ctx.array("params")
    q = vb.scalar_load(par, 0)
    r = vb.scalar_load(par, 1)
    t = vb.scalar_load(par, 2)

    def body(vl):
        za = vb.vload(z, 10, vl=vl)
        za = vb.mul(za, r, into=za)
        zb = vb.vload(z, 11, vl=vl)
        zb = vb.mul(zb, t, into=zb)
        s = vb.add(za, zb, into=za)
        yv = vb.vload(y, 0, vl=vl)
        e = vb.mul(yv, s, into=yv)
        e = vb.add(q, e, into=e)
        vb.vstore(x, e)

    vb.strip_loop(n, body)


def _k02(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    x_addr, v_addr = ctx.addr("x"), ctx.addr("v")
    xr = ctx.array("x", step=2)
    vv = ctx.array("v", step=2)
    xw = ctx.array("x", step=1)

    def body(vl):
        xk = vb.vload(xr, 0, vl=vl)
        xm = vb.vload(xr, -1, vl=vl)
        xp = vb.vload(xr, 1, vl=vl)
        vk = vb.vload(vv, 0, vl=vl)
        vk1 = vb.vload(vv, 1, vl=vl)
        a = vb.mul(vk, xm, into=xm)
        b = vb.mul(vk1, xp, into=xp)
        e = vb.sub(xk, a, into=xk)
        e = vb.sub(e, b, into=e)
        vb.vstore(xw, e)

    ii, ipntp = n, 0
    while ii > 1:
        ipnt = ipntp
        ipntp += ii
        ii //= 2
        count = len(range(ipnt + 1, ipntp, 2))
        vb.rebase(xr, x_addr + (ipnt + 1) * WORD_BYTES)
        vb.rebase(vv, v_addr + (ipnt + 1) * WORD_BYTES)
        vb.rebase(xw, x_addr + ipntp * WORD_BYTES)
        # The last iteration of every level reads x[ipntp], which the
        # first iteration of the same level writes; run it as a scalar
        # tail after the strips have stored their results.
        vb.strip_loop(count - 1, body)
        vb.fpu.mark()
        body(1)
        vb.fpu.release()


def _k03(ctx):
    vb, n = ctx.vb, ctx.n
    x = ctx.array("x")
    z = ctx.array("z")
    acc = vb.scalar_temp()
    vb.move_into(acc, vb.zero())

    def body(vl):
        zv = vb.vload(z, 0, vl=vl)
        xv = vb.vload(x, 0, vl=vl)
        p = vb.mul(zv, xv, into=zv)
        s = vb.vsum(p)
        vb.add(acc, s, into=acc)

    vb.strip_loop(n, body)
    ctx.store_scalar_result("q", acc)


def _k04(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    m = ctx.const("m")
    x = ctx.array("x")
    y5 = ctx.array("y", step=5)
    xz = ctx.array("xz")
    y4 = vb.scalar_load(ctx.array("y"), 4)
    temp = vb.scalar_temp()
    count = len(range(4, n, 5))

    def body(vl):
        yv = vb.vload(y5, 0, vl=vl)
        xzv = vb.vload(xz, 0, vl=vl)
        p = vb.mul(xzv, yv, into=xzv)
        s = vb.vsum(p)
        vb.sub(temp, s, into=temp)

    for k in (6, 6 + m, 6 + 2 * m):
        vb.rebase(y5, ctx.addr("y") + 4 * WORD_BYTES)
        vb.rebase(xz, ctx.addr("xz") + (k - 6) * WORD_BYTES)
        pb.fload(temp.reg, x.reg, (k - 1) * WORD_BYTES)
        vb.strip_loop(count, body)
        vb.fpu.mark()
        result = vb.mul(y4, temp)
        pb.fstore(result.reg, x.reg, (k - 1) * WORD_BYTES)
        vb.fpu.release()


def _k05(ctx):
    """First-order recurrence, software-pipelined: each 4-element block
    issues all its loads up front (they slide under the previous block's
    dependence chain through the Load/Store IR), then runs the chained
    subtract/multiply pairs with the stores interleaved."""
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    x = ctx.array("x", offset_words=1)
    y = ctx.array("y", offset_words=1)
    z = ctx.array("z", offset_words=1)
    xprev = vb.scalar_temp()
    pb.fload(xprev.reg, x.reg, -WORD_BYTES)  # x[0]
    unroll = 4

    def emit_block(copies):
        vb.fpu.mark()
        ys = [vb.load_elem(y, i) for i in range(copies)]
        zs = [vb.load_elem(z, i) for i in range(copies)]
        for i in range(copies):
            t = vb.sub(ys[i], xprev)
            vb.mul(zs[i], t, into=xprev)
            vb.store_elem(x, xprev, offset=i)
        vb.fpu.release()
        for array in (x, y, z):
            pb.addi(array.reg, array.reg, copies * WORD_BYTES)

    full, remainder = divmod(n - 1, unroll)
    if full == 1:
        emit_block(unroll)
    elif full > 1:
        counter, count = vb.int_temp(), vb.int_temp()
        pb.li(counter, 0)
        pb.li(count, full)
        top = pb.here()
        emit_block(unroll)
        pb.addi(counter, counter, 1)
        pb.blt(counter, count, top)
    if remainder:
        emit_block(remainder)


def _k06(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    bcol = ctx.array("b")
    wrev = ctx.array("w", step=-1)
    wio = ctx.array("w")
    acc = vb.scalar_temp()

    for i in range(1, n):
        vb.rebase(bcol, ctx.addr("b") + (i * n) * WORD_BYTES)
        vb.rebase(wrev, ctx.addr("w") + (i - 1) * WORD_BYTES)
        vb.move_into(acc, vb.zero())

        def body(vl):
            bv = vb.vload(bcol, 0, vl=vl)
            wv = vb.vload(wrev, 0, vl=vl)
            p = vb.mul(bv, wv, into=bv)
            s = vb.vsum(p)
            vb.add(acc, s, into=acc)

        vb.strip_loop(i, body)
        vb.fpu.mark()
        wi = vb.scalar_temp()
        pb.fload(wi.reg, wio.reg, i * WORD_BYTES)
        result = vb.add(wi, acc)
        pb.fstore(result.reg, wio.reg, i * WORD_BYTES)
        vb.fpu.release()


def _k07(ctx):
    vb, n = ctx.vb, ctx.n
    x = ctx.array("x")
    y = ctx.array("y")
    z = ctx.array("z")
    u = ctx.array("u")
    par = ctx.array("params")
    q = vb.scalar_load(par, 0)
    r = vb.scalar_load(par, 1)
    t = vb.scalar_load(par, 2)

    def body(vl):
        a = vb.vload(u, 4, vl=vl)
        a = vb.mul(a, q, into=a)
        b = vb.vload(u, 5, vl=vl)
        a = vb.add(b, a, into=a)
        a = vb.mul(a, q, into=a)
        c = vb.vload(u, 6, vl=vl)
        a = vb.add(c, a, into=a)
        a = vb.mul(a, t, into=a)              # t-free inner: t*(u6+q*(u5+q*u4))
        e = vb.vload(u, 1, vl=vl)
        e = vb.mul(e, r, into=e)
        d = vb.vload(u, 2, vl=vl)
        d = vb.add(d, e, into=d)
        d = vb.mul(d, r, into=d)              # r*(u2+r*u1)
        g = vb.vload(u, 3, vl=vl)
        d = vb.add(g, d, into=d)
        a = vb.add(d, a, into=a)
        a = vb.mul(a, t, into=a)              # t*(u3+r*(..)+t*(..))
        h = vb.vload(y, 0, vl=vl)
        h = vb.mul(h, r, into=h)
        zz = vb.vload(z, 0, vl=vl)
        h = vb.add(zz, h, into=h)
        h = vb.mul(h, r, into=h)              # r*(z+r*y)
        uu = vb.vload(u, 0, vl=vl)
        h = vb.add(uu, h, into=h)
        a = vb.add(h, a, into=a)
        vb.vstore(x, a)

    vb.strip_loop(n, body)


def _k08(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    par = ctx.array("params")
    coefficients = [vb.scalar_load(par, i) for i in range(9)]  # a11..a33
    sig = vb.scalar_load(par, 9)
    two = vb.scalar_load(par, 10)
    rows = [coefficients[0:3], coefficients[3:6], coefficients[6:9]]
    nl1_offset = 0
    nl2_offset = 5 * (n + 2)

    u_handles = [ctx.array(name, step=5) for name in ("u1", "u2", "u3")]
    du_handles = [ctx.array(name, offset_words=2, step=1)
                  for name in ("du1", "du2", "du3")]

    from repro.vectorize.builder import VVec

    def make_body(kx):
        def body(vl):
            du_groups = [VVec(vb.fpu.alloc(vl), vl) if vl > 1
                         else vb.scalar_temp() for _ in range(3)]
            vb.fpu.mark()
            for uh, dug, duh in zip(u_handles, du_groups, du_handles):
                up = vb.vload(uh, 5, vl=vl)
                dn = vb.vload(uh, -5, vl=vl)
                vb.sub(up, dn, into=dug)
                vb.vstore(duh, dug)
            vb.fpu.release()
            for uh, (c1, c2, c3) in zip(u_handles, rows):
                vb.fpu.mark()
                center = vb.vload(uh, 0, vl=vl)
                right = vb.vload(uh, 1, vl=vl)
                left = vb.vload(uh, -1, vl=vl)
                t1 = vb.mul(center, two)
                stencil = vb.sub(right, t1, into=right)
                stencil = vb.add(stencil, left, into=stencil)
                stencil = vb.mul(stencil, sig, into=stencil)
                acc = vb.mul(du_groups[0], c1)
                term = vb.mul(du_groups[1], c2)
                acc = vb.add(acc, term, into=acc)
                term = vb.mul(du_groups[2], c3, into=term)
                acc = vb.add(acc, term, into=acc)
                acc = vb.add(center, acc, into=acc)
                acc = vb.add(acc, stencil, into=acc)
                vb.vstore(uh, acc, offset=nl2_offset)
                vb.fpu.release()
        return body

    for kx in (1, 2):
        for uh, name in zip(u_handles, ("u1", "u2", "u3")):
            vb.rebase(uh, ctx.addr(name) + (kx + 5 * 2) * WORD_BYTES)
        for duh, name in zip(du_handles, ("du1", "du2", "du3")):
            vb.rebase(duh, ctx.addr(name) + 2 * WORD_BYTES)
        vb.strip_loop(n - 2, make_body(kx))


def _k09(ctx):
    vb, n = ctx.vb, ctx.n
    px = ctx.array("px", step=25)
    par = ctx.array("params")
    dm = [vb.scalar_load(par, i) for i in range(7)]  # dm22..dm28
    c0 = vb.scalar_load(par, 7)

    def body(vl):
        acc = vb.vload(px, 12, vl=vl)
        acc = vb.mul(acc, dm[6], into=acc)
        for row, coeff in ((11, dm[5]), (10, dm[4]), (9, dm[3]), (8, dm[2]),
                           (7, dm[1]), (6, dm[0])):
            vb.fpu.mark()
            t = vb.vload(px, row, vl=vl)
            t = vb.mul(t, coeff, into=t)
            vb.add(acc, t, into=acc)
            vb.fpu.release()
        vb.fpu.mark()
        t4 = vb.vload(px, 4, vl=vl)
        t5 = vb.vload(px, 5, vl=vl)
        t = vb.add(t4, t5, into=t4)
        t = vb.mul(t, c0, into=t)
        vb.add(acc, t, into=acc)
        vb.fpu.release()
        vb.fpu.mark()
        t2 = vb.vload(px, 2, vl=vl)
        vb.add(acc, t2, into=acc)
        vb.fpu.release()
        vb.vstore(px, acc, offset=0)

    vb.strip_loop(n, body)


def _k10(ctx):
    vb, n = ctx.vb, ctx.n
    px = ctx.array("px", step=25)
    cx = ctx.array("cx", step=25)

    def body(vl):
        prev = vb.vload(cx, 4, vl=vl)
        for row in range(4, 13):
            cur = vb.vload(px, row, vl=vl)
            diff = vb.sub(prev, cur, into=cur)
            vb.vstore(px, prev, offset=row)
            prev = diff
        vb.vstore(px, prev, offset=13)

    vb.strip_loop(n, body)


def _k11(ctx):
    vb, n = ctx.vb, ctx.n
    x = ctx.array("x")
    y = ctx.array("y")
    seed = vb.scalar_temp()
    vb.move_into(seed, vb.zero())

    def body(vl):
        yv = vb.vload(y, 0, vl=vl)
        if vl == 1:
            vb.add(seed, yv, into=seed)
            vb.store_elem(x, seed)
            return
        prefix = vb.recurrence_add(seed, yv)
        vb.vstore(x, prefix)
        vb.move_into(seed, prefix.elem(vl - 1))

    vb.strip_loop(n, body)


def _k12(ctx):
    """First difference via one overlapping register group: y[k..k+vl]
    loads once, then ``R[d..] := R[g+1..] - R[g..]`` reads the group at
    two offsets -- impossible with indivisible vector registers, free in
    the unified file."""
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    x = ctx.array("x")
    y = ctx.array("y")

    def body(vl):
        from repro.vectorize.builder import VVec
        group = VVec(vb.fpu.alloc(vl + 1), vl + 1)
        vb._note_touch(y)
        for i in range(vl + 1):
            pb.fload(group.first + i, y.reg, i * WORD_BYTES)
        diff = VVec(vb.fpu.alloc(vl), vl)
        pb.fsub(diff.first, group.first + 1, group.first, vl=vl)
        vb.vstore(x, diff)

    vb.strip_loop(n, body)


# ---------------------------------------------------------------------------
# kernels 13..24 (index-heavy, conditional, and recurrent kernels)
# ---------------------------------------------------------------------------

def _k13(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    grid, mask = PIC_GRID, PIC_GRID - 1
    shift = grid.bit_length() - 1
    p = ctx.array("p", step=4)
    b_h = ctx.array("b")
    c_h = ctx.array("c")
    y_h = ctx.array("y")
    z_h = ctx.array("z")
    h_h = ctx.array("h")
    one = vb.scalar_load(ctx.array("params"), 0)
    scratch = ctx.alloc_scratch(2)
    sreg = vb.int_temp()
    pb.li(sreg, scratch)
    rmask = vb.int_temp()
    pb.li(rmask, mask)
    ri = vb.int_temp()
    rj = vb.int_temp()
    rt = vb.int_temp()
    roff = vb.int_temp()

    def body():
        p1 = vb.load_elem(p, 0)
        p2 = vb.load_elem(p, 1)
        p3 = vb.load_elem(p, 2)
        p4 = vb.load_elem(p, 3)
        _to_int(ctx, p1, sreg, 0, ri, rmask)
        _to_int(ctx, p2, sreg, 0, rj, rmask)
        pb.sll(rt, rj, shift)
        pb.add(rt, rt, ri)
        pb.sll(roff, rt, 3)
        pb.add(rt, roff, b_h.reg)
        fb = vb.scalar_temp()
        pb.fload(fb.reg, rt, 0)
        vb.add(p3, fb, into=p3)
        pb.add(rt, roff, c_h.reg)
        fc = vb.scalar_temp()
        pb.fload(fc.reg, rt, 0)
        vb.add(p4, fc, into=p4)
        vb.add(p1, p3, into=p1)
        vb.add(p2, p4, into=p2)
        _to_int(ctx, p1, sreg, 0, ri, rmask)
        _to_int(ctx, p2, sreg, 0, rj, rmask)
        pb.sll(rt, ri, 3)
        pb.add(rt, rt, y_h.reg)
        fy = vb.scalar_temp()
        pb.fload(fy.reg, rt, 2 * WORD_BYTES)
        vb.add(p1, fy, into=p1)
        pb.sll(rt, rj, 3)
        pb.add(rt, rt, z_h.reg)
        fz = vb.scalar_temp()
        pb.fload(fz.reg, rt, 2 * WORD_BYTES)
        vb.add(p2, fz, into=p2)
        pb.sll(rt, rj, shift)
        pb.add(rt, rt, ri)
        pb.sll(rt, rt, 3)
        pb.add(rt, rt, h_h.reg)
        fh = vb.scalar_temp()
        pb.fload(fh.reg, rt, 0)
        vb.add(fh, one, into=fh)
        pb.fstore(fh.reg, rt, 0)
        vb.store_elem(p, p1, 0)
        vb.store_elem(p, p2, 1)
        vb.store_elem(p, p3, 2)
        vb.store_elem(p, p4, 3)

    vb.element_loop(n, body)


def _k14(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    mask = PIC_GRID - 1
    grd = ctx.array("grd")
    ex_h = ctx.array("ex")
    dex_h = ctx.array("dex")
    rh_h = ctx.array("rh")
    vx = ctx.array("vx")
    xx = ctx.array("xx")
    rx = ctx.array("rx")
    flx = vb.scalar_load(ctx.array("flx"), 0)
    one = vb.scalar_load(ctx.array("params"), 0)
    scratch = ctx.alloc_scratch(2)
    sreg = vb.int_temp()
    pb.li(sreg, scratch)
    rmask = vb.int_temp()
    pb.li(rmask, mask)
    rix = vb.int_temp()
    rt = vb.int_temp()
    rt2 = vb.int_temp()

    def body():
        g = vb.load_elem(grd)
        _to_int(ctx, g, sreg, 0, rix, rmask)
        xik = _int_to_float(ctx, rix, sreg, WORD_BYTES)
        pb.sll(rt, rix, 3)
        pb.add(rt2, rt, ex_h.reg)
        fex = vb.scalar_temp()
        pb.fload(fex.reg, rt2, 0)
        pb.add(rt2, rt, dex_h.reg)
        fdex = vb.scalar_temp()
        pb.fload(fdex.reg, rt2, 0)
        d = vb.sub(g, xik)
        d = vb.mul(d, fdex, into=d)
        e1 = vb.add(fex, d, into=d)
        vxk = vb.mul(e1, flx)
        vb.store_elem(vx, vxk)
        xxk = vb.add(xik, vxk)
        vb.store_elem(xx, xxk)
        _to_int(ctx, xxk, sreg, 0, rix, rmask)
        fir = _int_to_float(ctx, rix, sreg, WORD_BYTES)
        rxk = vb.sub(xxk, fir)
        vb.store_elem(rx, rxk)
        pb.sll(rt, rix, 3)
        pb.add(rt, rt, rh_h.reg)
        fr = vb.scalar_temp()
        pb.fload(fr.reg, rt, 0)
        t2 = vb.sub(one, rxk)
        fr = vb.add(fr, t2, into=fr)
        pb.fstore(fr.reg, rt, 0)
        fr2 = vb.scalar_temp()
        pb.fload(fr2.reg, rt, WORD_BYTES)
        fr2 = vb.add(fr2, rxk, into=fr2)
        pb.fstore(fr2.reg, rt, WORD_BYTES)

    vb.element_loop(n, body)


def _k15(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    ng, nz = 8, n
    par = ctx.array("params")
    ar = vb.scalar_load(par, 0)
    br = vb.scalar_load(par, 1)
    half = vb.scalar_load(par, 2)
    one = vb.scalar_load(par, 3)
    vh = ctx.array("vh")
    vh_up = ctx.array("vh")
    vf = ctx.array("vf")
    vg = ctx.array("vg")
    vy = ctx.array("vy")
    vs = ctx.array("vs")
    rc = vb.int_temp()

    def body():
        t = vb.scalar_temp()
        r_val = vb.scalar_temp()
        s_val = vb.scalar_temp()
        hat = vb.load_elem(vh)
        hup = vb.load_elem(vh_up)
        pb.fcmp(rc, hat.reg, hup.reg, isa.CMP_LT)   # vh[up] > vh[at]
        use_br = pb.label()
        done_t = pb.label()
        pb.beq(rc, 0, use_br)
        vb.move_into(t, ar)
        pb.j(done_t)
        pb.place(use_br)
        vb.move_into(t, br)
        pb.place(done_t)

        f_at = vb.load_elem(vf)
        f_m1 = vb.load_elem(vf, -1)
        pb.fcmp(rc, f_at.reg, f_m1.reg, isa.CMP_LT)
        else_arm = pb.label()
        done_rs = pb.label()
        pb.beq(rc, 0, else_arm)
        hm1 = vb.load_elem(vh, -1)
        hupm1 = vb.load_elem(vh_up, -1)
        _emit_max_into(ctx, r_val, hm1, hupm1, rc)
        vb.move_into(s_val, f_m1)
        pb.j(done_rs)
        pb.place(else_arm)
        _emit_max_into(ctx, r_val, hat, hup, rc)
        vb.move_into(s_val, f_at)
        pb.place(done_rs)

        g = vb.load_elem(vg)
        g2 = vb.mul(g, g, into=g)
        r2 = vb.mul(r_val, r_val)
        sq = vb.add(g2, r2, into=g2)
        root = _heron_sqrt(vb, sq, half, one)
        num = vb.mul(root, t, into=root)
        out = vb.div(num, s_val)
        vb.store_elem(vy, out)
        out2 = vb.div(vb.add(r_val, t), s_val)
        vb.store_elem(vs, out2)

    for j in range(1, ng - 1):
        base = j * nz + 1
        vb.rebase(vh, ctx.addr("vh") + base * WORD_BYTES)
        vb.rebase(vh_up, ctx.addr("vh") + (base + nz) * WORD_BYTES)
        vb.rebase(vf, ctx.addr("vf") + base * WORD_BYTES)
        vb.rebase(vg, ctx.addr("vg") + base * WORD_BYTES)
        vb.rebase(vy, ctx.addr("vy") + base * WORD_BYTES)
        vb.rebase(vs, ctx.addr("vs") + base * WORD_BYTES)
        vb.element_loop(nz - 1, body)


def _k16(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    zones = len(ctx.arrays["plan"])
    plan_h = ctx.array("plan")
    zone_h = ctx.array("zone")
    par = ctx.array("params")
    fr = vb.scalar_load(par, 0)
    fs = vb.scalar_load(par, 1)
    ft = vb.scalar_load(par, 2)
    fv = vb.scalar_temp()
    rm = vb.int_temp()
    rk2 = vb.int_temp()
    rk3 = vb.int_temp()
    rprobe = vb.int_temp()
    rn = vb.int_temp()
    rj = vb.int_temp()
    rt = vb.int_temp()
    ra = vb.int_temp()
    rstep = vb.int_temp()
    rzones = vb.int_temp()
    rc = vb.int_temp()
    for reg in (rm, rk2, rk3, rprobe):
        pb.li(reg, 0)
    pb.li(rn, n)
    pb.li(rzones, zones)

    top = pb.here("probe")
    pb.sll(rt, rm, 3)
    pb.add(ra, zone_h.reg, rt)
    pb.lw(rj, ra, 0)
    pb.addi(rj, rj, -1)
    pb.sll(rt, rj, 3)
    pb.add(ra, plan_h.reg, rt)
    pb.fload(fv.reg, ra, 0)
    pb.addi(rk2, rk2, 1)
    band2 = pb.label()
    band3 = pb.label()
    band4 = pb.label()
    move = pb.label()
    pb.fcmp(rc, fv.reg, fr.reg, isa.CMP_LT)
    pb.beq(rc, 0, band2)
    pb.li(rstep, 1)
    pb.j(move)
    pb.place(band2)
    pb.fcmp(rc, fv.reg, fs.reg, isa.CMP_LT)
    pb.beq(rc, 0, band3)
    pb.li(rstep, 2)
    pb.j(move)
    pb.place(band3)
    pb.fcmp(rc, fv.reg, ft.reg, isa.CMP_LT)
    pb.beq(rc, 0, band4)
    pb.li(rstep, 3)
    pb.addi(rk3, rk3, 1)
    pb.j(move)
    pb.place(band4)
    pb.li(rstep, 4)
    pb.place(move)
    pb.add(rm, rm, rstep)
    wrapped = pb.label()
    pb.blt(rm, rzones, wrapped)
    pb.sub(rm, rm, rzones)
    pb.place(wrapped)
    pb.addi(rprobe, rprobe, 1)
    pb.blt(rprobe, rn, top)

    ctx.store_int_result("k2", rk2)
    ctx.store_int_result("k3", rk3)
    ctx.store_int_result("m", rm)


def _k17(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    last = n - 1
    vlr = ctx.array("vlr", offset_words=last, step=-1)
    vlin = ctx.array("vlin", offset_words=last, step=-1)
    vxne = ctx.array("vxne", offset_words=last, step=-1)
    vsp = ctx.array("vsp", offset_words=last, step=-1)
    vstp = ctx.array("vstp", offset_words=last, step=-1)
    vxnd = ctx.array("vxnd", offset_words=last, step=-1)
    ve3 = ctx.array("ve3", offset_words=last, step=-1)
    par = ctx.array("params")
    scale = vb.scalar_load(par, 0)
    xnm = vb.move(vb.scalar_load(par, 1))
    e6 = vb.move(vb.scalar_load(par, 2))
    rc = vb.int_temp()

    def body():
        lr = vb.load_elem(vlr)
        lin = vb.load_elem(vlin)
        xne = vb.load_elem(vxne)
        e3 = vb.add(vb.mul(xnm, lr), vb.mul(e6, lin))
        xnei = vb.mul(xnm, xne)
        vb.store_elem(vxnd, e6)
        xnc = vb.mul(scale, e3)
        then_arm = pb.label()
        done = pb.label()
        pb.fcmp(rc, xnc.reg, xnm.reg, isa.CMP_LT)  # xnm > xnc
        pb.bne(rc, 0, then_arm)
        pb.fcmp(rc, xnc.reg, xnei.reg, isa.CMP_LT)  # xnei > xnc
        pb.bne(rc, 0, then_arm)
        sp = vb.load_elem(vsp)
        stp = vb.load_elem(vstp)
        t = vb.mul(xnm, sp)
        vb.add(t, stp, into=e6)
        pb.j(done)
        pb.place(then_arm)
        vb.store_elem(ve3, e3)
        t2 = vb.add(e3, e3)
        vb.sub(t2, xnm, into=e6)
        vb.move_into(xnm, e3)
        pb.place(done)

    vb.element_loop(n, body, unroll=2)
    ctx.store_scalar_result("xnm", xnm)
    ctx.store_scalar_result("e6", e6)


def _k18(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    kn, jn = n, JN18
    par = ctx.array("params")
    s = vb.scalar_load(par, 0)
    t = vb.scalar_load(par, 1)
    names = ("za", "zb", "zm", "zp", "zq", "zr", "zu", "zv", "zz")
    handles = {name: ctx.array(name, step=jn) for name in names}

    def rebase_all():
        for name in names:
            vb.rebase(handles[name], ctx.addr(name) + (jn + 1) * WORD_BYTES)

    strips = [(js, min(4, (jn - 2) - js)) for js in range(0, jn - 2, 4)]

    za, zb, zm, zp, zq = (handles[k] for k in ("za", "zb", "zm", "zp", "zq"))
    zr, zu, zv, zz = (handles[k] for k in ("zr", "zu", "zv", "zz"))

    def nest1(vl_unused):
        for js, width in strips:
            vb.fpu.mark()
            a = vb.vload(zp, js - 1 + jn, vl=width, stride=1)
            b = vb.vload(zq, js - 1 + jn, vl=width, stride=1)
            num = vb.add(a, b, into=a)
            c = vb.vload(zp, js - 1, vl=width, stride=1)
            num = vb.sub(num, c, into=num)
            d = vb.vload(zq, js - 1, vl=width, stride=1)
            num = vb.sub(num, d, into=num)
            e = vb.vload(zr, js, vl=width, stride=1)
            f = vb.vload(zr, js - 1, vl=width, stride=1)
            fac = vb.add(e, f, into=e)
            num = vb.mul(num, fac, into=num)
            g = vb.vload(zm, js - 1, vl=width, stride=1)
            h = vb.vload(zm, js - 1 + jn, vl=width, stride=1)
            den = vb.add(g, h, into=g)
            res = vb.div(num, den)
            vb.vstore(za, res, offset=js, stride=1)
            vb.fpu.release()
            vb.fpu.mark()
            a = vb.vload(zp, js - 1, vl=width, stride=1)
            b = vb.vload(zq, js - 1, vl=width, stride=1)
            num = vb.add(a, b, into=a)
            c = vb.vload(zp, js, vl=width, stride=1)
            num = vb.sub(num, c, into=num)
            d = vb.vload(zq, js, vl=width, stride=1)
            num = vb.sub(num, d, into=num)
            e = vb.vload(zr, js, vl=width, stride=1)
            f = vb.vload(zr, js - jn, vl=width, stride=1)
            fac = vb.add(e, f, into=e)
            num = vb.mul(num, fac, into=num)
            g = vb.vload(zm, js, vl=width, stride=1)
            h = vb.vload(zm, js - 1, vl=width, stride=1)
            den = vb.add(g, h, into=g)
            res = vb.div(num, den)
            vb.vstore(zb, res, offset=js, stride=1)
            vb.fpu.release()

    def velocity_update(target, field, js, width):
        """target(j,k) += s * (za*(f_c-f_r) - za_l*(f_c-f_l)
                               - zb*(f_c-f_d) + zb_u*(f_c-f_u))"""
        vb.fpu.mark()
        f_c = vb.vload(field, js, vl=width, stride=1)
        t1 = vb.vload(field, js + 1, vl=width, stride=1)
        t1 = vb.sub(f_c, t1, into=t1)
        a1 = vb.vload(za, js, vl=width, stride=1)
        acc = vb.mul(a1, t1, into=t1)
        t2 = vb.vload(field, js - 1, vl=width, stride=1)
        t2 = vb.sub(f_c, t2, into=t2)
        a2 = vb.vload(za, js - 1, vl=width, stride=1)
        t2 = vb.mul(a2, t2, into=t2)
        acc = vb.sub(acc, t2, into=acc)
        t3 = vb.vload(field, js - jn, vl=width, stride=1)
        t3 = vb.sub(f_c, t3, into=t3)
        b1 = vb.vload(zb, js, vl=width, stride=1)
        t3 = vb.mul(b1, t3, into=t3)
        acc = vb.sub(acc, t3, into=acc)
        t4 = vb.vload(field, js + jn, vl=width, stride=1)
        t4 = vb.sub(f_c, t4, into=t4)
        b2 = vb.vload(zb, js + jn, vl=width, stride=1)
        t4 = vb.mul(b2, t4, into=t4)
        acc = vb.add(acc, t4, into=acc)
        acc = vb.mul(acc, s, into=acc)
        cur = vb.vload(target, js, vl=width, stride=1)
        acc = vb.add(cur, acc, into=acc)
        vb.vstore(target, acc, offset=js, stride=1)
        vb.fpu.release()

    def nest2(vl_unused):
        for js, width in strips:
            velocity_update(zu, zz, js, width)
            velocity_update(zv, zr, js, width)

    def nest3(vl_unused):
        for js, width in strips:
            vb.fpu.mark()
            a = vb.vload(zu, js, vl=width, stride=1)
            a = vb.mul(a, t, into=a)
            cur = vb.vload(zr, js, vl=width, stride=1)
            a = vb.add(cur, a, into=a)
            vb.vstore(zr, a, offset=js, stride=1)
            b = vb.vload(zv, js, vl=width, stride=1)
            b = vb.mul(b, t, into=b)
            cur2 = vb.vload(zz, js, vl=width, stride=1)
            b = vb.add(cur2, b, into=b)
            vb.vstore(zz, b, offset=js, stride=1)
            vb.fpu.release()

    for nest in (nest1, nest2, nest3):
        rebase_all()
        saved_vl = vb.vl
        vb.vl = 1
        vb.strip_loop(kn - 2, nest)
        vb.vl = saved_vl


def _k19(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    stb5 = vb.move(vb.scalar_load(ctx.array("params"), 0))

    def make_body(sa_h, sb_h, b5_h):
        def body():
            a = vb.load_elem(sa_h)
            b = vb.load_elem(sb_h)
            v = vb.add(a, vb.mul(stb5, b))
            vb.store_elem(b5_h, v)
            vb.sub(v, stb5, into=stb5)
        return body

    sa_f = ctx.array("sa")
    sb_f = ctx.array("sb")
    b5_f = ctx.array("b5")
    vb.element_loop(n, make_body(sa_f, sb_f, b5_f), unroll=4)
    sa_b = ctx.array("sa", offset_words=n - 1, step=-1)
    sb_b = ctx.array("sb", offset_words=n - 1, step=-1)
    b5_b = ctx.array("b5", offset_words=n - 1, step=-1)
    vb.element_loop(n, make_body(sa_b, sb_b, b5_b), unroll=4)
    ctx.store_scalar_result("stb5", stb5)


def _k20(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    y = ctx.array("y")
    z = ctx.array("z")
    u = ctx.array("u")
    v = ctx.array("v")
    w = ctx.array("w")
    g = ctx.array("g")
    vx = ctx.array("vx")
    x = ctx.array("x")
    xx = ctx.array("xx")
    par = ctx.array("params")
    s = vb.scalar_load(par, 0)
    tmax = vb.scalar_load(par, 1)
    dk = vb.scalar_load(par, 2)
    xxk = vb.scalar_temp()
    pb.fload(xxk.reg, xx.reg, 0)
    dn = vb.scalar_temp()
    rc = vb.int_temp()

    def body():
        gk = vb.load_elem(g)
        yk = vb.load_elem(y)
        zk = vb.load_elem(z)
        den = vb.add(xxk, dk)
        quot = vb.div(gk, den)
        di = vb.sub(yk, quot)
        vb.move_into(dn, s)  # the default dn (0.2) equals the lower clamp
        skip = pb.label()
        pb.fcmp(rc, di.reg, vb.zero().reg, isa.CMP_EQ)
        pb.bne(rc, 0, skip)
        dval = vb.div(zk, di)
        vb.move_into(dn, dval)
        noclamp_hi = pb.label()
        pb.fcmp(rc, tmax.reg, dn.reg, isa.CMP_LT)  # dn > t
        pb.beq(rc, 0, noclamp_hi)
        vb.move_into(dn, tmax)
        pb.place(noclamp_hi)
        noclamp_lo = pb.label()
        pb.fcmp(rc, dn.reg, s.reg, isa.CMP_LT)     # dn < s
        pb.beq(rc, 0, noclamp_lo)
        vb.move_into(dn, s)
        pb.place(noclamp_lo)
        pb.place(skip)
        vk = vb.load_elem(v)
        wk = vb.load_elem(w)
        uk = vb.load_elem(u)
        vxk = vb.load_elem(vx)
        vdn = vb.mul(vk, dn)
        num = vb.add(wk, vdn)
        num = vb.mul(num, xxk, into=num)
        num = vb.add(num, uk, into=num)
        den2 = vb.add(vxk, vdn)
        xk = vb.div(num, den2)
        vb.store_elem(x, xk)
        t2 = vb.sub(xk, xxk)
        t2 = vb.mul(t2, dn, into=t2)
        nxt = vb.add(t2, xxk, into=t2)
        vb.store_elem(xx, nxt, offset=1)
        vb.move_into(xxk, nxt)

    vb.element_loop(n, body)


def _k21(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    vyh = ctx.array("vy", step=25)
    cxh = ctx.array("cx", step=1)
    pxh = ctx.array("px")
    vl = ctx.vl

    strips = [(start, min(vl, 25 - start)) for start in range(0, 25, vl)]
    for j in range(n):
        for start, width in strips:
            vb.fpu.mark()
            if width > 1:
                acc = vb.splat(vb.zero(), width)
            else:
                acc = vb.move(vb.zero())
            vb.rebase(vyh, ctx.addr("vy") + start * WORD_BYTES)
            vb.rebase(cxh, ctx.addr("cx") + (25 * j) * WORD_BYTES)

            def kbody():
                c = vb.load_elem(cxh)
                vv = vb.vload(vyh, 0, vl=width, stride=1)
                p = vb.mul(vv, c, into=vv)
                vb.add(acc, p, into=acc)

            vb.element_loop(25, kbody)
            vb.rebase(pxh, ctx.addr("px") + (start + 25 * j) * WORD_BYTES)
            vb.vstore(pxh, acc, stride=1)
            vb.fpu.release()


def _k22(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    x = ctx.array("x")
    u = ctx.array("u")
    v = ctx.array("v")
    y = ctx.array("y")
    w = ctx.array("w")
    par = ctx.array("params")
    quarter = vb.scalar_load(par, 0)
    one = vb.scalar_load(par, 1)
    inv_factorials = [vb.scalar_load(par, 2 + i) for i in range(12)]

    def body():
        uk = vb.load_elem(u)
        vk = vb.load_elem(v)
        xk = vb.load_elem(x)
        yk = vb.div(uk, vk)
        vb.store_elem(y, yk)
        e = _exp_poly(vb, yk, quarter, one, inv_factorials)
        em1 = vb.sub(e, one, into=e)
        wk = vb.div(xk, em1)
        vb.store_elem(w, wk)

    vb.element_loop(n, body)


def _k23(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    width = n + 1
    zah = ctx.array("za")
    zzh = ctx.array("zz")
    zr = ctx.array("zr", offset_words=1)
    zb = ctx.array("zb", offset_words=1)
    zu = ctx.array("zu", offset_words=1)
    zv = ctx.array("zv", offset_words=1)
    relax = vb.scalar_load(ctx.array("params"), 0)
    prev = vb.scalar_temp()

    def body():
        up = vb.load_elem(zah, width)
        dn = vb.load_elem(zah, -width)
        rgt = vb.load_elem(zah, 1)
        cur = vb.load_elem(zah, 0)
        zzc = vb.load_elem(zzh)
        zrk = vb.load_elem(zr)
        zbk = vb.load_elem(zb)
        zuk = vb.load_elem(zu)
        zvk = vb.load_elem(zv)
        qa = vb.mul(up, zrk, into=up)
        t2 = vb.mul(dn, zbk, into=dn)
        qa = vb.add(qa, t2, into=qa)
        t3 = vb.mul(rgt, zuk, into=rgt)
        qa = vb.add(qa, t3, into=qa)
        t4 = vb.mul(prev, zvk)
        qa = vb.add(qa, t4, into=qa)
        qa = vb.add(qa, zzc, into=qa)
        delta = vb.sub(qa, cur, into=qa)
        delta = vb.mul(relax, delta, into=delta)
        upd = vb.add(cur, delta, into=delta)
        vb.store_elem(zah, upd)
        vb.move_into(prev, upd)

    for j in range(1, 6):
        base = j * width + 1
        vb.rebase(zah, ctx.addr("za") + base * WORD_BYTES)
        vb.rebase(zzh, ctx.addr("zz") + base * WORD_BYTES)
        vb.rebase(zr, ctx.addr("zr") + WORD_BYTES)
        vb.rebase(zb, ctx.addr("zb") + WORD_BYTES)
        vb.rebase(zu, ctx.addr("zu") + WORD_BYTES)
        vb.rebase(zv, ctx.addr("zv") + WORD_BYTES)
        pb.fload(prev.reg, zah.reg, -WORD_BYTES)
        vb.element_loop(n - 1, body, unroll=2)


def _k24(ctx):
    vb, pb, n = ctx.vb, ctx.pb, ctx.n
    x = ctx.array("x", offset_words=1)
    best = vb.scalar_temp()
    pb.fload(best.reg, x.reg, -WORD_BYTES)  # x[0]
    current = vb.scalar_temp()
    rm = vb.int_temp()
    rk = vb.int_temp()
    rn = vb.int_temp()
    rc = vb.int_temp()
    pb.li(rm, 0)
    pb.li(rk, 1)
    pb.li(rn, n)
    top = pb.here("scan")
    pb.fload(current.reg, x.reg, 0)
    skip = pb.label()
    pb.fcmp(rc, current.reg, best.reg, isa.CMP_LT)
    pb.beq(rc, 0, skip)
    vb.move_into(best, current)
    pb.add(rm, rk, 0)
    pb.place(skip)
    pb.addi(x.reg, x.reg, WORD_BYTES)
    pb.addi(rk, rk, 1)
    pb.blt(rk, rn, top)
    ctx.store_int_result("m", rm)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LoopSpec:
    number: int
    description: str
    emit: callable
    vectorizable: bool = False
    default_vl: int = 8


KERNELS = {
    1: LoopSpec(1, "hydro fragment", _k01, True, 8),
    2: LoopSpec(2, "ICCG excerpt", _k02, True, 8),
    3: LoopSpec(3, "inner product", _k03, True, 8),
    4: LoopSpec(4, "banded linear equations", _k04, True, 8),
    5: LoopSpec(5, "tridiagonal elimination", _k05, False),
    6: LoopSpec(6, "general linear recurrence", _k06, True, 8),
    7: LoopSpec(7, "equation of state", _k07, True, 4),
    8: LoopSpec(8, "ADI integration", _k08, True, 4),
    9: LoopSpec(9, "integration predictors", _k09, True, 4),
    10: LoopSpec(10, "difference predictors", _k10, True, 4),
    11: LoopSpec(11, "first sum", _k11, True, 8),
    12: LoopSpec(12, "first difference", _k12, True, 8),
    13: LoopSpec(13, "2-D particle in cell", _k13, False),
    14: LoopSpec(14, "1-D particle in cell", _k14, False),
    15: LoopSpec(15, "casual Fortran", _k15, False),
    16: LoopSpec(16, "Monte Carlo search", _k16, False),
    17: LoopSpec(17, "implicit conditional", _k17, False),
    18: LoopSpec(18, "2-D explicit hydro", _k18, True, 4),
    19: LoopSpec(19, "linear recurrence equations", _k19, False),
    20: LoopSpec(20, "discrete ordinates transport", _k20, False),
    21: LoopSpec(21, "matrix product", _k21, True, 8),
    22: LoopSpec(22, "Planckian distribution", _k22, False),
    23: LoopSpec(23, "2-D implicit hydro", _k23, False),
    24: LoopSpec(24, "first minimum", _k24, False),
}
