"""Pure-Python reference semantics for the 24 Livermore kernels.

Each ``ref_loopNN(n, arrays)`` returns ``(outputs, flops)`` where
``outputs`` maps array names (or scalar result names) to expected values
and ``flops`` is the kernel's nominal floating-point work, weighted the
way McMahon's LFK report weights it (add/subtract/multiply = 1,
divide/sqrt = 4, exp = 8, compare = 1).  The machine kernels in
``kernels*.py`` implement exactly these semantics; the test suite checks
the simulated memory image against these references.

Loops 13-17 follow the structure of the LFK C translation but are
simplified where the original leans on Fortran storage tricks
(integer-valued floats used as indices); DESIGN.md records each
simplification.
"""

import math

from repro.workloads.livermore.data import GRID15_COLS, JN18, PIC_GRID

WEIGHT_DIV = 4
WEIGHT_SQRT = 4
WEIGHT_EXP = 8


class Flops:
    """Nominal flop accounting with McMahon-style weights."""

    def __init__(self):
        self.count = 0

    def add(self, n=1):
        self.count += n

    def mul(self, n=1):
        self.count += n

    def div(self, n=1):
        self.count += n * WEIGHT_DIV

    def sqrt(self, n=1):
        self.count += n * WEIGHT_SQRT

    def exp(self, n=1):
        self.count += n * WEIGHT_EXP

    def cmp(self, n=1):
        self.count += n


def ref_loop01(n, arrays):
    """Hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])."""
    y, z = arrays["y"], arrays["z"]
    q, r, t = arrays["params"]
    f = Flops()
    x = []
    for k in range(n):
        x.append(q + y[k] * (r * z[k + 10] + t * z[k + 11]))
        f.mul(3)
        f.add(2)
    return {"x": x}, f.count


def ref_loop02(n, arrays):
    """ICCG excerpt (incomplete Cholesky conjugate gradient)."""
    x = list(arrays["x"])
    v = arrays["v"]
    f = Flops()
    ii = n
    ipntp = 0
    while ii > 1:
        ipnt = ipntp
        ipntp += ii
        ii //= 2
        i = ipntp - 1
        for k in range(ipnt + 1, ipntp, 2):
            i += 1
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1]
            f.mul(2)
            f.add(2)
    return {"x": x}, f.count


def ref_loop03(n, arrays):
    """Inner product: q = sum z[k]*x[k] (summed strip-wise by halving,
    the Mahler vector-sum order, to match the machine coding exactly)."""
    x, z = arrays["x"], arrays["z"]
    f = Flops()
    f.mul(n)
    f.add(n)  # n multiplies + (n-1)-ish adds, nominally n
    vl = 8

    def halving_sum(values):
        values = list(values)
        extras = []
        while len(values) > 1:
            half = len(values) // 2
            if len(values) & 1:
                extras.append(values[-1])
            values = [values[i] + values[half + i] for i in range(half)]
        total = values[0]
        for extra in extras:
            total += extra
        return total

    q = 0.0
    for start in range(0, n, vl):
        products = [z[k] * x[k] for k in range(start, min(start + vl, n))]
        q += halving_sum(products)
    return {"q": q}, f.count


def ref_loop04(n, arrays):
    """Banded linear equations."""
    x = list(arrays["x"])
    y, xz, m = arrays["y"], arrays["xz"], arrays["m"]
    f = Flops()
    for k in (6, 6 + m, 6 + 2 * m):
        lw = k - 6
        temp = x[k - 1]
        for j in range(4, n, 5):
            temp -= xz[lw] * y[j]
            lw += 1
            f.mul()
            f.add()
        x[k - 1] = y[4] * temp
        f.mul()
    return {"x": x}, f.count


def ref_loop05(n, arrays):
    """Tridiagonal elimination, below diagonal: x[i] = z[i]*(y[i]-x[i-1])."""
    x = list(arrays["x"])
    y, z = arrays["y"], arrays["z"]
    f = Flops()
    for i in range(1, n):
        x[i] = z[i] * (y[i] - x[i - 1])
        f.mul()
        f.add()
    return {"x": x}, f.count


def ref_loop06(n, arrays):
    """General linear recurrence: w[i] += sum_k b[k,i]*w[i-k-1].

    The inner dot product is summed in the machine coding's order
    (strip-wise halving) so the reference matches bit-for-bit closely.
    """
    w = list(arrays["w"])
    b = arrays["b"]
    f = Flops()
    vl = 8
    for i in range(1, n):
        total = 0.0
        for start in range(0, i, vl):
            length = min(vl, i - start)
            products = [b[(start + k) + i * n] * w[i - (start + k) - 1]
                        for k in range(length)]
            f.mul(length)
            f.add(length)
            values = list(products)
            extras = []
            while len(values) > 1:
                half = len(values) // 2
                if len(values) & 1:
                    extras.append(values[-1])
                values = [values[j] + values[half + j] for j in range(half)]
            strip = values[0]
            for extra in extras:
                strip += extra
            total += strip
        w[i] += total
    return {"w": w}, f.count


def ref_loop07(n, arrays):
    """Equation of state fragment (16 flops per iteration)."""
    y, z, u = arrays["y"], arrays["z"], arrays["u"]
    q, r, t = arrays["params"]
    f = Flops()
    x = []
    for k in range(n):
        x.append(u[k] + r * (z[k] + r * y[k])
                 + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
                        + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4]))))
        f.mul(8)
        f.add(8)
    return {"x": x}, f.count


def _u8(kx, ky, nl, n):
    return kx + 5 * ky + 5 * (n + 2) * nl


def ref_loop08(n, arrays):
    """ADI integration over a (5, n+2, 2) mesh."""
    u1 = list(arrays["u1"])
    u2 = list(arrays["u2"])
    u3 = list(arrays["u3"])
    du1 = list(arrays["du1"])
    du2 = list(arrays["du2"])
    du3 = list(arrays["du3"])
    a11, a12, a13, a21, a22, a23, a31, a32, a33, sig, two = arrays["params"]
    f = Flops()
    for ky in range(2, n):
        for kx in (1, 2):
            du1[ky] = u1[_u8(kx, ky + 1, 0, n)] - u1[_u8(kx, ky - 1, 0, n)]
            du2[ky] = u2[_u8(kx, ky + 1, 0, n)] - u2[_u8(kx, ky - 1, 0, n)]
            du3[ky] = u3[_u8(kx, ky + 1, 0, n)] - u3[_u8(kx, ky - 1, 0, n)]
            f.add(3)
            for coeffs, u, du_terms in (
                ((a11, a12, a13), u1, None),
                ((a21, a22, a23), u2, None),
                ((a31, a32, a33), u3, None),
            ):
                c1, c2, c3 = coeffs
                center = u[_u8(kx, ky, 0, n)]
                stencil = (u[_u8(kx + 1, ky, 0, n)] - two * center
                           + u[_u8(kx - 1, ky, 0, n)])
                u[_u8(kx, ky, 1, n)] = (center + c1 * du1[ky] + c2 * du2[ky]
                                        + c3 * du3[ky] + sig * stencil)
                f.mul(5)
                f.add(6)
    return {"u1": u1, "u2": u2, "u3": u3, "du1": du1, "du2": du2, "du3": du3}, f.count


def ref_loop09(n, arrays):
    """Numerical integration predictors (17 flops per column)."""
    px = list(arrays["px"])
    dm22, dm23, dm24, dm25, dm26, dm27, dm28, c0 = arrays["params"]
    f = Flops()
    for j in range(n):
        base = 25 * j
        px[base] = (dm28 * px[base + 12] + dm27 * px[base + 11]
                    + dm26 * px[base + 10] + dm25 * px[base + 9]
                    + dm24 * px[base + 8] + dm23 * px[base + 7]
                    + dm22 * px[base + 6]
                    + c0 * (px[base + 4] + px[base + 5]) + px[base + 2])
        f.mul(8)
        f.add(9)
    return {"px": px}, f.count


def ref_loop10(n, arrays):
    """Numerical differentiation: difference predictors."""
    px = list(arrays["px"])
    cx = arrays["cx"]
    f = Flops()
    for j in range(n):
        base = 25 * j
        prev = cx[base + 4]
        for row in range(4, 13):
            diff = prev - px[base + row]
            px[base + row] = prev
            prev = diff
            f.add()
        px[base + 13] = prev
    return {"px": px}, f.count


def ref_loop11(n, arrays):
    """First sum (prefix sum): x[k] = x[k-1] + y[k]."""
    y = arrays["y"]
    f = Flops()
    x = []
    total = 0.0
    for k in range(n):
        total = total + y[k]
        x.append(total)
        f.add()
    return {"x": x}, f.count


def ref_loop12(n, arrays):
    """First difference: x[k] = y[k+1] - y[k]."""
    y = arrays["y"]
    f = Flops()
    x = [y[k + 1] - y[k] for k in range(n)]
    f.add(n)
    return {"x": x}, f.count


def ref_loop13(n, arrays):
    """2-D particle in cell (simplified: index arithmetic uses truncation
    and power-of-two masking, not the original integer-valued floats)."""
    grid, mask = PIC_GRID, PIC_GRID - 1
    p = list(arrays["p"])
    b, c, y, z = arrays["b"], arrays["c"], arrays["y"], arrays["z"]
    h = list(arrays["h"])
    f = Flops()
    for ip in range(n):
        p1, p2, p3, p4 = (p[4 * ip], p[4 * ip + 1], p[4 * ip + 2], p[4 * ip + 3])
        i1 = int(p1) & mask
        j1 = int(p2) & mask
        p3 += b[i1 + grid * j1]
        p4 += c[i1 + grid * j1]
        p1 += p3
        p2 += p4
        i2 = int(p1) & mask
        j2 = int(p2) & mask
        p1 += y[i2 + 2]
        p2 += z[j2 + 2]
        h[i2 + grid * j2] += 1.0
        f.add(7)
        p[4 * ip], p[4 * ip + 1], p[4 * ip + 2], p[4 * ip + 3] = p1, p2, p3, p4
    return {"p": p, "h": h}, f.count


def ref_loop14(n, arrays):
    """1-D particle in cell (simplified scatter/gather variant)."""
    grid, mask = PIC_GRID, PIC_GRID - 1
    grd, dex, ex = arrays["grd"], arrays["dex"], arrays["ex"]
    flx = arrays["flx"]
    vx, xx, rx = [0.0] * n, [0.0] * n, [0.0] * n
    rh = list(arrays["rh"])
    f = Flops()
    for k in range(n):
        ix = int(grd[k]) & mask
        xik = float(ix)
        ex1k = ex[ix] + (grd[k] - xik) * dex[ix]
        vx[k] = ex1k * flx
        xx[k] = xik + vx[k]
        ir = int(xx[k]) & mask
        rx[k] = xx[k] - float(ir)
        rh[ir] += 1.0 - rx[k]
        rh[ir + 1] += rx[k]
        f.add(6)
        f.mul(2)
    return {"vx": vx, "xx": xx, "rx": rx, "rh": rh}, f.count


def ref_loop15(n, arrays):
    """Casual Fortran (after LFK 15): conditional stencil with sqrt."""
    ng, nz = 8, n
    vh, vf, vg = arrays["vh"], arrays["vf"], arrays["vg"]
    ar, br = arrays["params"][0], arrays["params"][1]
    vy = list(arrays["vy"])
    vs = list(arrays["vs"])
    f = Flops()
    for j in range(1, ng - 1):
        for k in range(1, nz):
            at = j * nz + k
            up = (j + 1) * nz + k
            t = ar if vh[up] > vh[at] else br
            f.cmp()
            if vf[at] < vf[at - 1]:
                r = max(vh[at - 1], vh[up - 1])
                s = vf[at - 1]
            else:
                r = max(vh[at], vh[up])
                s = vf[at]
            f.cmp(2)
            vy[at] = math.sqrt(vg[at] * vg[at] + r * r) * t / s
            f.mul(3)
            f.add()
            f.sqrt()
            f.div()
            vs[at] = (r + t) / s
            f.add()
            f.div()
    return {"vy": vy, "vs": vs}, f.count


def ref_loop16(n, arrays):
    """Monte Carlo zone search (after LFK 16): branch-dominated probing."""
    plan, zone = arrays["plan"], arrays["zone"]
    r, s, t = arrays["params"]
    zones = len(plan)
    m = 0
    k2 = 0
    k3 = 0
    f = Flops()
    for probe in range(n):
        j = zone[m] - 1
        while j >= zones:
            j -= zones
        value = plan[j]
        k2 += 1
        if value < r:
            step = 1
        elif value < s:
            step = 2
        elif value < t:
            step = 3
            k3 += 1
        else:
            step = 4
        f.cmp(3)
        m += step
        while m >= zones:
            m -= zones
    return {"k2": k2, "k3": k3, "m": m}, f.count


def ref_loop17(n, arrays):
    """Implicit conditional computation (after LFK 17)."""
    vsp, vstp, vxne = arrays["vsp"], arrays["vstp"], arrays["vxne"]
    vlr, vlin = arrays["vlr"], arrays["vlin"]
    scale, xnm, e6 = arrays["params"]
    vxnd = list(arrays["vxnd"])
    ve3 = list(arrays["ve3"])
    f = Flops()
    for i in range(n - 1, -1, -1):
        e3 = xnm * vlr[i] + e6 * vlin[i]
        xnei = xnm * vxne[i]
        vxnd[i] = e6
        xnc = scale * e3
        f.mul(4)
        f.add()
        f.cmp(2)
        if xnm > xnc or xnei > xnc:
            ve3[i] = e3
            e6 = e3 + e3 - xnm
            xnm = e3
            f.add(2)
        else:
            e6 = xnm * vsp[i] + vstp[i]
            f.mul()
            f.add()
    return {"vxnd": vxnd, "ve3": ve3, "xnm": xnm, "e6": e6}, f.count


def _i18(j, k, n):
    return j + JN18 * k


def ref_loop18(n, arrays):
    """2-D explicit hydrodynamics fragment (three sequential sweeps)."""
    kn, jn = n, JN18
    za = list(arrays["za"])
    zb = list(arrays["zb"])
    zm, zp, zq = arrays["zm"], arrays["zp"], arrays["zq"]
    zr = list(arrays["zr"])
    zu = list(arrays["zu"])
    zv = list(arrays["zv"])
    zz = list(arrays["zz"])
    s, t = arrays["params"]
    f = Flops()
    for k in range(1, kn - 1):
        for j in range(1, jn - 1):
            za[_i18(j, k, n)] = ((zp[_i18(j - 1, k + 1, n)] + zq[_i18(j - 1, k + 1, n)]
                                  - zp[_i18(j - 1, k, n)] - zq[_i18(j - 1, k, n)])
                                 * (zr[_i18(j, k, n)] + zr[_i18(j - 1, k, n)])
                                 / (zm[_i18(j - 1, k, n)] + zm[_i18(j - 1, k + 1, n)]))
            zb[_i18(j, k, n)] = ((zp[_i18(j - 1, k, n)] + zq[_i18(j - 1, k, n)]
                                  - zp[_i18(j, k, n)] - zq[_i18(j, k, n)])
                                 * (zr[_i18(j, k, n)] + zr[_i18(j, k - 1, n)])
                                 / (zm[_i18(j, k, n)] + zm[_i18(j - 1, k, n)]))
            f.add(10)
            f.mul(2)
            f.div(2)
    for k in range(1, kn - 1):
        for j in range(1, jn - 1):
            zu[_i18(j, k, n)] += s * (za[_i18(j, k, n)] * (zz[_i18(j, k, n)] - zz[_i18(j + 1, k, n)])
                                      - za[_i18(j - 1, k, n)] * (zz[_i18(j, k, n)] - zz[_i18(j - 1, k, n)])
                                      - zb[_i18(j, k, n)] * (zz[_i18(j, k, n)] - zz[_i18(j, k - 1, n)])
                                      + zb[_i18(j, k + 1, n)] * (zz[_i18(j, k, n)] - zz[_i18(j, k + 1, n)]))
            zv[_i18(j, k, n)] += s * (za[_i18(j, k, n)] * (zr[_i18(j, k, n)] - zr[_i18(j + 1, k, n)])
                                      - za[_i18(j - 1, k, n)] * (zr[_i18(j, k, n)] - zr[_i18(j - 1, k, n)])
                                      - zb[_i18(j, k, n)] * (zr[_i18(j, k, n)] - zr[_i18(j, k - 1, n)])
                                      + zb[_i18(j, k + 1, n)] * (zr[_i18(j, k, n)] - zr[_i18(j, k + 1, n)]))
            f.add(16)
            f.mul(10)
    for k in range(1, kn - 1):
        for j in range(1, jn - 1):
            zr[_i18(j, k, n)] += t * zu[_i18(j, k, n)]
            zz[_i18(j, k, n)] += t * zv[_i18(j, k, n)]
            f.add(2)
            f.mul(2)
    return {"za": za, "zb": zb, "zu": zu, "zv": zv, "zr": zr, "zz": zz}, f.count


def ref_loop19(n, arrays):
    """General linear recurrence equations (forward then backward)."""
    sa, sb = arrays["sa"], arrays["sb"]
    stb5 = arrays["params"][0]
    b5 = list(arrays["b5"])
    f = Flops()
    for k in range(n):
        b5[k] = sa[k] + stb5 * sb[k]
        stb5 = b5[k] - stb5
        f.mul()
        f.add(2)
    for i in range(n):
        k = n - i - 1
        b5[k] = sa[k] + stb5 * sb[k]
        stb5 = b5[k] - stb5
        f.mul()
        f.add(2)
    return {"b5": b5, "stb5": stb5}, f.count


def ref_loop20(n, arrays):
    """Discrete ordinates transport: conditional recurrence with clamps."""
    y, z, u, v, w, g, vx = (arrays["y"], arrays["z"], arrays["u"], arrays["v"],
                            arrays["w"], arrays["g"], arrays["vx"])
    s, t, dk = arrays["params"]
    x = [0.0] * n
    xx = list(arrays["xx"])
    f = Flops()
    for k in range(n):
        di = y[k] - g[k] / (xx[k] + dk)
        f.add(2)
        f.div()
        dn = 0.2
        if di != 0.0:
            dn = z[k] / di
            f.div()
            if dn > t:
                dn = t
            if dn < s:
                dn = s
            f.cmp(2)
        x[k] = ((w[k] + v[k] * dn) * xx[k] + u[k]) / (vx[k] + v[k] * dn)
        f.mul(3)
        f.add(3)
        f.div()
        xx[k + 1] = (x[k] - xx[k]) * dn + xx[k]
        f.mul()
        f.add(2)
    return {"x": x, "xx": xx}, f.count


def ref_loop21(n, arrays):
    """Matrix product: px(25,n) += vy(25,25) * cx(25,n)."""
    px = list(arrays["px"])
    vy, cx = arrays["vy"], arrays["cx"]
    f = Flops()
    for j in range(n):
        for k in range(25):
            scale = cx[k + 25 * j]
            for i in range(25):
                px[i + 25 * j] += vy[i + 25 * k] * scale
            f.mul(25)
            f.add(25)
    return {"px": px}, f.count


def ref_loop22(n, arrays):
    """Planckian distribution: w = x / (exp(u/v) - 1)."""
    x, u, v = arrays["x"], arrays["u"], arrays["v"]
    y = [0.0] * n
    w = [0.0] * n
    f = Flops()
    for k in range(n):
        y[k] = u[k] / v[k]
        w[k] = x[k] / (math.exp(y[k]) - 1.0)
        f.div(2)
        f.exp()
        f.add()
    return {"y": y, "w": w}, f.count


def ref_loop23(n, arrays):
    """2-D implicit hydrodynamics fragment (Gauss-Seidel sweep)."""
    width = n + 1
    za = list(arrays["za"])
    zr, zb, zu, zv, zz = (arrays["zr"], arrays["zb"], arrays["zu"],
                          arrays["zv"], arrays["zz"])
    relax = arrays["params"][0]
    f = Flops()
    for j in range(1, 6):
        for k in range(1, n):
            qa = (za[(j + 1) * width + k] * zr[k] + za[(j - 1) * width + k] * zb[k]
                  + za[j * width + k + 1] * zu[k] + za[j * width + k - 1] * zv[k]
                  + zz[j * width + k])
            za[j * width + k] += relax * (qa - za[j * width + k])
            f.mul(5)
            f.add(6)
    return {"za": za}, f.count


def ref_loop24(n, arrays):
    """First minimum location."""
    x = arrays["x"]
    f = Flops()
    m = 0
    for k in range(1, n):
        if x[k] < x[m]:
            m = k
        f.cmp()
    return {"m": m}, f.count


REFERENCES = {
    1: ref_loop01, 2: ref_loop02, 3: ref_loop03, 4: ref_loop04,
    5: ref_loop05, 6: ref_loop06, 7: ref_loop07, 8: ref_loop08,
    9: ref_loop09, 10: ref_loop10, 11: ref_loop11, 12: ref_loop12,
    13: ref_loop13, 14: ref_loop14, 15: ref_loop15, 16: ref_loop16,
    17: ref_loop17, 18: ref_loop18, 19: ref_loop19, 20: ref_loop20,
    21: ref_loop21, 22: ref_loop22, 23: ref_loop23, 24: ref_loop24,
}
