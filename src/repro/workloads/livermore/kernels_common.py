"""Shared machinery for building Livermore loop kernels.

A kernel builder receives a :class:`KernelContext` exposing the program
builder, a Mahler-style vector builder, the memory layout of the loop's
arrays, and result slots for scalar outputs.  ``build_loop`` assembles one
loop in one coding into a :class:`~repro.workloads.common.BuiltKernel`
whose check compares every reference output against simulated memory.
"""

from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES
from repro.vectorize.builder import VectorKernelBuilder
from repro.workloads.common import BuiltKernel, expect_close
from repro.workloads.livermore.data import make_data
from repro.workloads.livermore.reference import REFERENCES

# Relative tolerance per loop: loops whose machine coding reorders sums or
# exercises the reciprocal/sqrt/exp paths get a looser bound.
DEFAULT_REL_TOL = 1e-9
REL_TOL = {15: 1e-7, 18: 1e-9, 20: 1e-9, 22: 1e-7}


class KernelContext:
    """Everything a kernel builder needs to emit one loop."""

    def __init__(self, loop, n, arrays, vl):
        self.loop = loop
        self.n = n
        self.arrays = arrays
        self.vl = max(1, vl)
        self.memory = Memory()
        self.arena = Arena(self.memory, base=256)
        self.addresses = {}
        for name, value in arrays.items():
            if isinstance(value, list):
                self.addresses[name] = self.arena.alloc_array(list(value))
            elif isinstance(value, float):
                self.addresses[name] = self.arena.alloc_array([value])
            # ints (e.g. loop 4's band offset) stay compile-time constants
        self.pb = ProgramBuilder()
        self.vb = VectorKernelBuilder(self.pb, vl=self.vl)
        self.result_slots = {}

    def addr(self, name):
        return self.addresses[name]

    def const(self, name):
        """A compile-time integer constant from the data set."""
        return self.arrays[name]

    def array(self, name, offset_words=0, step=1):
        """Declare a builder array handle over a named data array."""
        return self.vb.array(self.addr(name) + offset_words * WORD_BYTES,
                             step=step, name=name)

    def alloc_scratch(self, words=1):
        """Reserve scratch memory (e.g. the FP->integer transfer slot)."""
        return self.arena.alloc(words)

    def result_slot(self, name):
        """Reserve a memory word for a named scalar output."""
        slot = self.arena.alloc(1)
        self.result_slots[name] = slot
        return slot

    def store_scalar_result(self, name, value, base_reg=None):
        """fstore a scalar FPU value into a fresh result slot."""
        slot = self.result_slot(name)
        reg = self.vb.ints.alloc()
        self.pb.li(reg, slot)
        self.pb.fstore(value.reg, reg, 0)

    def store_int_result(self, name, int_reg):
        """SW a CPU integer register into a fresh result slot."""
        slot = self.result_slot(name)
        reg = self.vb.ints.alloc()
        self.pb.li(reg, slot)
        self.pb.sw(int_reg, reg, 0)


def build_loop(loop, coding="vector", n=None, vl=None, seed=1989):
    """Build one Livermore loop kernel.

    ``coding`` is "vector" or "scalar"; loops the paper did not vectorize
    use their scalar coding for both.  ``vl`` overrides the strip length
    (defaults per loop; scalar forces 1).
    """
    from repro.workloads.livermore import kernels

    n, arrays = make_data(loop, n=n, seed=seed)
    outputs, flops = REFERENCES[loop](n, {k: (list(v) if isinstance(v, list) else v)
                                          for k, v in arrays.items()})
    spec = kernels.KERNELS[loop]
    if coding == "scalar" or not spec.vectorizable:
        effective_vl = 1
    else:
        effective_vl = vl if vl is not None else spec.default_vl
    ctx = KernelContext(loop, n, arrays, effective_vl)
    spec.emit(ctx)
    program = ctx.pb.build()

    rel_tol = REL_TOL.get(loop, DEFAULT_REL_TOL)

    def check(machine):
        for name, want in outputs.items():
            if isinstance(want, list):
                error = expect_close(ctx.memory, ctx.addr(name), want,
                                     rel_tol=rel_tol, label="loop%d.%s" % (loop, name))
                if error:
                    return error
            else:
                slot = ctx.result_slots.get(name)
                if slot is None:
                    return "loop%d: no result slot for %r" % (loop, name)
                got = ctx.memory.read(slot)
                if isinstance(want, int):
                    if int(got) != want:
                        return "loop%d.%s = %r, want %r" % (loop, name, got, want)
                else:
                    error = expect_close(ctx.memory, slot, [want], rel_tol=rel_tol,
                                         label="loop%d.%s" % (loop, name))
                    if error:
                        return error
        return None

    return BuiltKernel(
        name="LL%02d (%s)" % (loop, coding),
        program=program,
        memory=ctx.memory,
        nominal_flops=flops,
        setup=None,
        check=check,
        description=spec.description,
        # Codegen only stores to arena-allocated arrays and slots, so
        # the arena high-water bounds every address the program writes.
        memory_extent=ctx.arena.bytes_used // WORD_BYTES,
    )
