"""The three reduction strategies of WRL 89/8 Figures 5-7.

Classical vector machines cannot vectorize a sum reduction; the unified
vector/scalar register file can, in several ways, because every element
passes through the scalar scoreboard:

* Figure 5 -- a tree of scalar adds (seven instructions, 12 cycles);
* Figure 6 -- one linear vector whose elements chain through the
  accumulator (one instruction, 24 cycles for 8 elements at 3-cycle
  latency: a prefix-sum recurrence);
* Figure 7 -- a tree of vector adds (three instructions, 12 cycles, and
  9 of the 12 cycles leave the CPU free to issue other work).
"""

from dataclasses import dataclass

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder

ELEMENTS = 8
SCALAR_TREE_CYCLES = 12   # Figure 5
LINEAR_VECTOR_CYCLES = 24  # Figure 6
VECTOR_TREE_CYCLES = 12   # Figure 7


@dataclass
class ReductionOutcome:
    """Result of one strategy run."""

    strategy: str
    cycles: int
    instructions_transferred: int
    total: float
    free_cpu_cycles: int


def _machine(program, values):
    machine = MultiTitan(program, config=MachineConfig(model_ibuffer=False))
    machine.fpu.regs.write_group(0, [float(v) for v in values])
    return machine


def scalar_tree_program():
    """Figure 5: pairwise scalar adds; result in R14."""
    b = ProgramBuilder()
    b.fadd(8, 0, 1)
    b.fadd(9, 2, 3)
    b.fadd(10, 4, 5)
    b.fadd(11, 6, 7)
    b.fadd(12, 8, 9)
    b.fadd(13, 10, 11)
    b.fadd(14, 12, 13)
    return b.build(), 14, 7


def linear_vector_program():
    """Figure 6: R8 initialized to zero; one VL-8 chained vector.

    Element *k* computes ``R(9+k) := R(8+k) + Rk``, so each element
    depends on the previous one; the running sum lands in R16.
    """
    b = ProgramBuilder()
    b.fadd(9, 8, 0, vl=ELEMENTS)
    return b.build(), 8 + ELEMENTS, 1


def vector_tree_program():
    """Figure 7: a tree of vector adds; result in R14.

    The pairs summed are (R0,R4)...(R3,R7) because register specifiers
    increment only by 0 or 1 between elements.
    """
    b = ProgramBuilder()
    b.fadd(8, 0, 4, vl=4)
    b.fadd(12, 8, 10, vl=2)
    b.fadd(14, 12, 13, vl=1)
    return b.build(), 14, 3


_STRATEGIES = {
    "scalar_tree": scalar_tree_program,
    "linear_vector": linear_vector_program,
    "vector_tree": vector_tree_program,
}


def run_reduction(strategy, values=None):
    """Run one strategy over 8 values; default values are 1..8."""
    if values is None:
        values = [float(i + 1) for i in range(ELEMENTS)]
    if len(values) != ELEMENTS:
        raise ValueError("reduction expects %d values" % ELEMENTS)
    program, result_register, instructions = _STRATEGIES[strategy]()
    machine = _machine(program, values)
    result = machine.run()
    # Cycles available to the CPU for unrelated work: everything except
    # the instruction-transfer cycles themselves.  (Stall cycles count as
    # free -- "if some other independent CPU or FPU instruction is
    # available, it would typically be scheduled" there.)
    return ReductionOutcome(
        strategy=strategy,
        cycles=result.completion_cycle,
        instructions_transferred=instructions,
        total=machine.fpu.regs.read(result_register),
        free_cpu_cycles=max(0, result.completion_cycle - instructions),
    )


def run_all(values=None):
    """Run all three strategies; return {strategy: ReductionOutcome}."""
    return {name: run_reduction(name, values) for name in _STRATEGIES}
