"""Linpack on the MultiTitan simulator (WRL 89/8 section 3.3).

Implements ``dgefa`` (LU factorization with partial pivoting) and
``dgesl`` (triangular solve) as machine programs, with the daxpy inner
loop in two codings:

* **scalar** -- one element per iteration (the paper's 4.1 MFLOPS
  configuration);
* **vector** -- runtime strip-mining: VL-8 vector multiplies/adds while at
  least eight elements remain, then a scalar cleanup loop (the paper's
  6.1 MFLOPS configuration).

Unlike the Livermore kernels, every loop bound here is a *runtime* value
(the active column length shrinks as elimination proceeds), so the code
is emitted once with register-resident counters -- exercising the ISA the
way a real compiler would.

MFLOPS uses the standard Linpack operation count ``2/3 n^3 + 2 n^2``.
"""

from dataclasses import dataclass

from repro.cpu import isa
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.core.types import Op
from repro.mem.memory import Arena, Memory, WORD_BYTES
from repro.workloads.common import BuiltKernel, Lcg, run_kernel

DEFAULT_N = 32

# --- integer register conventions -----------------------------------------
R_ABASE = 1     # address of a[0][0]
R_N = 2         # n
R_K = 3         # k (outer elimination column)
R_COLK = 4      # address of a[0][k]
R_T1 = 5
R_T2 = 6
R_I = 7
R_L = 8         # pivot row
R_CNT = 9
R_SRC = 10
R_DST = 11
R_J = 12
R_COLJ = 13
R_IPVT = 14
R_B = 15
R_ROW = 16      # 8*n (column stride in bytes)
R_NM1 = 17      # n-1
R_C = 18        # fcmp result
R_EIGHT = 19    # constant 8
R_T3 = 20

# --- FPU register conventions ----------------------------------------------
F_BEST = 0
F_VAL = 1
F_ABS = 2
F_T = 3         # the daxpy/dscal scalar multiplier
F_PIV = 4
F_D0 = 5        # division temporaries
F_D1 = 6
F_SWP = 7
F_GA = 8        # vector group A: F8..F15
F_GB = 16       # vector group B: F16..F23
F_ZERO = 48     # never written; reads as +0.0


def _emit_abs(pb, dest, source):
    """dest = |source| using a compare against the zero register."""
    done = pb.label()
    pb.fadd(dest, source, F_ZERO)
    pb.fcmp(R_C, source, F_ZERO, isa.CMP_LT)
    pb.beq(R_C, 0, done)
    pb.fsub(dest, F_ZERO, source)
    pb.place(done)


def _emit_divide(pb, quotient, a, b):
    """quotient = a / b -- the six-operation reciprocal/Newton schedule."""
    pb.frecip(F_D0, b)
    pb.fiter(F_D1, b, F_D0)
    pb.fmul(F_D0, F_D0, F_D1)
    pb.fiter(F_D1, b, F_D0)
    pb.fmul(F_D0, F_D0, F_D1)
    pb.fmul(quotient, a, F_D0)


def _emit_daxpy(pb, use_vector):
    """y[0..count-1] += t * x[0..count-1].

    In: R_CNT = element count, R_SRC = &x, R_DST = &y, F_T = t.
    Clobbers R_CNT/R_SRC/R_DST, F_GA/F_GB groups.
    """
    done = pb.label()
    if use_vector:
        remainder = pb.label()
        vec_top = pb.here()
        pb.blt(R_CNT, R_EIGHT, remainder)
        for i in range(8):
            pb.fload(F_GA + i, R_SRC, i * WORD_BYTES)
        for i in range(8):
            pb.fload(F_GB + i, R_DST, i * WORD_BYTES)
        pb.falu(Op.MUL, F_GA, F_GA, F_T, vl=8, sra=True, srb=False)
        pb.falu(Op.ADD, F_GB, F_GB, F_GA, vl=8, sra=True, srb=True)
        for i in range(8):
            pb.fstore(F_GB + i, R_DST, i * WORD_BYTES)
        pb.addi(R_SRC, R_SRC, 8 * WORD_BYTES)
        pb.addi(R_DST, R_DST, 8 * WORD_BYTES)
        pb.addi(R_CNT, R_CNT, -8)
        pb.j(vec_top)
        pb.place(remainder)
    scalar_top = pb.here()
    pb.ble(R_CNT, 0, done)
    pb.fload(F_GA, R_SRC, 0)
    pb.falu(Op.MUL, F_GA, F_GA, F_T, vl=1)
    pb.fload(F_GB, R_DST, 0)
    pb.falu(Op.ADD, F_GB, F_GB, F_GA, vl=1)
    pb.fstore(F_GB, R_DST, 0)
    pb.addi(R_SRC, R_SRC, WORD_BYTES)
    pb.addi(R_DST, R_DST, WORD_BYTES)
    pb.addi(R_CNT, R_CNT, -1)
    pb.j(scalar_top)
    pb.place(done)


def _emit_dscal(pb, use_vector):
    """x[0..count-1] *= t.  In: R_CNT, R_DST = &x, F_T = t."""
    done = pb.label()
    if use_vector:
        remainder = pb.label()
        vec_top = pb.here()
        pb.blt(R_CNT, R_EIGHT, remainder)
        for i in range(8):
            pb.fload(F_GA + i, R_DST, i * WORD_BYTES)
        pb.falu(Op.MUL, F_GA, F_GA, F_T, vl=8, sra=True, srb=False)
        for i in range(8):
            pb.fstore(F_GA + i, R_DST, i * WORD_BYTES)
        pb.addi(R_DST, R_DST, 8 * WORD_BYTES)
        pb.addi(R_CNT, R_CNT, -8)
        pb.j(vec_top)
        pb.place(remainder)
    scalar_top = pb.here()
    pb.ble(R_CNT, 0, done)
    pb.fload(F_GA, R_DST, 0)
    pb.falu(Op.MUL, F_GA, F_GA, F_T, vl=1)
    pb.fstore(F_GA, R_DST, 0)
    pb.addi(R_DST, R_DST, WORD_BYTES)
    pb.addi(R_CNT, R_CNT, -1)
    pb.j(scalar_top)
    pb.place(done)


def build_program(n, use_vector):
    """Emit dgefa followed by dgesl; the solution overwrites b."""
    pb = ProgramBuilder()
    # R_ABASE, R_IPVT, R_B, R_N are preloaded by the kernel setup hook.
    pb.muli(R_ROW, R_N, WORD_BYTES)        # column stride in bytes
    pb.addi(R_NM1, R_N, -1)
    pb.li(R_EIGHT, 8)

    # ======================= dgefa =======================
    pb.li(R_K, 0)
    pb.add(R_COLK, R_ABASE, 0)
    k_done = pb.label()
    k_top = pb.here("dgefa_k")
    pb.bge(R_K, R_NM1, k_done)

    # ---- idamax: pivot row l = argmax_{i>=k} |a[i][k]| ----
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.add(R_T2, R_COLK, R_T1)            # &a[k][k]
    pb.fload(F_VAL, R_T2, 0)
    _emit_abs(pb, F_BEST, F_VAL)
    pb.add(R_L, R_K, 0)
    pb.addi(R_I, R_K, 1)
    ida_done = pb.label()
    ida_top = pb.here("idamax")
    pb.bge(R_I, R_N, ida_done)
    pb.addi(R_T2, R_T2, WORD_BYTES)
    pb.fload(F_VAL, R_T2, 0)
    _emit_abs(pb, F_ABS, F_VAL)
    no_new_best = pb.label()
    pb.fcmp(R_C, F_BEST, F_ABS, isa.CMP_LT)
    pb.beq(R_C, 0, no_new_best)
    pb.fadd(F_BEST, F_ABS, F_ZERO)
    pb.add(R_L, R_I, 0)
    pb.place(no_new_best)
    pb.addi(R_I, R_I, 1)
    pb.j(ida_top)
    pb.place(ida_done)

    # ipvt[k] = l
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.add(R_T2, R_IPVT, R_T1)
    pb.sw(R_L, R_T2, 0)

    # ---- swap a[l][k] <-> a[k][k] if l != k ----
    pb.muli(R_T1, R_L, WORD_BYTES)
    pb.add(R_T1, R_COLK, R_T1)            # &a[l][k]
    pb.muli(R_T2, R_K, WORD_BYTES)
    pb.add(R_T2, R_COLK, R_T2)            # &a[k][k]
    no_swap = pb.label()
    pb.beq(R_L, R_K, no_swap)
    pb.fload(F_SWP, R_T1, 0)
    pb.fload(F_VAL, R_T2, 0)
    pb.fstore(F_SWP, R_T2, 0)
    pb.fstore(F_VAL, R_T1, 0)
    pb.place(no_swap)

    # ---- t = -1/pivot; scale the subdiagonal of column k ----
    pb.fload(F_PIV, R_T2, 0)
    # F_T = -(1/pivot): reciprocal then negate via subtraction from zero.
    pb.frecip(F_D0, F_PIV)
    pb.fiter(F_D1, F_PIV, F_D0)
    pb.fmul(F_D0, F_D0, F_D1)
    pb.fiter(F_D1, F_PIV, F_D0)
    pb.fmul(F_D0, F_D0, F_D1)
    pb.fsub(F_T, F_ZERO, F_D0)
    pb.sub(R_CNT, R_NM1, R_K)             # n-1-k elements below the pivot
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.add(R_DST, R_COLK, R_T1)
    pb.addi(R_DST, R_DST, WORD_BYTES)     # &a[k+1][k]
    _emit_dscal(pb, use_vector)

    # ---- eliminate the remaining columns ----
    pb.addi(R_J, R_K, 1)
    pb.add(R_COLJ, R_COLK, R_ROW)
    col_done = pb.label()
    col_top = pb.here("columns")
    pb.bge(R_J, R_N, col_done)
    # t = a[l][j]; if l != k swap it with a[k][j]
    pb.muli(R_T1, R_L, WORD_BYTES)
    pb.add(R_T1, R_COLJ, R_T1)            # &a[l][j]
    pb.muli(R_T2, R_K, WORD_BYTES)
    pb.add(R_T2, R_COLJ, R_T2)            # &a[k][j]
    pb.fload(F_T, R_T1, 0)
    no_swap_j = pb.label()
    pb.beq(R_L, R_K, no_swap_j)
    pb.fload(F_VAL, R_T2, 0)
    pb.fstore(F_VAL, R_T1, 0)
    pb.fstore(F_T, R_T2, 0)
    pb.place(no_swap_j)
    # daxpy: a[k+1..n-1][j] += t * a[k+1..n-1][k]
    pb.sub(R_CNT, R_NM1, R_K)
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.add(R_SRC, R_COLK, R_T1)
    pb.addi(R_SRC, R_SRC, WORD_BYTES)
    pb.add(R_DST, R_COLJ, R_T1)
    pb.addi(R_DST, R_DST, WORD_BYTES)
    _emit_daxpy(pb, use_vector)
    pb.addi(R_J, R_J, 1)
    pb.add(R_COLJ, R_COLJ, R_ROW)
    pb.j(col_top)
    pb.place(col_done)

    pb.addi(R_K, R_K, 1)
    pb.add(R_COLK, R_COLK, R_ROW)
    pb.j(k_top)
    pb.place(k_done)

    # ======================= dgesl =======================
    # Forward elimination: apply the recorded pivots and multipliers to b.
    pb.li(R_K, 0)
    pb.add(R_COLK, R_ABASE, 0)
    fwd_done = pb.label()
    fwd_top = pb.here("dgesl_fwd")
    pb.bge(R_K, R_NM1, fwd_done)
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.add(R_T2, R_IPVT, R_T1)
    pb.lw(R_L, R_T2, 0)
    pb.muli(R_T3, R_L, WORD_BYTES)
    pb.add(R_T3, R_B, R_T3)               # &b[l]
    pb.add(R_T2, R_B, R_T1)               # &b[k]
    pb.fload(F_T, R_T3, 0)                # t = b[l]
    no_swap_b = pb.label()
    pb.beq(R_L, R_K, no_swap_b)
    pb.fload(F_VAL, R_T2, 0)
    pb.fstore(F_VAL, R_T3, 0)
    pb.fstore(F_T, R_T2, 0)
    pb.place(no_swap_b)
    pb.sub(R_CNT, R_NM1, R_K)
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.add(R_SRC, R_COLK, R_T1)
    pb.addi(R_SRC, R_SRC, WORD_BYTES)     # &a[k+1][k]
    pb.add(R_DST, R_B, R_T1)
    pb.addi(R_DST, R_DST, WORD_BYTES)     # &b[k+1]
    _emit_daxpy(pb, use_vector)
    pb.addi(R_K, R_K, 1)
    pb.add(R_COLK, R_COLK, R_ROW)
    pb.j(fwd_top)
    pb.place(fwd_done)

    # Back substitution: b[k] /= a[k][k]; b[0..k-1] -= b[k]*a[0..k-1][k].
    pb.addi(R_K, R_N, -1)
    back_done = pb.label()
    back_top = pb.here("dgesl_back")
    pb.blt(R_K, 0, back_done)
    pb.muli(R_T1, R_K, WORD_BYTES)
    pb.mul(R_T2, R_K, R_ROW)
    pb.add(R_COLK, R_ABASE, R_T2)         # &a[0][k]
    pb.add(R_T2, R_COLK, R_T1)            # &a[k][k]
    pb.add(R_T3, R_B, R_T1)               # &b[k]
    pb.fload(F_VAL, R_T3, 0)
    pb.fload(F_PIV, R_T2, 0)
    _emit_divide(pb, F_VAL, F_VAL, F_PIV)
    pb.fstore(F_VAL, R_T3, 0)
    pb.fsub(F_T, F_ZERO, F_VAL)           # t = -b[k]
    pb.add(R_CNT, R_K, 0)
    pb.add(R_SRC, R_COLK, 0)
    pb.add(R_DST, R_B, 0)
    _emit_daxpy(pb, use_vector)
    pb.addi(R_K, R_K, -1)
    pb.j(back_top)
    pb.place(back_done)

    return pb.build()


# ---------------------------------------------------------------------------
# Reference and kernel assembly
# ---------------------------------------------------------------------------

def generate_system(n, seed=1989):
    """A dense random system Ax = b (column-major A)."""
    rng = Lcg(seed)
    a = [rng.next_float(-1.0, 1.0) for _ in range(n * n)]
    x_true = [rng.next_float(-1.0, 1.0) for _ in range(n)]
    b = []
    for i in range(n):
        b.append(sum(a[i + n * j] * x_true[j] for j in range(n)))
    return a, b, x_true


def reference_solve(n, a, b):
    """Python dgefa/dgesl with the same pivoting strategy."""
    a = list(a)
    b = list(b)
    ipvt = [0] * n
    for k in range(n - 1):
        l = max(range(k, n), key=lambda i: abs(a[i + n * k]))
        ipvt[k] = l
        if l != k:
            a[l + n * k], a[k + n * k] = a[k + n * k], a[l + n * k]
        t = -1.0 / a[k + n * k]
        for i in range(k + 1, n):
            a[i + n * k] *= t
        for j in range(k + 1, n):
            t = a[l + n * j]
            if l != k:
                a[l + n * j] = a[k + n * j]
                a[k + n * j] = t
            for i in range(k + 1, n):
                a[i + n * j] += t * a[i + n * k]
    for k in range(n - 1):
        l = ipvt[k]
        t = b[l]
        if l != k:
            b[l] = b[k]
            b[k] = t
        for i in range(k + 1, n):
            b[i] += t * a[i + n * k]
    for k in range(n - 1, -1, -1):
        b[k] /= a[k + n * k]
        t = -b[k]
        for i in range(k):
            b[i] += t * a[i + n * k]
    return b


def linpack_flops(n):
    """The standard Linpack operation count."""
    return int(2 * n ** 3 / 3 + 2 * n ** 2)


def build_linpack(n=DEFAULT_N, coding="vector", seed=1989):
    """Build the Linpack kernel as a :class:`BuiltKernel`."""
    use_vector = coding == "vector"
    a, b, x_true = generate_system(n, seed)
    expected = reference_solve(n, a, b)

    memory = Memory()
    arena = Arena(memory, base=256)
    a_addr = arena.alloc_array(list(a))
    b_addr = arena.alloc_array(list(b))
    ipvt_addr = arena.alloc(n, initial=[0] * n)
    program = build_program(n, use_vector)

    def setup(machine):
        machine.iregs[R_ABASE] = a_addr
        machine.iregs[R_B] = b_addr
        machine.iregs[R_IPVT] = ipvt_addr
        machine.iregs[R_N] = n

    def check(machine):
        got = machine.memory.read_block(b_addr, n)
        worst = max(abs(g - e) for g, e in zip(got, expected))
        scale = max(1.0, max(abs(e) for e in expected))
        if worst / scale > 1e-8:
            return "linpack solution off by %.3g (rel)" % (worst / scale)
        residual = max(abs(g - t) for g, t in zip(got, x_true))
        if residual / scale > 1e-5:
            return "linpack residual vs true solution %.3g" % (residual / scale)
        return None

    return BuiltKernel(
        name="linpack-%d (%s)" % (n, coding),
        program=program,
        memory=memory,
        nominal_flops=linpack_flops(n),
        setup=setup,
        check=check,
        description="dgefa + dgesl, %s daxpy" % coding,
    )


@dataclass
class LinpackMeasurement:
    n: int
    scalar_mflops: float
    vector_mflops: float
    scalar_cycles: int
    vector_cycles: int
    speedup: float
    check_error: str = None


def measure_linpack(n=DEFAULT_N, config=None, warm=True, seed=1989,
                    backend=None):
    """Run both codings; the paper reports 4.1 scalar / 6.1 vector MFLOPS."""
    scalar = run_kernel(build_linpack(n, "scalar", seed), config=config,
                        warm=warm, backend=backend)
    vector = run_kernel(build_linpack(n, "vector", seed), config=config,
                        warm=warm, backend=backend)
    return LinpackMeasurement(
        n=n,
        scalar_mflops=scalar.mflops,
        vector_mflops=vector.mflops,
        scalar_cycles=scalar.cycles,
        vector_cycles=vector.cycles,
        speedup=vector.mflops / scalar.mflops if scalar.mflops else 0.0,
        check_error=scalar.check_error or vector.check_error,
    )
