"""Vectorized recurrences: Fibonacci as one vector instruction (Figure 8).

"The first 10 Fibonacci numbers (i.e., a recurrence) can be computed by
initializing R0 and R1 to 1 and executing R2 <- R1 + R0 (length 8)."
Arbitrary data dependencies between the elements of a vector are allowed,
because each element issues through the normal scalar interlocks.
"""

from dataclasses import dataclass

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder

FIGURE8_CYCLES = 24  # 8 chained elements x 3-cycle latency


@dataclass
class FibOutcome:
    cycles: int
    values: list
    instructions_transferred: int


def fibonacci_reference(count):
    values = [1.0, 1.0]
    while len(values) < count:
        values.append(values[-1] + values[-2])
    return values[:count]


def fibonacci_program(count=10):
    """Vector instructions computing the first ``count`` Fibonacci numbers.

    One VL-(count-2) chained add when it fits in a single instruction
    (count <= 18); longer sequences chain several vector instructions,
    each seeded by the previous results -- no data movement needed thanks
    to the unified register file.
    """
    if count < 3:
        raise ValueError("need at least 3 numbers for a recurrence")
    b = ProgramBuilder()
    remaining = count - 2
    destination = 2
    instructions = 0
    while remaining > 0:
        step = min(remaining, 16)
        b.fadd(destination, destination - 1, destination - 2, vl=step)
        destination += step
        remaining -= step
        instructions += 1
    return b.build(), instructions


def run_fibonacci(count=10):
    program, instructions = fibonacci_program(count)
    machine = MultiTitan(program, config=MachineConfig(model_ibuffer=False))
    machine.fpu.regs.write(0, 1.0)
    machine.fpu.regs.write(1, 1.0)
    result = machine.run()
    return FibOutcome(
        cycles=result.completion_cycle,
        values=machine.fpu.regs.read_group(0, count),
        instructions_transferred=instructions,
    )
