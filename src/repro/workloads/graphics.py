"""The graphics transform of WRL 89/8 Figures 12-13.

A point ``p`` is transformed by a 4x4 matrix held in R0..R15 (columns in
successive registers, Figure 12).  Each point element is loaded and
multiplied by a matrix column with one VL-4 vector multiply; the four
product vectors are summed in parallel binary trees of VL-4 adds; the
result vector R36..R39 is stored.  The paper reports a total latency of
35 cycles (1.4 us at 40 ns) and 20 MFLOPS, with exactly one scoreboard
stall -- all asserted by the tests.
"""

from dataclasses import dataclass

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES

FIGURE13_CYCLES = 35
FIGURE13_MFLOPS = 20.0
FLOPS_PER_POINT = 28  # 16 multiplies + 12 adds

POINT_BASE_REG = 1
RESULT_BASE_REG = 2


@dataclass
class TransformOutcome:
    cycles: int
    mflops: float
    result: list
    scoreboard_stalls: int


def transform_program(points=1):
    """The Figure 13 code sequence, repeated for ``points`` points."""
    b = ProgramBuilder()
    for point in range(points):
        in_off = point * 4 * WORD_BYTES
        out_off = point * 4 * WORD_BYTES
        # Load and multiply the initial vector.
        b.fload(32, POINT_BASE_REG, in_off + 0)
        b.fmul(16, 32, 0, vl=4, sra=False)    # R[16..19] := R32 * R[0..3]
        b.fload(33, POINT_BASE_REG, in_off + 8)
        b.fmul(20, 33, 4, vl=4, sra=False)
        b.fload(34, POINT_BASE_REG, in_off + 16)
        b.fmul(24, 34, 8, vl=4, sra=False)
        b.fload(35, POINT_BASE_REG, in_off + 24)
        b.fmul(28, 35, 12, vl=4, sra=False)
        # Sum products in parallel binary trees.
        b.fadd(16, 16, 20, vl=4)
        b.fadd(24, 24, 28, vl=4)
        b.fadd(36, 16, 24, vl=4)
        # Store the result vector.
        b.fstore(36, RESULT_BASE_REG, out_off + 0)
        b.fstore(37, RESULT_BASE_REG, out_off + 8)
        b.fstore(38, RESULT_BASE_REG, out_off + 16)
        b.fstore(39, RESULT_BASE_REG, out_off + 24)
    return b.build()


def reference_transform(matrix, point):
    """``result[i] = sum_k matrix[i][k] * point[k]`` (Figure 12 data flow)."""
    return [sum(matrix[i][k] * point[k] for k in range(4)) for i in range(4)]


def load_matrix(machine, matrix):
    """Place the transform matrix in R0..R15, columns contiguous."""
    for column in range(4):
        for row in range(4):
            machine.fpu.regs.write(column * 4 + row, float(matrix[row][column]))


def run_transform(matrix=None, points=None, warm=True):
    """Transform one or more points; matrix assumed preloaded (the paper
    assumes "many points will be transformed by one matrix")."""
    if matrix is None:
        matrix = [[float(i * 4 + j + 1) for j in range(4)] for i in range(4)]
    if points is None:
        points = [[1.0, 2.0, 3.0, 1.0]]
    memory = Memory()
    arena = Arena(memory, base=64)
    flat = [coordinate for point in points for coordinate in point]
    in_base = arena.alloc_array([float(v) for v in flat])
    out_base = arena.alloc(4 * len(points))

    program = transform_program(len(points))
    machine = MultiTitan(program, memory=memory,
                         config=MachineConfig(model_ibuffer=False))
    machine.iregs[POINT_BASE_REG] = in_base
    machine.iregs[RESULT_BASE_REG] = out_base
    load_matrix(machine, matrix)
    if warm:
        machine.dcache.warm_range(in_base, 8 * len(flat) * 2)
    result = machine.run()
    outputs = [memory.read_block(out_base + 4 * i * WORD_BYTES, 4)
               for i in range(len(points))]
    return TransformOutcome(
        cycles=result.completion_cycle,
        mflops=result.mflops(FLOPS_PER_POINT * len(points)),
        result=outputs if len(points) > 1 else outputs[0],
        scoreboard_stalls=machine.stats.stall_scoreboard,
    )
