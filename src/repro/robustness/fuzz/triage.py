"""Triage bundles: everything needed to replay a fuzz failure.

A bundle is a directory:

* ``program.s`` -- the *minimised* failing program, in assembler text
  that reassembles to the exact instruction tuples
  (:meth:`repro.cpu.program.Program.to_source`);
* ``original.s`` -- the unshrunk generated program, for context;
* ``memory.json`` -- the initial memory image, bit-exact;
* ``snapshot.json`` -- ``Machine.snapshot()`` captured immediately
  before the failing cycle of the minimised run (the machine paused via
  ``stop_cycle``, planted bug installed, detection stack off);
* ``meta.json`` -- seed, generator strategy trace, planted bug,
  failure signature, the full error text, and the one-line repro
  command.

``meta.json`` stores plain JSON; the memory image and snapshot go
through :func:`encode_data`, which keeps what JSON would mangle:
non-finite floats travel as ``{"~float": hex}``, tuples as
``{"~tuple": [...]}``, and non-string-keyed dicts as
``{"~dict": [[key, value], ...]}``.  Finite floats are left to JSON
itself -- Python emits shortest-round-trip representations, so they
come back bit-exact (including the sign of ``-0.0``).
"""

import json
import os

from repro.cpu.assembler import assemble

from repro.robustness.fuzz.driver import run_case

#: The one-line reproduction command stored in every bundle.
REPRO_COMMAND = "python -m repro.tools.cli fuzz --repro %s"

_NONFINITE = frozenset(("inf", "-inf", "nan"))


def encode_data(value):
    """Recursively encode plain data for strict JSON, losslessly."""
    if isinstance(value, bool) or value is None \
            or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {"~float": value.hex()}
        return value
    if isinstance(value, tuple):
        return {"~tuple": [encode_data(item) for item in value]}
    if isinstance(value, list):
        return [encode_data(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) and not key.startswith("~")
               for key in value):
            return {key: encode_data(item) for key, item in value.items()}
        return {"~dict": [[encode_data(key), encode_data(item)]
                          for key, item in value.items()]}
    raise TypeError("cannot encode %r for a triage bundle" % (value,))


def decode_data(value):
    """Inverse of :func:`encode_data`."""
    if isinstance(value, list):
        return [decode_data(item) for item in value]
    if isinstance(value, dict):
        if set(value) == {"~float"}:
            return float.fromhex(value["~float"])
        if set(value) == {"~tuple"}:
            return tuple(decode_data(item) for item in value["~tuple"])
        if set(value) == {"~dict"}:
            return {decode_data(key): decode_data(item)
                    for key, item in value["~dict"]}
        return {key: decode_data(item) for key, item in value.items()}
    return value


def _capture_snapshot(program, memory_words, bug, failure_cycle):
    """The machine's state paused just before the failing cycle.

    The detection stack is off (no checker, no audits): the point is
    the pre-failure *architectural* state, which a raising run never
    yields.  Returns None when the failure fires before the pause point
    can be reached cleanly.
    """
    from repro.robustness.fuzz.bugs import install_bug
    from repro.robustness.fuzz.driver import build_machine

    if failure_cycle is None:
        return None
    machine = build_machine(program, memory_words, audit=False)
    undo = install_bug(machine, bug) if bug is not None else None
    try:
        machine.run(stop_cycle=failure_cycle)
        return machine.snapshot()
    except Exception:  # noqa: BLE001 - snapshot is best-effort context
        return None
    finally:
        if undo is not None:
            undo()


def write_bundle(directory, case, result, shrunk, bug=None):
    """Write a triage bundle for one shrunk failure; returns the path.

    ``case`` is the originating :class:`~repro.robustness.fuzz.
    generator.GeneratedCase`, ``result`` the failing :class:`~repro.
    robustness.fuzz.driver.CaseResult`, ``shrunk`` the :class:`~repro.
    robustness.fuzz.shrink.ShrinkResult`.
    """
    os.makedirs(directory, exist_ok=True)
    minimized = shrunk.program

    # The minimised program's own failing cycle (it differs from the
    # original's) anchors the pre-failure snapshot.
    replay = run_case(minimized, case.memory_words, bug=bug)
    snapshot = _capture_snapshot(minimized, case.memory_words, bug,
                                 replay.failure_cycle)

    with open(os.path.join(directory, "program.s"), "w") as handle:
        handle.write(minimized.to_source())
    with open(os.path.join(directory, "original.s"), "w") as handle:
        handle.write(case.program.to_source())
    with open(os.path.join(directory, "memory.json"), "w") as handle:
        json.dump(encode_data(list(case.memory_words)), handle)
    with open(os.path.join(directory, "snapshot.json"), "w") as handle:
        json.dump(encode_data(snapshot), handle)
    meta = {
        "seed": case.seed,
        "strategies": list(case.strategies),
        "bug": bug,
        "signature": result.signature,
        "report": str(result.error),
        "failure_cycle": replay.failure_cycle,
        "original_instructions": len(case.program.instructions),
        "minimized_instructions": len(minimized.instructions),
        "shrink_attempts": shrunk.attempts,
        "repro": REPRO_COMMAND % directory,
    }
    with open(os.path.join(directory, "meta.json"), "w") as handle:
        json.dump(meta, handle, indent=2)
    return directory


def load_bundle(directory):
    """Load a bundle; returns (program, memory_words, meta)."""
    with open(os.path.join(directory, "program.s")) as handle:
        program = assemble(handle.read())
    with open(os.path.join(directory, "memory.json")) as handle:
        memory_words = decode_data(json.load(handle))
    with open(os.path.join(directory, "meta.json")) as handle:
        meta = json.load(handle)
    return program, memory_words, meta


def repro_bundle(directory):
    """Re-run a bundle's minimised program; returns (result, meta).

    The caller decides what "reproduced" means; the natural check is
    ``result.failed and result.signature == meta["signature"]``.
    """
    program, memory_words, meta = load_bundle(directory)
    result = run_case(program, memory_words, bug=meta.get("bug"))
    return result, meta
