"""Coverage binning for the differential fuzzer.

A :class:`CoverageMap` subscribes to a machine's ``commit`` events and
classifies every committed instruction into one architectural bin.  The
bin universe is fixed and enumerable (:func:`coverage_universe`), so a
campaign can report "bins hit / bins defined" and the generator can ask
which shapes it has never produced (:meth:`CoverageMap.unhit`) and steer
its weights toward them.

Bins encode the shape of the *timing* event, not just the opcode:

* FPU ALU: ``("falu", op, vl-bucket, stride-kind, hazard)`` where the
  stride kind is the SRa/SRb bit pair (``"u0"``/``"u1"`` for unary ops)
  and the hazard is whether the transfer found the ALU instruction
  register busy;
* FPU loads/stores: which issue-stage interlock (scoreboard, the section
  2.3.2 current-element interlock, or the memory port) delayed them, and
  whether the data-cache reference hit or missed;
* integer loads/stores: port and delay-slot stalls, hit/miss;
* FCMP per condition with its interlock class; branches per opcode with
  taken/not-taken; integer ALU ops with/without delay-slot stalls;
* ``("overflow", vl-bucket)`` when a vector instruction aborts on a
  mid-vector overflow (section 2.3.3).

Classification reads the deltas of the run's stall counters between
commits -- each stalled issue attempt burns a cycle *before* the commit
event fires, so the counter movement since the previous commit belongs
to the committed instruction.
"""

from repro.core.types import Op
from repro.cpu import isa

VL_BUCKETS = ("1", "2-4", "5-8", "9-16")

#: FPU ALU ops by arity (the stride-kind encoding differs).
BINARY_FALU_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.ITER, Op.IMUL)
UNARY_FALU_OPS = (Op.RECIP, Op.FLOAT, Op.TRUNC)

FALU_HAZARDS = ("none", "ir_busy")
LS_HAZARDS = ("none", "scoreboard", "interlock", "port")
INT_LS_HAZARDS = ("none", "port", "delay")
FCMP_HAZARDS = ("none", "scoreboard", "interlock")
FCMP_CONDS = {isa.CMP_EQ: "eq", isa.CMP_LT: "lt", isa.CMP_LE: "le"}

_DELAY_INT_OPS = ("add", "sub", "mul", "and", "or", "xor",
                  "addi", "muli", "sll", "sra")


def vl_bucket(vl):
    """The coverage bucket for a vector length (1..16)."""
    if vl <= 1:
        return "1"
    if vl <= 4:
        return "2-4"
    if vl <= 8:
        return "5-8"
    return "9-16"


def _build_universe():
    bins = set()
    for op in BINARY_FALU_OPS:
        for bucket in VL_BUCKETS:
            for stride in ("00", "01", "10", "11"):
                for hazard in FALU_HAZARDS:
                    bins.add(("falu", op.name.lower(), bucket, stride, hazard))
    for op in UNARY_FALU_OPS:
        for bucket in VL_BUCKETS:
            for stride in ("u0", "u1"):
                for hazard in FALU_HAZARDS:
                    bins.add(("falu", op.name.lower(), bucket, stride, hazard))
    for kind in ("fload", "fstore"):
        for hazard in LS_HAZARDS:
            for outcome in ("hit", "miss"):
                bins.add((kind, hazard, outcome))
    for kind in ("lw", "sw"):
        for hazard in INT_LS_HAZARDS:
            for outcome in ("hit", "miss"):
                bins.add((kind, hazard, outcome))
    for cond in FCMP_CONDS.values():
        for hazard in FCMP_HAZARDS:
            bins.add(("fcmp", cond, hazard))
    for opcode in sorted(isa.BRANCH_OPS):
        for direction in ("taken", "not-taken"):
            bins.add(("branch", isa.OPCODE_NAMES[opcode], direction))
    bins.add(("branch", "j", "taken"))
    for name in _DELAY_INT_OPS:
        for hazard in ("none", "delay"):
            bins.add(("int", name, hazard))
    bins.add(("int", "li", "none"))
    bins.add(("int", "nop", "none"))
    for bucket in VL_BUCKETS:
        bins.add(("overflow", bucket))
    return frozenset(bins)


#: Every bin the fuzzer can hit; the denominator of coverage reports.
COVERAGE_UNIVERSE = _build_universe()


def coverage_universe():
    """The full (frozen) bin universe."""
    return COVERAGE_UNIVERSE


class CoverageMap:
    """Per-bin hit counts, accumulated across any number of runs.

    Attach to each machine before ``run()``; the map survives detach, so
    one instance accumulates a whole campaign and its :meth:`unhit` view
    feeds the generator's bias between cases.
    """

    #: (attribute path under machine, field) pairs snapshotted per commit.
    _STAT_FIELDS = ("stall_alu_ir_busy", "stall_scoreboard",
                    "stall_vector_interlock", "stall_port",
                    "stall_int_delay", "taken_branches")

    def __init__(self):
        self.hits = {}
        self._machine = None
        self._prev = None
        self._last_falu_bucket = None

    # -- attachment ------------------------------------------------------

    def attach(self, machine):
        if self._machine is not None:
            raise ValueError("coverage map already attached to a machine")
        self._machine = machine
        self._prev = self._read_counters()
        machine.events.subscribe("commit", self._on_commit)
        return self

    def detach(self):
        if self._machine is None:
            return self
        # Attribute any overflow abort that happened after the last
        # commit (vector elements keep issuing through the drain).
        self._check_overflow(self._read_counters())
        self._machine.events.unsubscribe("commit", self._on_commit)
        self._machine = None
        self._prev = None
        return self

    def _read_counters(self):
        machine = self._machine
        stats = machine.stats
        counters = {field: getattr(stats, field)
                    for field in self._STAT_FIELDS}
        counters["dcache_misses"] = machine.dcache.misses
        counters["overflow_aborts"] = machine.fpu.stats.overflow_aborts
        return counters

    # -- classification --------------------------------------------------

    def record(self, bin_key):
        self.hits[bin_key] = self.hits.get(bin_key, 0) + 1

    def _check_overflow(self, now):
        if now["overflow_aborts"] > self._prev["overflow_aborts"] \
                and self._last_falu_bucket is not None:
            self.record(("overflow", self._last_falu_bucket))

    def _on_commit(self, event):
        now = self._read_counters()
        prev = self._prev
        delta = {key: now[key] - prev[key] for key in prev}
        self._prev = now
        overflowed = delta["overflow_aborts"] > 0
        if overflowed and self._last_falu_bucket is not None:
            self.record(("overflow", self._last_falu_bucket))
        instruction = event.instruction
        opcode = instruction[0]

        if opcode == isa.FALU:
            _, op, _rr, _ra, _rb, vl, sra, srb, unary = instruction
            bucket = vl_bucket(vl)
            if overflowed and self._last_falu_bucket is None:
                # A first element issued -- and overflowed -- right at
                # this instruction's own transfer.
                self.record(("overflow", bucket))
            self._last_falu_bucket = bucket
            stride = "u%d" % sra if unary else "%d%d" % (sra, srb)
            hazard = "ir_busy" if delta["stall_alu_ir_busy"] else "none"
            self.record(("falu", Op(op).name.lower(), bucket, stride, hazard))
        elif opcode in (isa.FLOAD, isa.FSTORE):
            kind = "fload" if opcode == isa.FLOAD else "fstore"
            if delta["stall_vector_interlock"]:
                hazard = "interlock"
            elif delta["stall_scoreboard"]:
                hazard = "scoreboard"
            elif delta["stall_port"]:
                hazard = "port"
            else:
                hazard = "none"
            outcome = "miss" if delta["dcache_misses"] else "hit"
            self.record((kind, hazard, outcome))
        elif opcode in (isa.LW, isa.SW):
            kind = "lw" if opcode == isa.LW else "sw"
            if delta["stall_port"]:
                hazard = "port"
            elif delta["stall_int_delay"]:
                hazard = "delay"
            else:
                hazard = "none"
            outcome = "miss" if delta["dcache_misses"] else "hit"
            self.record((kind, hazard, outcome))
        elif opcode == isa.FCMP:
            cond = FCMP_CONDS.get(instruction[4], "le")
            if delta["stall_vector_interlock"]:
                hazard = "interlock"
            elif delta["stall_scoreboard"]:
                hazard = "scoreboard"
            else:
                hazard = "none"
            self.record(("fcmp", cond, hazard))
        elif opcode in isa.BRANCH_OPS:
            direction = "taken" if delta["taken_branches"] else "not-taken"
            self.record(("branch", isa.OPCODE_NAMES[opcode], direction))
        elif opcode == isa.J:
            self.record(("branch", "j", "taken"))
        elif opcode == isa.NOP:
            self.record(("int", "nop", "none"))
        elif opcode == isa.LI:
            self.record(("int", "li", "none"))
        else:
            name = isa.OPCODE_NAMES.get(opcode)
            if name in _DELAY_INT_OPS:
                hazard = "delay" if delta["stall_int_delay"] else "none"
                self.record(("int", name, hazard))
            # HALT / RFE commits carry no bin.

    # -- reporting -------------------------------------------------------

    def hit_count(self):
        return len(self.hits)

    def unhit(self):
        """Bins defined but never hit, as a sorted list."""
        return sorted(COVERAGE_UNIVERSE - set(self.hits))

    def unhit_falu(self):
        """Unhit FPU ALU bins -- the generator's bias targets."""
        return [key for key in self.unhit() if key[0] == "falu"]

    def merge(self, other):
        for key, count in other.hits.items():
            self.hits[key] = self.hits.get(key, 0) + count
        return self

    def summary(self):
        total = len(COVERAGE_UNIVERSE)
        hit = self.hit_count()
        return ("coverage: %d/%d bins hit (%.1f%%)"
                % (hit, total, 100.0 * hit / total))

    def report(self, max_unhit=20):
        lines = [self.summary()]
        unhit = self.unhit()
        if unhit:
            lines.append("unhit bins (%d):" % len(unhit))
            for key in unhit[:max_unhit]:
                lines.append("  %s" % (key,))
            if len(unhit) > max_unhit:
                lines.append("  ... and %d more" % (len(unhit) - max_unhit))
        return "\n".join(lines)
