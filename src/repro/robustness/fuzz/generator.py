"""Seeded generation of architecturally valid MultiTitan programs.

Every program this module emits is valid **by construction**: it
assembles, terminates, and -- the property the differential fuzzer
rests on -- is free of the one behaviour the paper leaves to the
compiler, loads/stores/compares that touch *deeper* (not-yet-issued)
elements of an in-flight vector instruction (WRL 89/8 section 2.3.2).
The hardware interlocks only the current-element specifiers sitting in
the instruction register; a generated program may touch those (that is
the ``ls_conflict`` strategy -- it exercises the interlock), but never
the deeper footprint, whose outcome is timing-dependent and would
diverge from the sequential reference for a correct machine.

The generator tracks three pieces of static state to guarantee this:

* a **type tag** per FPU register (``"f"``/``"i"``): ``execute_op``
  distinguishes float and integer register values, so FLOAT/IMUL only
  ever see int-tagged registers and ADD/SUB/MUL/ITER/RECIP only
  float-tagged ones.  Operations that can overflow additionally require
  an all-float destination range, so a mid-vector overflow abort (which
  leaves the remaining elements unwritten) cannot strand a stale tag.
* the **deep footprint** of vector instructions still possibly in
  flight: the union of every element-1..vl-1 register specifier.
  Inside loop bodies and conditionally executed blocks footprints
  accumulate instead of being replaced, and vector instructions emitted
  into a loop body refuse footprints overlapping any load/store/compare
  already in the body -- iteration N+1's leading loads run while
  iteration N's trailing vector may still be issuing.
* **known integer registers**: loop bounds and branch operands whose
  values the generator derives statically, so every backward branch is
  a counted loop and every other branch jumps strictly forward --
  termination by construction.

Memory is laid out in fixed regions (float data, huge values near the
overflow threshold, integer data, and separate float/int scratch areas)
addressed through base registers the program never modifies, so every
access is aligned and in range.

The weighted strategies favour the hazard-rich shapes named in the
paper: RAW chains feeding vector sources, recurrences/reductions
through overlapping specifiers, mid-vector overflow aborts, load/store
traffic against in-flight vectors, and strided streams that straddle
cache lines.  When a :class:`~repro.robustness.fuzz.coverage.
CoverageMap` is supplied, the generator spends a fraction of its budget
synthesising exactly the FPU ALU shapes the map has never seen.
"""

from random import Random

from repro.core.encoding import MAX_VECTOR_LENGTH, NUM_REGISTERS
from repro.core.types import Op, UNARY_OPS
from repro.cpu import isa
from repro.cpu.program import ProgramBuilder
from repro.robustness.fuzz.coverage import vl_bucket

# ----------------------------------------------------------------------
# Memory layout (word indices; addresses are words * 8)
# ----------------------------------------------------------------------

FLOAT_WORDS = (0, 64)       # exact binary fractions
HUGE_WORDS = (64, 72)       # powers of two near the overflow threshold
INT_WORDS = (72, 104)       # small integers
FSCRATCH_WORDS = (104, 168)  # float scratch (fstore targets)
ISCRATCH_WORDS = (168, 200)  # integer scratch (sw targets)
MEMORY_WORDS = 200

#: Base registers r1..r5 hold the region bases and are never modified.
R_FLOAT, R_HUGE, R_INT, R_FSCR, R_ISCR = 1, 2, 3, 4, 5
BASE_REGS = {
    R_FLOAT: FLOAT_WORDS[0] * 8,
    R_HUGE: HUGE_WORDS[0] * 8,
    R_INT: INT_WORDS[0] * 8,
    R_FSCR: FSCRATCH_WORDS[0] * 8,
    R_ISCR: ISCRATCH_WORDS[0] * 8,
}

#: Integer registers free for generated code (r0 reads zero, r1..r5 are
#: bases).
FREE_IREGS = tuple(range(6, isa.NUM_INT_REGISTERS))

#: Float-in, float-out operations; all of them can overflow, so they
#: require an all-float destination range (see the module docstring).
F_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.ITER, Op.RECIP)

_NEEDS = {Op.FLOAT: "i", Op.IMUL: "i"}
_PRODUCES = {Op.TRUNC: "i", Op.IMUL: "i"}


def build_memory_words(rng):
    """The initial memory image for one generated case.

    Float data uses exact binary fractions so every arithmetic result is
    bit-reproducible across platforms; integer words are genuinely
    ``int``-typed (the register file distinguishes the two).
    """
    words = [0.0] * MEMORY_WORDS
    for index in range(*FLOAT_WORDS):
        words[index] = rng.randrange(-2048, 2049) * 0.125
    for index in range(*HUGE_WORDS):
        words[index] = 2.0 ** rng.randrange(980, 1024)
    for index in range(*INT_WORDS):
        words[index] = rng.randrange(-999, 1000)
    for index in range(*FSCRATCH_WORDS):
        words[index] = rng.randrange(-64, 65) * 0.25
    for index in range(*ISCRATCH_WORDS):
        words[index] = rng.randrange(-9, 10)
    return words


class GeneratedCase:
    """One generated fuzz case: the program, its memory image, and how
    it was made (seed + the strategy trace, for triage bundles)."""

    __slots__ = ("program", "memory_words", "seed", "strategies")

    def __init__(self, program, memory_words, seed, strategies):
        self.program = program
        self.memory_words = memory_words
        self.seed = seed
        self.strategies = tuple(strategies)


class _Generator:
    """Single-use builder of one :class:`GeneratedCase`."""

    def __init__(self, seed, coverage=None, max_instructions=64):
        self.rng = Random(seed)
        self.seed = seed
        self.coverage = coverage
        self.max_instructions = max_instructions
        self.builder = ProgramBuilder()
        self.tags = ["f"] * NUM_REGISTERS
        self.scratch_tags = {}          # FSCRATCH word index -> tag
        self.deep = set()               # deep footprint of in-flight vectors
        self.known = {0: 0}             # int register -> statically known value
        self.block_depth = 0            # >0 inside loop body / cond block
        self.body_ls_regs = set()       # fregs touched by ls/fcmp in loop body
        self.in_loop = False
        self.reserved_iregs = set()     # loop counters/bounds: never clobber
        self.strategies = []
        self.last_falu_vl = 0

    # -- small helpers ---------------------------------------------------

    @property
    def emitted(self):
        return len(self.builder._instructions)

    def budget_left(self):
        return self.max_instructions - self.emitted

    def pick_freg(self, tag=None, avoid_deep=False, span=1):
        """A random FPU register (start of a ``span``-register run),
        optionally tag- and footprint-constrained."""
        rng = self.rng
        for _ in range(40):
            reg = rng.randrange(NUM_REGISTERS - span + 1)
            run = range(reg, reg + span)
            if tag is not None and any(self.tags[r] != tag for r in run):
                continue
            if avoid_deep and any(r in self.deep for r in run):
                continue
            return reg
        return None

    def pick_vl(self):
        rng = self.rng
        bucket = rng.choice(("1", "2-4", "5-8", "9-16"))
        low, _, high = bucket.partition("-")
        return rng.randint(int(low), int(high or low))

    # -- FPU ALU emission with full validity checking --------------------

    def _falu_tags(self, op, rr, ra, rb, vl, sra, srb):
        """Element-by-element tag simulation of one FPU ALU instruction.

        Returns the post-instruction tag list when the instruction is
        valid (every element sees correctly typed operands; overflowing
        ops see an all-float destination; block context stays
        tag-neutral), else None.
        """
        unary = op in UNARY_OPS
        if not 1 <= vl <= MAX_VECTOR_LENGTH:
            return None
        if rr + vl > NUM_REGISTERS:
            return None
        if ra + (vl - 1) * (1 if sra else 0) >= NUM_REGISTERS:
            return None
        if not unary and rb + (vl - 1) * (1 if srb else 0) >= NUM_REGISTERS:
            return None
        need = _NEEDS.get(op, "f")
        produce = _PRODUCES.get(op, "f")
        can_overflow = op in F_OPS
        tags = list(self.tags)
        r, a, b = rr, ra, rb
        for _ in range(vl):
            if tags[a] != need:
                return None
            if not unary and tags[b] != need:
                return None
            if can_overflow and tags[r] != "f":
                return None
            if self.block_depth and tags[r] != produce:
                return None
            tags[r] = produce
            r += 1
            a += 1 if sra else 0
            b += 1 if srb else 0
        return tags

    def _falu_deep(self, op, rr, ra, rb, vl, sra, srb):
        unary = op in UNARY_OPS
        deep = set()
        for element in range(1, vl):
            deep.add(rr + element)
            deep.add(ra + (element if sra else 0))
            if not unary:
                deep.add(rb + (element if srb else 0))
        return deep

    def try_falu(self, op, rr, ra, rb, vl, sra, srb):
        """Emit one FPU ALU instruction if it is valid here; returns
        True on success."""
        if op in UNARY_OPS:
            # Canonical encoding: unary source text omits rb/SRb, so the
            # builder must emit the same zeros the assembler would.
            rb, srb = 0, 0
        tags = self._falu_tags(op, rr, ra, rb, vl, sra, srb)
        if tags is None:
            return False
        deep = self._falu_deep(op, rr, ra, rb, vl, sra, srb)
        if self.in_loop and deep & self.body_ls_regs:
            # Iteration N+1's leading loads would race this vector.
            return False
        self.tags = tags
        if self.block_depth:
            self.deep |= deep
        else:
            self.deep = deep
        self.builder.falu(op, rr, ra, rb, vl,
                          sra=bool(sra), srb=bool(srb))
        self.last_falu_vl = vl
        return True

    def random_falu(self, op=None, vl=None, sra=None, srb=None):
        """Emit one random valid FPU ALU instruction; returns its
        (rr, ra, rb, vl, sra, srb) on success, else None."""
        rng = self.rng
        for _ in range(40):
            this_op = op if op is not None else rng.choice(
                (Op.ADD, Op.SUB, Op.MUL, Op.ITER, Op.RECIP,
                 Op.ADD, Op.SUB, Op.MUL,  # weight the common flops
                 Op.FLOAT, Op.TRUNC, Op.IMUL))
            this_vl = vl if vl is not None else self.pick_vl()
            this_sra = sra if sra is not None else rng.randrange(2)
            this_srb = srb if srb is not None else rng.randrange(2)
            if this_op in UNARY_OPS:
                this_srb = 0
            rr = rng.randrange(NUM_REGISTERS)
            ra = rng.randrange(NUM_REGISTERS)
            rb = 0 if this_op in UNARY_OPS else rng.randrange(NUM_REGISTERS)
            if self.try_falu(this_op, rr, ra, rb, this_vl, this_sra,
                             this_srb):
                return (rr, ra, rb, this_vl, this_sra, this_srb)
        return None

    def materialize(self, tag, regs):
        """Load registers from the matching data region so their tags
        become ``tag``; returns True when all loads were legal."""
        for reg in regs:
            if self.tags[reg] == tag:
                continue
            if reg in self.deep or self.block_depth:
                return False
            if tag == "i":
                word = self.rng.randrange(*INT_WORDS) - INT_WORDS[0]
                self.builder.fload(reg, R_INT, word * 8)
            else:
                word = self.rng.randrange(*FLOAT_WORDS)
                self.builder.fload(reg, R_FLOAT, word * 8)
            self.tags[reg] = tag
            if self.in_loop:
                self.body_ls_regs.add(reg)
        return True

    # -- non-vector emission with footprint/tag discipline ---------------

    def emit_fload(self, reg, base, offset, tag):
        """An FPU load honouring footprint and block tag-neutrality."""
        if reg in self.deep:
            return False
        if self.block_depth and self.tags[reg] != tag:
            return False
        self.builder.fload(reg, base, offset)
        self.tags[reg] = tag
        if self.in_loop:
            self.body_ls_regs.add(reg)
        return True

    def emit_fstore(self, reg, word):
        """An FPU store into the float scratch region."""
        if reg in self.deep:
            return False
        slot_tag = self.scratch_tags.get(word, "f")
        if self.block_depth and self.tags[reg] != slot_tag:
            return False
        self.builder.fstore(reg, R_FSCR, (word - FSCRATCH_WORDS[0]) * 8)
        self.scratch_tags[word] = self.tags[reg]
        if self.in_loop:
            self.body_ls_regs.add(reg)
        return True

    def emit_fcmp(self, rd, fa, fb, cond):
        if fa in self.deep or fb in self.deep:
            return False
        self.builder.fcmp(rd, fa, fb, cond)
        self.known.pop(rd, None)
        if self.in_loop:
            self.body_ls_regs.update((fa, fb))
        return True

    def free_ireg(self, exclude=()):
        rng = self.rng
        candidates = [reg for reg in FREE_IREGS
                      if reg not in exclude
                      and reg not in self.reserved_iregs]
        return rng.choice(candidates) if candidates else None

    # -- strategies ------------------------------------------------------

    def s_vector_alu(self):
        emitted = self.random_falu() is not None
        if emitted and self.rng.random() < 0.5:
            self.random_falu()
        return emitted

    def s_raw_chain(self):
        """A vector instruction whose sources are the destination range
        of the previous one -- a RAW chain resolved element by element
        through the scoreboard."""
        rng = self.rng
        first = self.random_falu(op=rng.choice(F_OPS))
        if first is None:
            return False
        rr, _ra, _rb, vl, _sra, _srb = first
        op = rng.choice(F_OPS)
        target = self.pick_freg(tag="f", span=vl)
        if target is None:
            return False
        if not self.try_falu(op, target, rr, rr, vl, 1, 1):
            return False
        if rng.random() < 0.7:
            # Touch the chained vector's current-element specifiers
            # while it waits on its sources: the issue-stage interlock
            # (section 2.3.2) fires, which plain in-flight vectors
            # rarely trigger (their elements issue too quickly).
            choice = rng.random()
            if choice < 0.4 and target not in self.deep:
                self.emit_fstore(target, rng.randrange(*FSCRATCH_WORDS))
            elif choice < 0.7 and rr not in self.deep:
                word = rng.randrange(*FLOAT_WORDS)
                self.emit_fload(rr, R_FLOAT, word * 8, "f")
            elif target not in self.deep and rr not in self.deep:
                rd = self.free_ireg()
                if rd is not None:
                    self.emit_fcmp(rd, target, rr, rng.choice(
                        (isa.CMP_EQ, isa.CMP_LT, isa.CMP_LE)))
        return True

    def s_recurrence(self):
        """A first-order recurrence: element k's source is element k-1's
        destination (rr = ra + 1 with both striding), the paper's
        "arbitrary data dependencies between elements are legal"."""
        vl = max(2, self.pick_vl())
        base = self.pick_freg(tag="f", span=vl + 1)
        if base is None:
            return False
        constant = self.pick_freg(tag="f")
        if constant is None:
            return False
        op = self.rng.choice((Op.ADD, Op.SUB, Op.MUL))
        return self.try_falu(op, base + 1, base, constant, vl, 1, 0)

    def s_ls_conflict(self):
        """Loads/stores/compares against the *current-element* specifiers
        of an in-flight vector -- the interlocked-but-legal side of
        section 2.3.2."""
        first = self.random_falu(op=self.rng.choice(F_OPS),
                                 vl=self.rng.randint(4, MAX_VECTOR_LENGTH))
        if first is None:
            return False
        rr, ra, rb, _vl, _sra, _srb = first
        candidates = [reg for reg in (rr, ra, rb) if reg not in self.deep]
        if not candidates:
            return True
        rng = self.rng
        for _ in range(rng.randint(1, 2)):
            reg = rng.choice(candidates)
            choice = rng.random()
            if choice < 0.4:
                word = rng.randrange(*FLOAT_WORDS)
                self.emit_fload(reg, R_FLOAT, word * 8, "f")
            elif choice < 0.7:
                word = rng.randrange(*FSCRATCH_WORDS)
                self.emit_fstore(reg, word)
            else:
                rd = self.free_ireg()
                other = rng.choice(candidates)
                if rd is not None:
                    self.emit_fcmp(rd, reg, other, rng.choice(
                        (isa.CMP_EQ, isa.CMP_LT, isa.CMP_LE)))
        return True

    def s_mem_stream(self):
        """A strided load/store stream: small strides stay within cache
        lines, large ones straddle a new line per access."""
        rng = self.rng
        stride_words = rng.choice((1, 1, 2, 4, 8))
        count = rng.randint(3, 6)
        kind = rng.random()
        if kind < 0.4:
            # FPU load stream from the float region.
            start = rng.randrange(FLOAT_WORDS[0],
                                  FLOAT_WORDS[1] - stride_words * count)
            reg = self.pick_freg(avoid_deep=True, span=count)
            if reg is None:
                return False
            for index in range(count):
                self.emit_fload(reg + index, R_FLOAT,
                                (start + index * stride_words) * 8, "f")
        elif kind < 0.6:
            # FPU store stream (back-to-back stores hold the port).
            regs = [self.pick_freg(avoid_deep=True) for _ in range(count)]
            words = rng.sample(range(*FSCRATCH_WORDS), count)
            for reg, word in zip(regs, words):
                if reg is not None:
                    self.emit_fstore(reg, word)
        elif kind < 0.8:
            # Integer load stream with an immediate use (delay slot).
            # The integer region is only 32 words, so clamp the stride.
            stride_words = min(stride_words, 4)
            span = stride_words * count
            start = rng.randrange(INT_WORDS[0], INT_WORDS[1] - span)
            rd = self.free_ireg()
            acc = self.free_ireg(exclude=(rd,))
            if rd is None or acc is None:
                return False
            consumers = {"add": self.builder.add, "sub": self.builder.sub,
                         "mul": self.builder.mul, "and": self.builder.and_,
                         "or": self.builder.or_, "xor": self.builder.xor}
            immediates = {"addi": self.builder.addi,
                          "muli": self.builder.muli,
                          "sll": self.builder.sll, "sra": self.builder.sra}
            for index in range(count):
                self.builder.lw(rd, R_INT,
                                (start - INT_WORDS[0]
                                 + index * stride_words) * 8)
                # Consume the load immediately: the delay-slot stall.
                name = rng.choice(sorted(consumers) + sorted(immediates))
                if name in consumers:
                    consumers[name](acc, acc, rd)
                else:
                    immediates[name](acc, rd, rng.randrange(0, 8))
            self.known.pop(rd, None)
            self.known.pop(acc, None)
        else:
            # Integer store stream into the integer scratch region.
            source = self.free_ireg()
            if source is None:
                return False
            words = rng.sample(range(*ISCRATCH_WORDS), count)
            for word in words:
                self.builder.sw(source, R_ISCR,
                                (word - ISCRATCH_WORDS[0]) * 8)
        return True

    def s_lw_base_chain(self):
        """A load whose base register is itself a just-loaded value: the
        second load issues into the first's delay slot."""
        rng = self.rng
        r_addr = self.free_ireg()
        r_base = self.free_ireg(exclude=(r_addr,))
        rd = self.free_ireg(exclude=(r_addr, r_base))
        if None in (r_addr, r_base, rd):
            return False
        target_word = rng.randrange(*INT_WORDS)
        slot = rng.randrange(*ISCRATCH_WORDS)
        offset = (slot - ISCRATCH_WORDS[0]) * 8
        self.builder.li(r_addr, target_word * 8)
        self.builder.sw(r_addr, R_ISCR, offset)
        self.builder.lw(r_base, R_ISCR, offset)
        self.builder.lw(rd, r_base, 0)
        # Store the just-loaded value: a store issuing into the load's
        # delay slot.
        slot2 = rng.randrange(*ISCRATCH_WORDS)
        self.builder.sw(rd, R_ISCR, (slot2 - ISCRATCH_WORDS[0]) * 8)
        self.known[r_addr] = target_word * 8
        self.known.pop(r_base, None)
        self.known.pop(rd, None)
        return True

    def s_int_block(self):
        rng = self.rng
        for _ in range(rng.randint(2, 4)):
            rd = self.free_ireg()
            if rd is None:
                return False
            choice = rng.random()
            if choice < 0.3:
                value = rng.randrange(-500, 500)
                self.builder.li(rd, value)
                self.known[rd] = value
            elif choice < 0.7:
                ra = self.free_ireg()
                imm = rng.randrange(0, 8) if rng.random() < 0.3 \
                    else rng.randrange(-100, 100)
                emit = rng.choice((self.builder.addi, self.builder.muli,
                                   self.builder.sll, self.builder.sra))
                if emit in (self.builder.sll, self.builder.sra):
                    imm = rng.randrange(0, 8)
                emit(rd, ra, imm)
                if ra in self.known:
                    fn = {self.builder.addi: lambda a, k: a + k,
                          self.builder.muli: lambda a, k: a * k,
                          self.builder.sll: lambda a, k: a << k,
                          self.builder.sra: lambda a, k: a >> k}[emit]
                    self.known[rd] = fn(self.known[ra], imm)
                else:
                    self.known.pop(rd, None)
            else:
                ra, rb = self.free_ireg(), self.free_ireg()
                emit = rng.choice((self.builder.add, self.builder.sub,
                                   self.builder.mul, self.builder.and_,
                                   self.builder.or_, self.builder.xor))
                emit(rd, ra, rb)
                if ra in self.known and rb in self.known:
                    fn = {self.builder.add: lambda a, b: a + b,
                          self.builder.sub: lambda a, b: a - b,
                          self.builder.mul: lambda a, b: a * b,
                          self.builder.and_: lambda a, b: a & b,
                          self.builder.or_: lambda a, b: a | b,
                          self.builder.xor: lambda a, b: a ^ b}[emit]
                    self.known[rd] = fn(self.known[ra], self.known[rb])
                else:
                    self.known.pop(rd, None)
        return True

    def s_branch_block(self):
        """A forward conditional skip.  The skipped block must be
        tag-neutral: the generator cannot know statically whether it
        executes."""
        rng = self.rng
        builder = self.builder
        if rng.random() < 0.3:
            # An unconditional jump to the next instruction: exercises
            # the taken-jump redirect without dead code.
            label = builder.label()
            builder.j(label)
            builder.place(label)
            return True
        if rng.random() < 0.5:
            # FCMP-driven branch: direction statically unknown.
            fa = self.pick_freg(avoid_deep=True)
            fb = self.pick_freg(avoid_deep=True)
            rd = self.free_ireg()
            if None in (fa, fb, rd):
                return False
            self.emit_fcmp(rd, fa, fb,
                           rng.choice((isa.CMP_EQ, isa.CMP_LT, isa.CMP_LE)))
            opcode = rng.choice((builder.beq, builder.bne))
            ra, rb = rd, 0
        else:
            ra = self.free_ireg()
            rb = self.free_ireg(exclude=(ra,))
            if ra is None or rb is None:
                return False
            if rng.random() < 0.5:
                # Known operands: both directions of every branch opcode
                # are reachable across seeds, not left to whatever values
                # earlier strategies happened to compute.
                left, right = rng.randrange(-4, 5), rng.randrange(-4, 5)
                builder.li(ra, left)
                builder.li(rb, right)
                self.known[ra] = left
                self.known[rb] = right
            opcode = rng.choice((builder.beq, builder.bne, builder.blt,
                                 builder.bge, builder.ble, builder.bgt))
        skip = builder.label()
        opcode(ra, rb, skip)
        self.block_depth += 1
        written = self._neutral_block(rng.randint(1, 3))
        self.block_depth -= 1
        for reg in written:
            self.known.pop(reg, None)
        builder.place(skip)
        return True

    def _neutral_block(self, length):
        """Emit ``length`` tag-neutral operations (safe whether or not
        they execute); returns the integer registers written."""
        rng = self.rng
        written = set()
        for _ in range(length):
            choice = rng.random()
            if choice < 0.3:
                reg = self.pick_freg(tag="f", avoid_deep=True)
                if reg is not None:
                    word = rng.randrange(*FLOAT_WORDS)
                    self.emit_fload(reg, R_FLOAT, word * 8, "f")
            elif choice < 0.5:
                self.random_falu(op=rng.choice(F_OPS))
            elif choice < 0.7:
                rd = self.free_ireg()
                if rd is not None:
                    word = rng.randrange(*INT_WORDS) - INT_WORDS[0]
                    self.builder.lw(rd, R_INT, word * 8)
                    written.add(rd)
            elif choice < 0.85:
                source = self.free_ireg()
                if source is not None:
                    word = rng.randrange(*ISCRATCH_WORDS) - ISCRATCH_WORDS[0]
                    self.builder.sw(source, R_ISCR, word * 8)
            else:
                rd = self.free_ireg()
                ra = self.free_ireg()
                if rd is not None and ra is not None:
                    self.builder.addi(rd, ra, rng.randrange(-50, 50))
                    written.add(rd)
        for reg in written:
            self.known.pop(reg, None)
        return written

    def s_overflow(self):
        """A vector multiply that overflows at a chosen element: the
        machine must abort the remaining elements and record the PSW
        state exactly like the sequential reference (section 2.3.3)."""
        rng = self.rng
        vl = self.pick_vl()
        at = rng.randrange(vl)
        source = self.pick_freg(tag="f", avoid_deep=True, span=vl)
        dest = self.pick_freg(tag="f", span=vl)
        if source is None or dest is None:
            return False
        for element in range(vl):
            if element == at:
                word = rng.randrange(*HUGE_WORDS) - HUGE_WORDS[0]
                ok = self.emit_fload(source + element, R_HUGE, word * 8, "f")
            else:
                word = rng.randrange(*FLOAT_WORDS)
                ok = self.emit_fload(source + element, R_FLOAT, word * 8, "f")
            if not ok:
                return False
        return self.try_falu(Op.MUL, dest, source, source, vl, 1, 1)

    def s_loop(self):
        """A counted loop with a tag-neutral body."""
        rng = self.rng
        if self.block_depth or self.budget_left() < 10:
            return False
        counter = self.free_ireg()
        bound = self.free_ireg(exclude=(counter,))
        if counter is None or bound is None:
            return False
        count = rng.randint(2, 4)
        self.builder.li(counter, 0)
        self.builder.li(bound, count)
        self.known[counter] = 0
        self.known[bound] = count
        _top, close = self.builder.counted_loop(counter, bound)
        self.block_depth += 1
        self.in_loop = True
        self.body_ls_regs = set()
        self.reserved_iregs = {counter, bound}
        self._neutral_block(rng.randint(2, 4))
        self.reserved_iregs = set()
        self.in_loop = False
        self.body_ls_regs = set()
        self.block_depth -= 1
        self.builder.addi(counter, counter, 1)
        close()
        self.known[counter] = count
        return True

    def s_nops(self):
        for _ in range(self.rng.randint(1, 2)):
            self.builder.nop()
        return True

    # -- coverage-directed synthesis -------------------------------------

    def s_target_falu(self):
        """Synthesize an FPU ALU instruction for a specific unhit
        coverage bin (op x vl-bucket x stride x hazard)."""
        if self.coverage is None:
            return False
        unhit = self.coverage.unhit_falu()
        if not unhit:
            return False
        rng = self.rng
        _, op_name, bucket, stride, hazard = rng.choice(unhit)
        op = Op[op_name.upper()]
        low, _, high = bucket.partition("-")
        vl = rng.randint(int(low), int(high or low))
        if stride.startswith("u"):
            sra, srb = int(stride[1]), 0
        else:
            sra, srb = int(stride[0]), int(stride[1])
        need = _NEEDS.get(op, "f")

        # Find a register assignment; materialize int-typed sources when
        # the op needs them and none are available.
        placement = None
        for _ in range(60):
            rr = rng.randrange(NUM_REGISTERS)
            ra = rng.randrange(NUM_REGISTERS)
            rb = rng.randrange(NUM_REGISTERS)
            if self._falu_tags(op, rr, ra, rb, vl, sra, srb) is not None:
                placement = (rr, ra, rb)
                break
        if placement is None and need == "i" and not self.block_depth:
            span = 1 + (vl - 1) * sra
            ra = self.pick_freg(avoid_deep=True, span=span)
            if ra is None:
                return False
            if not self.materialize("i", range(ra, ra + span)):
                return False
            rb = ra if op is Op.IMUL else 0
            for _ in range(60):
                rr = rng.randrange(NUM_REGISTERS)
                if self._falu_tags(op, rr, ra, rb, vl, sra, srb) is not None:
                    placement = (rr, ra, rb)
                    break
        if placement is None:
            return False
        rr, ra, rb = placement

        if hazard == "ir_busy":
            # A vector still issuing when the target transfers: emit a
            # short float vector immediately before.
            self.random_falu(op=rng.choice(F_OPS), vl=rng.randint(2, 4))
        else:
            # Pad so any earlier vector has drained by the transfer.
            for _ in range(min(18, self.last_falu_vl + 2)):
                self.builder.nop()
        return self.try_falu(op, rr, ra, rb, vl, sra, srb)

    # -- top level -------------------------------------------------------

    _STRATEGIES = (
        ("vector_alu", "s_vector_alu", 3),
        ("raw_chain", "s_raw_chain", 2),
        ("recurrence", "s_recurrence", 1),
        ("ls_conflict", "s_ls_conflict", 2),
        ("mem_stream", "s_mem_stream", 3),
        ("lw_base_chain", "s_lw_base_chain", 1),
        ("int_block", "s_int_block", 2),
        ("branch_block", "s_branch_block", 2),
        ("overflow", "s_overflow", 1),
        ("loop", "s_loop", 1),
        ("nops", "s_nops", 1),
    )

    def generate(self):
        builder = self.builder
        for reg, address in sorted(BASE_REGS.items()):
            builder.li(reg, address)
            self.known[reg] = address
        names = [name for name, _, weight in self._STRATEGIES
                 for _ in range(weight)]
        rng = self.rng
        while self.budget_left() > 8:
            if self.coverage is not None and rng.random() < 0.5:
                if self.s_target_falu():
                    self.strategies.append("target_falu")
                    continue
            name = rng.choice(names)
            method = getattr(self, dict(
                (n, m) for n, m, _ in self._STRATEGIES)[name])
            if method():
                self.strategies.append(name)
        program = builder.build()
        return GeneratedCase(program, build_memory_words(Random(self.seed)),
                             self.seed, self.strategies)


def generate_case(seed, coverage=None, max_instructions=64):
    """Generate one valid fuzz case from a seed.

    The same seed always yields the same program and memory image;
    supplying a :class:`CoverageMap` only changes which shapes the
    generator favours, never the validity guarantees.
    """
    return _Generator(seed, coverage=coverage,
                      max_instructions=max_instructions).generate()
