"""Lockstep differential execution of fuzz cases.

One fuzz case runs twice.  First the functional reference executor
(:mod:`repro.robustness.reference`) interprets the program sequentially;
this establishes that the case terminates and yields the step count that
sizes the watchdog budget.  Then the cycle-level machine runs under the
full detection stack -- the :class:`~repro.robustness.differential.
DifferentialChecker` auditing every retirement in lockstep, per-cycle
invariant audits, and the watchdog -- with an optional planted bug
(:mod:`repro.robustness.fuzz.bugs`) or :class:`~repro.robustness.faults.
FaultPlan` composed on top.

Failures are summarised by a **signature**: the error class plus the
stable category of its message, with the per-run machine context
(``[cycle=... pc=...]``) stripped and register/cycle numbers
generalised.  The shrinker relies on signatures being invariant under
minimisation -- deleting instructions moves the failure to a different
cycle and often a different register, but a flipped scoreboard bit still
dies as the same *kind* of invariant violation.
"""

import re

from repro.core.exceptions import (DivergenceError, InvariantError,
                                   LivelockError, SimulationError)
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.mem.memory import Memory
from repro.robustness.differential import DifferentialChecker, bit_exact
from repro.robustness.reference import ReferenceExecutor
from repro.robustness.watchdog import watchdog_budget

from repro.robustness.fuzz.coverage import CoverageMap
from repro.robustness.fuzz.generator import generate_case

#: Reference-executor step ceiling; generated programs run a few hundred
#: steps, so hitting this means the generator emitted a non-terminating
#: program (a generator bug, reported as such).
MAX_REFERENCE_STEPS = 100_000

_DIVERGENCE_TAGS = (
    ("unexpected FPU writeback", "unexpected-writeback"),
    ("never retired", "missing-retire"),
    ("final FPU register", "final-freg"),
    ("FPU register", "freg"),
    ("integer register", "ireg"),
    ("memory word", "memory"),
    ("control flow", "control-flow"),
    ("PSW", "psw"),
)


def _slug(message, limit=48):
    text = re.sub(r"\d+", "N", message.lower())
    text = re.sub(r"[^a-z]+", "-", text).strip("-")
    return text[:limit].rstrip("-")


def failure_signature(error):
    """A stable category for a failure, invariant under shrinking.

    The machine context suffix (cycle/pc/instruction) and any literal
    numbers are dropped: a minimised program fails at a different cycle
    in a different register, but for the same architectural reason.
    """
    message = error.args[0] if error.args else str(error)
    cut = message.find(" [cycle=")
    if cut != -1:
        message = message[:cut]
    if isinstance(error, DivergenceError):
        for key, tag in _DIVERGENCE_TAGS:
            if key in message:
                return "divergence:" + tag
        return "divergence:" + _slug(message)
    if isinstance(error, LivelockError):
        return "livelock"
    if isinstance(error, InvariantError):
        return "invariant:" + _slug(message)
    if isinstance(error, SimulationError):
        return "error:" + _slug(message)
    return type(error).__name__ + ":" + _slug(message)


class CaseResult:
    """Outcome of one differential run.

    ``verdict`` is ``"pass"``, ``"fail"`` (the machine raised -- the
    error and its signature ride along), or ``"generator-error"`` (the
    *reference* rejected the program: by construction that is a
    generator defect, not a machine one).
    """

    __slots__ = ("verdict", "error", "signature", "failure_cycle",
                 "reference_steps", "timings")

    def __init__(self, verdict, error=None, signature=None,
                 failure_cycle=None, reference_steps=None, timings=None):
        self.verdict = verdict
        self.error = error
        self.signature = signature
        self.failure_cycle = failure_cycle
        self.reference_steps = reference_steps
        #: Cross-backend runs report {backend: {"cycles", "domain"}} --
        #: the per-backend timing the ISA contract deliberately leaves
        #: unconstrained across domains.
        self.timings = timings

    @property
    def failed(self):
        return self.verdict == "fail"

    def __repr__(self):
        if self.verdict == "fail":
            return "CaseResult(fail, %s)" % self.signature
        return "CaseResult(%s)" % self.verdict


def build_machine(program, memory_words, audit=True, fast_path=True):
    """A fresh machine over a copy of the case's memory image."""
    memory = Memory(size_bytes=len(memory_words) * 8)
    memory.words[:] = list(memory_words)
    config = MachineConfig(audit_invariants=audit, fast_path=fast_path)
    return MultiTitan(program, memory=memory, config=config)


def run_case(program, memory_words, bug=None, audit=True, fault_plan=None,
             coverage=None, max_cycles=None):
    """Run one program differentially; return a :class:`CaseResult`.

    ``bug`` names a planted bug from :mod:`repro.robustness.fuzz.bugs`
    to install on the machine side only (the reference stays golden).
    ``fault_plan`` composes state perturbation on top of the same
    detection stack.  ``coverage`` is attached for the duration of the
    run when given.  ``max_cycles`` -- the normalized cycle-budget kwarg
    (:class:`repro.api.RunRequest`) -- caps the reference-sized watchdog
    budget when given.
    """
    reference = ReferenceExecutor(program.instructions,
                                  memory_words=list(memory_words),
                                  decoded=program.decoded)
    try:
        reference.run(max_steps=MAX_REFERENCE_STEPS)
    except Exception as error:  # noqa: BLE001 - any reference failure
        return CaseResult("generator-error", error=error,
                          signature=failure_signature(error))
    budget = watchdog_budget(8 * reference.steps + 64)
    if max_cycles is not None:
        budget = min(budget, max_cycles)

    machine = build_machine(program, memory_words, audit=audit)
    if fault_plan is not None:
        machine.fault_plan = fault_plan
    checker = DifferentialChecker(machine)
    if coverage is not None:
        coverage.attach(machine)
    undo = None
    if bug is not None:
        from repro.robustness.fuzz.bugs import install_bug
        undo = install_bug(machine, bug)
    try:
        machine.run(max_cycles=budget)
        checker.final_check()
    except SimulationError as error:
        return CaseResult("fail", error=error,
                          signature=failure_signature(error),
                          failure_cycle=machine.cycle,
                          reference_steps=reference.steps)
    finally:
        if undo is not None:
            undo()
        if coverage is not None:
            coverage.detach()
        checker.detach()
    return CaseResult("pass", reference_steps=reference.steps)


def _state_difference(a, b, path=""):
    """First differing path between two snapshot-like structures, or
    None.  Floats compare by bit pattern (NaN payloads and signed
    zeroes count)."""
    if type(a) is not type(b):
        return "%s: type %s != %s" % (path, type(a).__name__,
                                      type(b).__name__)
    if isinstance(a, dict):
        if sorted(a) != sorted(b):
            return "%s: keys differ" % path
        for key in a:
            found = _state_difference(a[key], b[key], "%s.%s" % (path, key))
            if found is not None:
                return found
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return "%s: length %d != %d" % (path, len(a), len(b))
        for index, (left, right) in enumerate(zip(a, b)):
            found = _state_difference(left, right,
                                      "%s[%d]" % (path, index))
            if found is not None:
                return found
        return None
    if not bit_exact(a, b):
        return "%s: %r != %r" % (path, a, b)
    return None


def run_case_fast_slow(program, memory_words, coverage=None,
                       max_cycles=None):
    """Run one case twice -- fast path enabled, then disabled -- and
    require bit-identical outcomes.

    The fast-path dispatcher only engages on a machine with no
    observers or audits attached, which is exactly the configuration
    the rest of the fuzzer never covers; here the per-cycle slow path
    doubles as the oracle.  Final snapshots (registers, scoreboard,
    in-flight FPU state, caches, memory delta, stats) and the
    :class:`~repro.cpu.pipeline.RunResult` scalars must match bit for
    bit; errors must match by signature and cycle.  Divergences carry
    ``fastslow:`` signatures.
    """
    reference = ReferenceExecutor(program.instructions,
                                  memory_words=list(memory_words),
                                  decoded=program.decoded)
    try:
        reference.run(max_steps=MAX_REFERENCE_STEPS)
    except Exception as error:  # noqa: BLE001 - any reference failure
        return CaseResult("generator-error", error=error,
                          signature=failure_signature(error))
    budget = watchdog_budget(8 * reference.steps + 64)
    if max_cycles is not None:
        budget = min(budget, max_cycles)

    outcomes = {}
    for label, fast in (("fast", True), ("slow", False)):
        machine = build_machine(program, memory_words, audit=False,
                                fast_path=fast)
        if coverage is not None and not fast:
            # Coverage subscribes to the event bus, which would force
            # the slow path anyway; keep the fast run unobserved.
            coverage.attach(machine)
        try:
            result = machine.run(max_cycles=budget)
            outcomes[label] = (result, machine, None)
        except SimulationError as error:
            outcomes[label] = (None, machine, error)
        finally:
            if coverage is not None and not fast:
                coverage.detach()

    fast_result, fast_machine, fast_error = outcomes["fast"]
    slow_result, slow_machine, slow_error = outcomes["slow"]
    if (fast_error is None) != (slow_error is None):
        raised = "fast" if fast_error is not None else "slow"
        error = DivergenceError(
            "fast/slow divergence: only the %s path raised: %s"
            % (raised, fast_error or slow_error))
        return CaseResult("fail", error=error,
                          signature="fastslow:error-asymmetry",
                          failure_cycle=fast_machine.cycle,
                          reference_steps=reference.steps)
    if fast_error is not None:
        fast_sig = failure_signature(fast_error)
        slow_sig = failure_signature(slow_error)
        if (fast_sig != slow_sig
                or fast_machine.cycle != slow_machine.cycle):
            error = DivergenceError(
                "fast/slow divergence: fast raised %s at cycle %d, "
                "slow raised %s at cycle %d"
                % (fast_sig, fast_machine.cycle, slow_sig,
                   slow_machine.cycle))
            return CaseResult("fail", error=error,
                              signature="fastslow:error-mismatch",
                              failure_cycle=fast_machine.cycle,
                              reference_steps=reference.steps)
        return CaseResult("pass", reference_steps=reference.steps)

    for field in ("halt_cycle", "completion_cycle", "dcache_hits",
                  "dcache_misses"):
        if getattr(fast_result, field) != getattr(slow_result, field):
            error = DivergenceError(
                "fast/slow divergence: RunResult.%s: %r != %r"
                % (field, getattr(fast_result, field),
                   getattr(slow_result, field)))
            return CaseResult("fail", error=error,
                              signature="fastslow:result-" + field,
                              failure_cycle=fast_machine.cycle,
                              reference_steps=reference.steps)
    found = _state_difference(fast_machine.snapshot(),
                              slow_machine.snapshot())
    if found is not None:
        error = DivergenceError("fast/slow divergence: %s" % found)
        field = found.split(":")[0].lstrip(".").split(".")[0].split("[")[0]
        return CaseResult("fail", error=error,
                          signature="fastslow:" + (field or "state"),
                          failure_cycle=fast_machine.cycle,
                          reference_steps=reference.steps)
    return CaseResult("pass", reference_steps=reference.steps)


#: Extra watchdog headroom for the classical timing domain: every
#: vector stream pays a 15-cycle startup and every scalar memory op its
#: full flat latency, so the same program legitimately runs many times
#: longer than on the MultiTitan.
_CLASSICAL_STEP_FACTOR = 64
_CLASSICAL_STEP_SLACK = 256


def _normalized_architectural(state):
    """An :meth:`ExecutionBackend.architectural_state` dict with the
    sparse memory delta expanded to a dense word list (so images that
    only differ in lazy-growth shape still compare equal)."""
    memory = state["memory"]
    words = [0.0] * memory["length"]     # the delta's implicit fill
    for index, word in memory["words"].items():
        words[index] = word
    return {
        "fregs": state["fregs"],
        "iregs": state["iregs"],
        "memory": words,
        "psw": state["psw"],
        "halted": state["halted"],
    }


def _pad_memories(states):
    """Zero-pad every dense memory list to the longest one: trailing
    never-written words are architecturally zero (float fill, matching
    :meth:`Memory.delta_snapshot`)."""
    longest = max(len(state["memory"]) for state in states)
    for state in states:
        state["memory"] = state["memory"] + [0.0] * (longest -
                                                     len(state["memory"]))


def run_case_backends(program, memory_words, backends=None, coverage=None,
                      max_cycles=None):
    """Run one case on every named backend against one golden oracle.

    The functional reference executes first and becomes the golden
    architectural state.  Each backend then runs the same program over
    its own copy of the memory image and must reproduce that state
    bit-exactly wherever the ISA contract defines it (register files,
    memory, PSW, halt) -- timing is per-backend and is *reported*, not
    compared, across timing domains.  Backends that share a timing
    domain (``percycle``/``fastpath``) must additionally agree on
    RunResult scalars and their full snapshots, bit for bit.

    Divergence signatures: ``crossbackend:<backend>:<field>`` against
    the golden state, ``timingdomain:<domain>:<field>`` within a
    domain.  A passing result carries ``timings`` -- the per-backend
    cycle counts.
    """
    from repro.core.backend import backend_names, create_machine, get_backend

    backends = tuple(backends) if backends else backend_names()
    specs = [get_backend(name) for name in backends]
    reference = ReferenceExecutor(program.instructions,
                                  memory_words=list(memory_words),
                                  decoded=program.decoded)
    try:
        reference.run(max_steps=MAX_REFERENCE_STEPS)
    except Exception as error:  # noqa: BLE001 - any reference failure
        return CaseResult("generator-error", error=error,
                          signature=failure_signature(error))
    golden = {
        "fregs": list(reference.fregs),
        "iregs": list(reference.iregs),
        "memory": list(reference.memory),
        "psw": {
            "overflow": reference.psw_overflow,
            "overflow_dest": reference.psw_overflow_dest,
            "overflow_element": reference.psw_overflow_element,
        },
        "halted": True,
    }

    outcomes = {}
    timings = {}
    for spec in specs:
        if spec.timing_domain == "classical":
            budget = watchdog_budget(
                _CLASSICAL_STEP_FACTOR * reference.steps
                + _CLASSICAL_STEP_SLACK)
        else:
            budget = watchdog_budget(8 * reference.steps + 64)
        if max_cycles is not None:
            budget = min(budget, max_cycles)
        memory = Memory(size_bytes=len(memory_words) * 8)
        memory.words[:] = list(memory_words)
        machine = create_machine(spec.name, program, memory=memory,
                                 config=MachineConfig(audit_invariants=False))
        # Coverage subscribes to the event bus; only the per-cycle loop
        # publishes the full event stream (and observers would force
        # the fast path off anyway).
        observe = coverage is not None and spec.name == "percycle"
        if observe:
            coverage.attach(machine)
        try:
            result = machine.run(max_cycles=budget)
            outcomes[spec.name] = (result, machine, None)
            timings[spec.name] = {"cycles": result.completion_cycle,
                                  "domain": spec.timing_domain}
        except SimulationError as error:
            outcomes[spec.name] = (None, machine, error)
        finally:
            if observe:
                coverage.detach()

    for spec in specs:
        result, machine, error = outcomes[spec.name]
        if error is not None:
            wrapped = DivergenceError(
                "cross-backend divergence: backend %r raised where the "
                "reference ran clean: %s" % (spec.name, error))
            return CaseResult("fail", error=wrapped,
                              signature="crossbackend:%s:%s"
                              % (spec.name, failure_signature(error)),
                              failure_cycle=machine.cycle,
                              reference_steps=reference.steps)

    golden_state = dict(golden)
    states = {name: _normalized_architectural(
        outcome[1].architectural_state())
        for name, outcome in outcomes.items()}
    _pad_memories([golden_state] + list(states.values()))
    for spec in specs:
        found = _state_difference(states[spec.name], golden_state)
        if found is not None:
            error = DivergenceError(
                "cross-backend divergence: backend %r vs reference: %s"
                % (spec.name, found))
            field = found.split(":")[0].lstrip(".").split(".")[0] \
                .split("[")[0]
            return CaseResult("fail", error=error,
                              signature="crossbackend:%s:%s"
                              % (spec.name, field or "state"),
                              failure_cycle=outcomes[spec.name][1].cycle,
                              reference_steps=reference.steps)

    by_domain = {}
    for spec in specs:
        by_domain.setdefault(spec.timing_domain, []).append(spec.name)
    for domain, names in by_domain.items():
        anchor_result, anchor_machine, _ = outcomes[names[0]]
        for name in names[1:]:
            result, machine, _ = outcomes[name]
            for field in ("halt_cycle", "completion_cycle", "dcache_hits",
                          "dcache_misses"):
                if getattr(result, field) != getattr(anchor_result, field):
                    error = DivergenceError(
                        "timing-domain divergence (%s): RunResult.%s: "
                        "%s=%r %s=%r"
                        % (domain, field, names[0],
                           getattr(anchor_result, field), name,
                           getattr(result, field)))
                    return CaseResult(
                        "fail", error=error,
                        signature="timingdomain:%s:%s" % (domain, field),
                        failure_cycle=machine.cycle,
                        reference_steps=reference.steps)
            found = _state_difference(machine.snapshot(),
                                      anchor_machine.snapshot())
            if found is not None:
                error = DivergenceError(
                    "timing-domain divergence (%s): %s vs %s: %s"
                    % (domain, name, names[0], found))
                field = found.split(":")[0].lstrip(".").split(".")[0] \
                    .split("[")[0]
                return CaseResult(
                    "fail", error=error,
                    signature="timingdomain:%s:%s" % (domain,
                                                      field or "state"),
                    failure_cycle=machine.cycle,
                    reference_steps=reference.steps)

    return CaseResult("pass", reference_steps=reference.steps,
                      timings=timings)


class CampaignFailure:
    """One failing seed of a campaign, with everything triage needs."""

    __slots__ = ("case", "result")

    def __init__(self, case, result):
        self.case = case
        self.result = result


class CampaignResult:
    __slots__ = ("cases", "failures", "generator_errors", "coverage")

    def __init__(self, cases, failures, generator_errors, coverage):
        self.cases = cases
        self.failures = failures
        self.generator_errors = generator_errors
        self.coverage = coverage

    @property
    def clean(self):
        return not self.failures and not self.generator_errors

    def summary(self):
        lines = ["fuzz: %d cases, %d failures, %d generator errors"
                 % (self.cases, len(self.failures),
                    len(self.generator_errors))]
        lines.append(self.coverage.summary())
        for failure in self.failures:
            lines.append("  seed %d: %s" % (failure.case.seed,
                                            failure.result.signature))
        for failure in self.generator_errors:
            lines.append("  seed %d: generator error: %s"
                         % (failure.case.seed, failure.result.error))
        return "\n".join(lines)


def fuzz(seeds=200, base_seed=0, bug=None, audit=True, coverage=None,
         max_failures=None, on_case=None, max_cycles=None,
         fast_slow=False, backends=None):
    """Run a coverage-guided campaign of ``seeds`` generated cases.

    The coverage map accumulates across cases and feeds back into the
    generator (unhit FPU ALU bins are synthesised directly), so later
    seeds explore shapes earlier seeds missed.  Returns a
    :class:`CampaignResult`; with ``max_failures`` the campaign stops
    early once that many failing seeds are collected.  With
    ``fast_slow`` each case instead runs through
    :func:`run_case_fast_slow`, pitting the fast-path execution core
    against the per-cycle loop (``bug`` and ``audit`` do not apply).
    With ``backends`` (a tuple of registered backend names) each case
    runs through :func:`run_case_backends`, the cross-backend
    equivalence oracle (``bug``, ``audit`` and ``fast_slow`` do not
    apply).
    """
    coverage = coverage if coverage is not None else CoverageMap()
    failures = []
    generator_errors = []
    ran = 0
    for index in range(seeds):
        seed = base_seed + index
        case = generate_case(seed, coverage=coverage)
        if backends:
            result = run_case_backends(case.program, case.memory_words,
                                       backends=backends,
                                       coverage=coverage,
                                       max_cycles=max_cycles)
        elif fast_slow:
            result = run_case_fast_slow(case.program, case.memory_words,
                                        coverage=coverage,
                                        max_cycles=max_cycles)
        else:
            result = run_case(case.program, case.memory_words, bug=bug,
                              audit=audit, coverage=coverage,
                              max_cycles=max_cycles)
        ran += 1
        if on_case is not None:
            on_case(case, result)
        if result.verdict == "fail":
            failures.append(CampaignFailure(case, result))
        elif result.verdict == "generator-error":
            generator_errors.append(CampaignFailure(case, result))
        if max_failures is not None and len(failures) >= max_failures:
            break
    return CampaignResult(ran, failures, generator_errors, coverage)
