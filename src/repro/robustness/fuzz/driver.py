"""Lockstep differential execution of fuzz cases.

One fuzz case runs twice.  First the functional reference executor
(:mod:`repro.robustness.reference`) interprets the program sequentially;
this establishes that the case terminates and yields the step count that
sizes the watchdog budget.  Then the cycle-level machine runs under the
full detection stack -- the :class:`~repro.robustness.differential.
DifferentialChecker` auditing every retirement in lockstep, per-cycle
invariant audits, and the watchdog -- with an optional planted bug
(:mod:`repro.robustness.fuzz.bugs`) or :class:`~repro.robustness.faults.
FaultPlan` composed on top.

Failures are summarised by a **signature**: the error class plus the
stable category of its message, with the per-run machine context
(``[cycle=... pc=...]``) stripped and register/cycle numbers
generalised.  The shrinker relies on signatures being invariant under
minimisation -- deleting instructions moves the failure to a different
cycle and often a different register, but a flipped scoreboard bit still
dies as the same *kind* of invariant violation.
"""

import re

from repro.core.exceptions import (DivergenceError, InvariantError,
                                   LivelockError, SimulationError)
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.mem.memory import Memory
from repro.robustness.differential import DifferentialChecker
from repro.robustness.reference import ReferenceExecutor
from repro.robustness.watchdog import watchdog_budget

from repro.robustness.fuzz.coverage import CoverageMap
from repro.robustness.fuzz.generator import generate_case

#: Reference-executor step ceiling; generated programs run a few hundred
#: steps, so hitting this means the generator emitted a non-terminating
#: program (a generator bug, reported as such).
MAX_REFERENCE_STEPS = 100_000

_DIVERGENCE_TAGS = (
    ("unexpected FPU writeback", "unexpected-writeback"),
    ("never retired", "missing-retire"),
    ("final FPU register", "final-freg"),
    ("FPU register", "freg"),
    ("integer register", "ireg"),
    ("memory word", "memory"),
    ("control flow", "control-flow"),
    ("PSW", "psw"),
)


def _slug(message, limit=48):
    text = re.sub(r"\d+", "N", message.lower())
    text = re.sub(r"[^a-z]+", "-", text).strip("-")
    return text[:limit].rstrip("-")


def failure_signature(error):
    """A stable category for a failure, invariant under shrinking.

    The machine context suffix (cycle/pc/instruction) and any literal
    numbers are dropped: a minimised program fails at a different cycle
    in a different register, but for the same architectural reason.
    """
    message = error.args[0] if error.args else str(error)
    cut = message.find(" [cycle=")
    if cut != -1:
        message = message[:cut]
    if isinstance(error, DivergenceError):
        for key, tag in _DIVERGENCE_TAGS:
            if key in message:
                return "divergence:" + tag
        return "divergence:" + _slug(message)
    if isinstance(error, LivelockError):
        return "livelock"
    if isinstance(error, InvariantError):
        return "invariant:" + _slug(message)
    if isinstance(error, SimulationError):
        return "error:" + _slug(message)
    return type(error).__name__ + ":" + _slug(message)


class CaseResult:
    """Outcome of one differential run.

    ``verdict`` is ``"pass"``, ``"fail"`` (the machine raised -- the
    error and its signature ride along), or ``"generator-error"`` (the
    *reference* rejected the program: by construction that is a
    generator defect, not a machine one).
    """

    __slots__ = ("verdict", "error", "signature", "failure_cycle",
                 "reference_steps")

    def __init__(self, verdict, error=None, signature=None,
                 failure_cycle=None, reference_steps=None):
        self.verdict = verdict
        self.error = error
        self.signature = signature
        self.failure_cycle = failure_cycle
        self.reference_steps = reference_steps

    @property
    def failed(self):
        return self.verdict == "fail"

    def __repr__(self):
        if self.verdict == "fail":
            return "CaseResult(fail, %s)" % self.signature
        return "CaseResult(%s)" % self.verdict


def build_machine(program, memory_words, audit=True):
    """A fresh machine over a copy of the case's memory image."""
    memory = Memory(size_bytes=len(memory_words) * 8)
    memory.words[:] = list(memory_words)
    config = MachineConfig(audit_invariants=audit)
    return MultiTitan(program, memory=memory, config=config)


def run_case(program, memory_words, bug=None, audit=True, fault_plan=None,
             coverage=None, max_cycles=None):
    """Run one program differentially; return a :class:`CaseResult`.

    ``bug`` names a planted bug from :mod:`repro.robustness.fuzz.bugs`
    to install on the machine side only (the reference stays golden).
    ``fault_plan`` composes state perturbation on top of the same
    detection stack.  ``coverage`` is attached for the duration of the
    run when given.  ``max_cycles`` -- the normalized cycle-budget kwarg
    (:class:`repro.api.RunRequest`) -- caps the reference-sized watchdog
    budget when given.
    """
    reference = ReferenceExecutor(program.instructions,
                                  memory_words=list(memory_words),
                                  decoded=program.decoded)
    try:
        reference.run(max_steps=MAX_REFERENCE_STEPS)
    except Exception as error:  # noqa: BLE001 - any reference failure
        return CaseResult("generator-error", error=error,
                          signature=failure_signature(error))
    budget = watchdog_budget(8 * reference.steps + 64)
    if max_cycles is not None:
        budget = min(budget, max_cycles)

    machine = build_machine(program, memory_words, audit=audit)
    if fault_plan is not None:
        machine.fault_plan = fault_plan
    checker = DifferentialChecker(machine)
    if coverage is not None:
        coverage.attach(machine)
    undo = None
    if bug is not None:
        from repro.robustness.fuzz.bugs import install_bug
        undo = install_bug(machine, bug)
    try:
        machine.run(max_cycles=budget)
        checker.final_check()
    except SimulationError as error:
        return CaseResult("fail", error=error,
                          signature=failure_signature(error),
                          failure_cycle=machine.cycle,
                          reference_steps=reference.steps)
    finally:
        if undo is not None:
            undo()
        if coverage is not None:
            coverage.detach()
        checker.detach()
    return CaseResult("pass", reference_steps=reference.steps)


class CampaignFailure:
    """One failing seed of a campaign, with everything triage needs."""

    __slots__ = ("case", "result")

    def __init__(self, case, result):
        self.case = case
        self.result = result


class CampaignResult:
    __slots__ = ("cases", "failures", "generator_errors", "coverage")

    def __init__(self, cases, failures, generator_errors, coverage):
        self.cases = cases
        self.failures = failures
        self.generator_errors = generator_errors
        self.coverage = coverage

    @property
    def clean(self):
        return not self.failures and not self.generator_errors

    def summary(self):
        lines = ["fuzz: %d cases, %d failures, %d generator errors"
                 % (self.cases, len(self.failures),
                    len(self.generator_errors))]
        lines.append(self.coverage.summary())
        for failure in self.failures:
            lines.append("  seed %d: %s" % (failure.case.seed,
                                            failure.result.signature))
        for failure in self.generator_errors:
            lines.append("  seed %d: generator error: %s"
                         % (failure.case.seed, failure.result.error))
        return "\n".join(lines)


def fuzz(seeds=200, base_seed=0, bug=None, audit=True, coverage=None,
         max_failures=None, on_case=None, max_cycles=None):
    """Run a coverage-guided campaign of ``seeds`` generated cases.

    The coverage map accumulates across cases and feeds back into the
    generator (unhit FPU ALU bins are synthesised directly), so later
    seeds explore shapes earlier seeds missed.  Returns a
    :class:`CampaignResult`; with ``max_failures`` the campaign stops
    early once that many failing seeds are collected.
    """
    coverage = coverage if coverage is not None else CoverageMap()
    failures = []
    generator_errors = []
    ran = 0
    for index in range(seeds):
        seed = base_seed + index
        case = generate_case(seed, coverage=coverage)
        result = run_case(case.program, case.memory_words, bug=bug,
                          audit=audit, coverage=coverage,
                          max_cycles=max_cycles)
        ran += 1
        if on_case is not None:
            on_case(case, result)
        if result.verdict == "fail":
            failures.append(CampaignFailure(case, result))
        elif result.verdict == "generator-error":
            generator_errors.append(CampaignFailure(case, result))
        if max_failures is not None and len(failures) >= max_failures:
            break
    return CampaignResult(ran, failures, generator_errors, coverage)
