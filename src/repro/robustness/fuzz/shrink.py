"""Automatic minimisation of failing fuzz cases.

The shrinker repeatedly simplifies a failing program while preserving
its **failure signature** (:func:`repro.robustness.fuzz.driver.
failure_signature`): a candidate survives only if it still fails the
differential run for the same architectural reason.  Candidates that
become invalid -- branches past the end, type confusion the generator
would never emit, non-terminating loops -- reject themselves, because
they either fail the *reference* prerun (a ``generator-error`` verdict)
or die with a different signature.

Three reductions run to a fixpoint, cheapest first:

1. **ddmin chunk deletion** -- delete runs of instructions, halving the
   chunk size down to 1 (single-instruction sweep).  Branch targets are
   remapped across deletions; the trailing HALT is never deleted.
2. **field shrinking** -- lower vector lengths toward 1, zero stride
   bits, and shrink immediates/offsets toward 0 (offsets stay
   word-aligned).

Every candidate execution counts against ``max_attempts``, so shrinking
a pathological case degrades to "best effort so far" rather than
hanging.
"""

from repro.cpu import isa
from repro.cpu.program import Program

from repro.robustness.fuzz.driver import run_case

#: Operand index of the immediate/offset field, per opcode.
_IMM_INDEX = {isa.LI: 2, isa.ADDI: 3, isa.MULI: 3, isa.SLL: 3, isa.SRA: 3}
_OFFSET_INDEX = {isa.LW: 3, isa.SW: 3, isa.FLOAD: 3, isa.FSTORE: 3}


class ShrinkResult:
    __slots__ = ("program", "signature", "original_length", "attempts")

    def __init__(self, program, signature, original_length, attempts):
        self.program = program
        self.signature = signature
        self.original_length = original_length
        self.attempts = attempts

    def __repr__(self):
        return ("ShrinkResult(%d -> %d instructions, %s, %d attempts)"
                % (self.original_length, len(self.program.instructions),
                   self.signature, self.attempts))


def _delete(instructions, indices):
    """Delete ``indices`` and remap branch/jump targets across the gap.

    A target pointing into the deleted region lands on the next
    surviving instruction; targets past the end clamp to the final
    (HALT) slot.
    """
    removed = sorted(indices)
    kept = [instruction for index, instruction in enumerate(instructions)
            if index not in indices]

    def remap(target):
        shift = 0
        for index in removed:
            if index < target:
                shift += 1
            else:
                break
        return max(0, min(target - shift, len(kept) - 1))

    out = []
    for instruction in kept:
        opcode = instruction[0]
        if opcode in isa.BRANCH_OPS:
            instruction = instruction[:3] + (remap(instruction[3]),)
        elif opcode == isa.J:
            instruction = (opcode, remap(instruction[1]))
        out.append(instruction)
    return out


def _field_variants(instruction):
    """Smaller versions of one instruction, most aggressive first."""
    opcode = instruction[0]
    variants = []
    if opcode == isa.FALU:
        op, rr, ra, rb, vl, sra, srb, unary = instruction[1:]
        if vl > 1:
            variants.append((opcode, op, rr, ra, rb, 1, sra, srb, unary))
            if vl > 2:
                variants.append((opcode, op, rr, ra, rb, vl // 2,
                                 sra, srb, unary))
        if sra:
            variants.append((opcode, op, rr, ra, rb, vl, 0, srb, unary))
        if srb and not unary:
            variants.append((opcode, op, rr, ra, rb, vl, sra, 0, unary))
    elif opcode in _IMM_INDEX:
        index = _IMM_INDEX[opcode]
        value = instruction[index]
        if value:
            variants.append(instruction[:index] + (0,)
                            + instruction[index + 1:])
            if abs(value) > 1:
                variants.append(instruction[:index] + (value // 2,)
                                + instruction[index + 1:])
    elif opcode in _OFFSET_INDEX:
        index = _OFFSET_INDEX[opcode]
        value = instruction[index]
        if value:
            variants.append(instruction[:index] + (0,)
                            + instruction[index + 1:])
            half = (value // 16) * 8       # halve, staying word-aligned
            if half != value:
                variants.append(instruction[:index] + (half,)
                                + instruction[index + 1:])
    return variants


def shrink_case(program, memory_words, signature, bug=None, audit=True,
                max_attempts=2000):
    """Minimise a failing program, preserving its failure signature.

    Returns a :class:`ShrinkResult` whose program is the smallest
    variant found that still fails identically (the original program if
    nothing smaller failed the same way).
    """
    state = {"attempts": 0}

    def still_fails(instructions):
        if state["attempts"] >= max_attempts:
            return False
        state["attempts"] += 1
        candidate = Program(list(instructions), {})
        try:
            result = run_case(candidate, memory_words, bug=bug, audit=audit)
        except Exception:  # noqa: BLE001 - invalid candidates self-reject
            return False
        return result.failed and result.signature == signature

    current = list(program.instructions)

    # -- phase 1: ddmin chunk deletion (never the trailing HALT) --------
    progress = True
    while progress and state["attempts"] < max_attempts:
        progress = False
        chunk = max(1, (len(current) - 1) // 2)
        while chunk >= 1 and state["attempts"] < max_attempts:
            start = 0
            while start < len(current) - 1:
                indices = set(range(start, min(start + chunk,
                                               len(current) - 1)))
                if not indices:
                    break
                candidate = _delete(current, indices)
                if len(candidate) >= 1 and still_fails(candidate):
                    current = candidate
                    progress = True
                    # Re-try the same window: more may go.
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk //= 2

        # -- phase 2: field shrinking, interleaved until fixpoint -------
        for index in range(len(current) - 1):
            for variant in _field_variants(current[index]):
                candidate = list(current)
                candidate[index] = variant
                if still_fails(candidate):
                    current = candidate
                    progress = True
                    break
            if state["attempts"] >= max_attempts:
                break

    return ShrinkResult(Program(current, {}), signature,
                        len(program.instructions), state["attempts"])
