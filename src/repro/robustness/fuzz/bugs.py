"""Planted machine bugs for validating the fuzzer end to end.

Each bug models a realistic implementation defect in the cycle-level
machine -- the functional reference is never touched, so a working
detection stack must flag every one.  They are installed per-machine via
:func:`install_bug` (which returns an undo callable) and are reachable
from the CLI as ``fuzz run --bug <name>``; the shrinker tests use them
to prove that minimisation preserves failure signatures.

* ``flipped-scoreboard-clear`` -- a completing FPU writeback leaves its
  scoreboard reservation bit *set* (the clear is lost).  The per-cycle
  invariant audit catches the reservation with no pending write.
* ``off-by-one-stride`` -- the FALU transfer decodes a strided RA
  specifier one register high, so every strided vector reads its
  sources shifted by one: a silent wrong-value defect only the lockstep
  differential checker can see.
* ``dropped-overflow-restart`` -- the machine's FPU never detects
  overflow, so a vector that should abort mid-flight (WRL 89/8 section
  2.3.3) keeps issuing elements; the checker sees writebacks the
  sequential reference never produced.
"""

from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import SimulationError


def _install_flipped_scoreboard_clear(machine):
    state = {"fired": False}

    def handler(event):
        if state["fired"] or not event.writes:
            return
        state["fired"] = True
        register = event.writes[0][0]
        machine.fpu.scoreboard.bits[register] = True

    machine.events.subscribe("retire", handler)

    def undo():
        machine.events.unsubscribe("retire", handler)

    return undo


class _OffByOneStrideSequencer:
    """Delegating wrapper whose transfer decodes strided RA one high."""

    def __init__(self, inner):
        object.__setattr__(self, "_inner", inner)

    def accept_transfer(self, entry, cycle, emit_alu):
        # Predecoded FALU entry: (kind, op, rr, ra, rb, vl, sra, srb,
        # unary, instruction).  Keep the shifted specifier in range so
        # the defect stays silent rather than dying on a bounds check.
        if entry[6] and entry[3] + entry[5] < NUM_REGISTERS:
            entry = entry[:3] + (entry[3] + 1,) + entry[4:]
        return self._inner.accept_transfer(entry, cycle, emit_alu)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)

    def __setattr__(self, name, value):
        setattr(object.__getattribute__(self, "_inner"), name, value)


def _install_off_by_one_stride(machine):
    inner = machine.core.sequencer
    machine.core.sequencer = _OffByOneStrideSequencer(inner)

    def undo():
        machine.core.sequencer = inner

    return undo


def _install_dropped_overflow_restart(machine):
    # The machine's FPU calls ``result_overflowed`` through its module
    # globals; the reference executor binds its own copy, so patching
    # here breaks only the machine side.  Module-wide, hence the
    # mandatory undo (run_case and the triage replay both install
    # through install_bug and restore in a finally block).
    from repro.core import fpu as fpu_module
    original = fpu_module.result_overflowed
    fpu_module.result_overflowed = lambda op, a, b, result: False

    def undo():
        fpu_module.result_overflowed = original

    return undo


BUGS = {
    "flipped-scoreboard-clear": _install_flipped_scoreboard_clear,
    "off-by-one-stride": _install_off_by_one_stride,
    "dropped-overflow-restart": _install_dropped_overflow_restart,
}


def install_bug(machine, name):
    """Install a planted bug on one machine; returns an undo callable."""
    try:
        installer = BUGS[name]
    except KeyError:
        raise SimulationError("unknown planted bug %r (choose from %s)"
                              % (name, ", ".join(sorted(BUGS))))
    return installer(machine)
