"""Coverage-guided differential ISA fuzzer.

The pipeline: :func:`generate_case` emits architecturally valid
programs from a seed (coverage-biased when a :class:`CoverageMap` is
supplied); :func:`run_case` executes each differentially against the
functional reference under the full detection stack; :func:`fuzz` runs
whole campaigns; :func:`shrink_case` minimises failures while
preserving their :func:`failure_signature`; and :mod:`~repro.
robustness.fuzz.triage` packages each minimised failure as a
self-contained bundle with a one-line repro command.

``python -m repro.tools.cli fuzz run|repro|coverage`` is the
command-line surface; planted bugs (:data:`~repro.robustness.fuzz.
bugs.BUGS`) validate the whole loop end to end.
"""

from repro.robustness.fuzz.bugs import BUGS, install_bug
from repro.robustness.fuzz.coverage import (
    COVERAGE_UNIVERSE,
    CoverageMap,
    coverage_universe,
    vl_bucket,
)
from repro.robustness.fuzz.driver import (
    CampaignResult,
    CaseResult,
    failure_signature,
    fuzz,
    run_case,
    run_case_backends,
)
from repro.robustness.fuzz.generator import GeneratedCase, generate_case
from repro.robustness.fuzz.shrink import ShrinkResult, shrink_case
from repro.robustness.fuzz.triage import (
    decode_data,
    encode_data,
    load_bundle,
    repro_bundle,
    write_bundle,
)

__all__ = [
    "BUGS",
    "COVERAGE_UNIVERSE",
    "CampaignResult",
    "CaseResult",
    "CoverageMap",
    "GeneratedCase",
    "ShrinkResult",
    "coverage_universe",
    "decode_data",
    "encode_data",
    "failure_signature",
    "fuzz",
    "generate_case",
    "install_bug",
    "load_bundle",
    "repro_bundle",
    "run_case",
    "run_case_backends",
    "shrink_case",
    "vl_bucket",
    "write_bundle",
]
