"""The shared simulation watchdog: cycle budgets and livelock diagnosis.

Every harness that runs an arbitrary (possibly wedged) program against
the machine -- the fault-injection smoke campaign, the differential
fuzzer, the shrinker's candidate replays -- needs the same two things: a
cycle budget proportional to a known-good baseline, and a useful error
when the budget expires.  The budget formula lives here exactly once
(:func:`watchdog_budget`), and :func:`livelock_diagnostic` renders the
state a wedged pipeline leaves behind: the current PC, every per-stage
stall counter, and the scoreboard bits still pending -- which together
name the interlock a livelock is spinning on.

The execution core raises :class:`~repro.core.exceptions.LivelockError`
(a :class:`~repro.core.exceptions.SimulationError`) with this diagnostic
whenever a run exceeds its cycle limit, so callers that merely pass
``max_cycles=watchdog_budget(baseline)`` get the full report for free.
"""

#: Multiple of the baseline allowed before a run is declared wedged.
BUDGET_FACTOR = 10

#: Flat allowance so short baselines still tolerate cold-cache and
#: fault-induced stall noise.
BUDGET_SLACK = 1000


def watchdog_budget(baseline_cycles):
    """The cycle budget for a run whose fault-free baseline is known.

    A perturbed run (injected faults, fuzzed interleavings) may stall far
    longer than its baseline, but a run exceeding ten times the baseline
    plus slack is wedged, not slow.
    """
    return BUDGET_FACTOR * baseline_cycles + BUDGET_SLACK


#: MachineStats stall counters, labelled by the pipeline stage that owns
#: them (see :mod:`repro.cpu.pipeline`).
STALL_COUNTERS = (
    ("fetch", "stall_ibuf_miss_cycles"),
    ("issue", "stall_int_delay"),
    ("issue", "stall_alu_ir_busy"),
    ("issue", "stall_scoreboard"),
    ("issue", "stall_vector_interlock"),
    ("mem_port", "stall_port"),
    ("mem_port", "stall_dcache_miss_cycles"),
)


def livelock_diagnostic(machine):
    """One line naming what a wedged machine is waiting on.

    Reports the current PC, every non-zero per-stage stall counter (plus
    the FPU sequencer's own scoreboard stalls), and the registers whose
    scoreboard reservation bits are still pending -- a stuck bit here is
    the classic livelock: everything downstream waits on a writeback that
    will never come.
    """
    stats = machine.stats
    stalls = ["%s.%s=%d" % (stage, field.replace("stall_", ""),
                            getattr(stats, field))
              for stage, field in STALL_COUNTERS if getattr(stats, field)]
    fpu_stalls = machine.fpu.stats.scoreboard_stall_cycles
    if fpu_stalls:
        stalls.append("fpu.element_scoreboard=%d" % fpu_stalls)
    pending = [register for register, bit
               in enumerate(machine.fpu.scoreboard.bits) if bit]
    return ("livelock diagnostic: pc=%d stalls[%s] pending scoreboard "
            "bits %s" % (machine.pc, " ".join(stalls) or "none",
                         ["R%d" % r for r in pending] or "none"))
