"""Orchestration-layer chaos harness: prove the supervisor survives.

PR 1 injected faults *inside* the machine (bit flips, stalls); this
module injects faults *around* it, at campaign granularity -- the same
§2.3.3 restart philosophy one layer up: abort the faulting unit (here, a
worker process), preserve enough state (the journal + result cache) to
resume exactly.

A :class:`ChaosPlan` deterministically assigns orchestration faults to
task indices:

* ``kill``      -- the worker SIGKILLs itself mid-task (no cleanup, no
                   goodbye: the supervisor must notice the death,
                   respawn the worker and retry the task);
* ``hang``      -- the worker sleeps far past the task timeout (the
                   watchdog must kill and respawn it);
* ``transient`` -- the task raises :class:`ChaosError` (the retry path
                   for in-task exceptions and cache I/O errors);
* ``corrupt``   -- the task's result-cache entry is overwritten with
                   garbage before execution (the cache must detect,
                   delete and recompute -- self-healing under load).

Faults fire on attempt 1 only (``persistent=False``), so a healthy
supervisor recovers every task; ``persistent=True`` makes a fault fire
on every attempt, driving the task into quarantine -- the poison-task
path.  ``interrupt_after=N`` raises ``KeyboardInterrupt`` in the
*supervisor* after N finalized tasks, simulating a mid-campaign ^C /
SIGTERM for journal-resume testing.

:func:`run_chaos_campaign` is the end-to-end harness behind
``python -m repro chaos`` and the CI ``chaos-smoke`` job: it runs a
seeded chaos campaign and asserts zero lost tasks, request-order
results, a structured failure record for every injected fault,
byte-identical ``BENCH`` documents between ``jobs=1`` and ``jobs=N``,
and interrupt/resume equivalence through the journal.
"""

import os
import random
import signal
import time


class ChaosError(RuntimeError):
    """The injected transient failure (``transient`` fault kind)."""


#: The orchestration fault kinds a plan can assign to a task.
FAULT_KINDS = ("kill", "hang", "transient", "corrupt")

#: Expected per-attempt failure-record kind for each injected fault that
#: surfaces as an attempt failure (``corrupt`` self-heals in-attempt and
#: is observed through cache telemetry instead).
EXPECTED_RECORD = {"kill": "worker_crash", "hang": "timeout",
                   "transient": "task_error"}


class ChaosPlan:
    """A deterministic assignment of orchestration faults to tasks.

    ``faults`` maps task index -> fault kind; build one explicitly or
    with :meth:`seeded`.  The plan lives supervisor-side; workers only
    ever see plain-dict directives, so it works under both fork and
    spawn start methods.
    """

    def __init__(self, faults=None, interrupt_after=None,
                 hang_seconds=3600.0, persistent=False):
        self.faults = {int(index): str(kind)
                       for index, kind in (faults or {}).items()}
        for index, kind in self.faults.items():
            if kind not in FAULT_KINDS:
                raise ValueError("unknown fault kind %r at task %d "
                                 "(choose from %s)"
                                 % (kind, index, ", ".join(FAULT_KINDS)))
        self.interrupt_after = interrupt_after
        self.hang_seconds = float(hang_seconds)
        self.persistent = bool(persistent)

    @classmethod
    def seeded(cls, seed, tasks, kills=1, hangs=1, transients=1, corrupts=1,
               **kwargs):
        """Assign the requested fault counts to distinct seeded task
        indices (deterministic in ``(seed, tasks)`` and the counts)."""
        wanted = (["kill"] * kills + ["hang"] * hangs
                  + ["transient"] * transients + ["corrupt"] * corrupts)
        if len(wanted) > tasks:
            raise ValueError("%d faults do not fit in %d tasks"
                             % (len(wanted), tasks))
        indices = random.Random(seed).sample(range(tasks), len(wanted))
        return cls(faults=dict(zip(indices, wanted)), **kwargs)

    def directive(self, index, attempt):
        """The worker-side fault directive for one attempt, or None.

        Non-persistent plans fault only the first attempt, so retries
        recover; persistent plans fault every attempt, so the task
        exhausts its budget and quarantines.
        """
        kind = self.faults.get(index)
        if kind is None:
            return None
        if attempt > 1 and not self.persistent:
            return None
        directive = {"kind": kind}
        if kind == "hang":
            directive["seconds"] = self.hang_seconds
        return directive

    def kinds(self):
        """``{task index: fault kind}`` for assertions and reports."""
        return dict(self.faults)


def apply_worker_directive(directive, request_dict, cache_dir):
    """Execute one chaos directive inside a worker, before the task.

    Called by the orchestrator's attempt runner when the supervisor
    attached a directive to the task tuple.
    """
    kind = directive.get("kind")
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(directive.get("seconds", 3600.0)))
    elif kind == "transient":
        raise ChaosError("chaos: injected transient failure")
    elif kind == "corrupt":
        _corrupt_cache_entry(request_dict, cache_dir)
    else:
        raise ValueError("unknown chaos directive kind %r" % kind)


def _corrupt_cache_entry(request_dict, cache_dir):
    """Overwrite the task's result-cache entry with garbage, simulating
    mid-campaign on-disk corruption; execution then proceeds normally
    and the cache's self-healing path must absorb it."""
    if not cache_dir:
        return
    from repro import api, orchestrate
    from repro.workloads.experiments import CACHE_SALT

    request = api.RunRequest.from_dict(request_dict)
    fn = api.get_workload(request.workload)
    digest = fn.digest(request) if fn.digest else None
    key = orchestrate.cache_key(request.workload, request.params,
                                request.config_fingerprint(),
                                program_digest=digest, salt=CACHE_SALT,
                                backend=request.resolved_backend())
    path = os.path.join(str(cache_dir), key[:2], key + ".json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": "chaos-garbage", "metrics": ')


# ---------------------------------------------------------------------------
# The end-to-end harness (CLI `repro chaos`, CI `chaos-smoke`)
# ---------------------------------------------------------------------------

class ChaosReport:
    """What one chaos harness run established."""

    def __init__(self, plan, tasks, jobs):
        self.plan = plan
        self.tasks = tasks
        self.jobs = jobs
        self.problems = []
        self.lines = []

    @property
    def ok(self):
        return not self.problems

    def note(self, text):
        self.lines.append(text)

    def problem(self, text):
        self.problems.append(text)

    def render(self):
        out = ["chaos harness: %d tasks, %d fault(s) injected, jobs=%d"
               % (self.tasks, len(self.plan.faults), self.jobs)]
        for index, kind in sorted(self.plan.kinds().items()):
            out.append("  fault: task %d <- %s" % (index, kind))
        out.extend("  " + line for line in self.lines)
        if self.problems:
            out.append("CHAOS HARNESS FAILED: %d problem(s)"
                       % len(self.problems))
            out.extend("  problem: " + text for text in self.problems)
        else:
            out.append("chaos harness: all checks passed")
        return "\n".join(out)


def chaos_requests(tasks):
    """A deterministic mixed bag of cheap workloads to torture."""
    from repro.api import RunRequest

    strategies = ("scalar_tree", "linear_vector", "vector_tree")
    requests = []
    for index in range(tasks):
        which = index % 3
        if which == 0:
            requests.append(RunRequest("fib", {"count": 8 + index % 5}))
        elif which == 1:
            requests.append(RunRequest(
                "reduction", {"strategy": strategies[index % 3]}))
        else:
            requests.append(RunRequest(
                "gather", {"pattern": "stride",
                           "stride_words": 1 + index % 3}))
    return requests


def _check_campaign(report, label, plan, requests, run):
    """Assert the invariants every chaos campaign must keep: zero lost
    tasks, request-order results, recovery, and a structured failure
    record for every injected fault."""
    from repro.orchestrate import dump_bench_json

    if len(run.results) != len(requests):
        report.problem("%s: %d tasks submitted, %d results"
                       % (label, len(requests), len(run.results)))
        return None
    for index, (request, result) in enumerate(zip(requests, run.results)):
        if result is None:
            report.problem("%s: task %d lost" % (label, index))
            return None
        if (result.workload != request.workload
                or result.params != request.params):
            report.problem("%s: task %d out of order (%s(%s) != %s(%s))"
                           % (label, index, result.workload, result.params,
                              request.workload, request.params))
    for index, kind in sorted(plan.kinds().items()):
        result = run.results[index]
        if not result.passed:
            report.problem("%s: task %d (%s fault) did not recover: %s"
                           % (label, index, kind,
                              result.failure or result.check_error))
            continue
        if kind == "corrupt":
            side = run.sidecars[index]
            if not side.get("cache_corrupted"):
                report.problem("%s: task %d corrupt fault left no "
                               "self-healing telemetry" % (label, index))
            continue
        recorded = [record["kind"] for record in result.attempts]
        expected = EXPECTED_RECORD[kind]
        if expected not in recorded:
            report.problem("%s: task %d %s fault left no %r attempt "
                           "record (got %s)"
                           % (label, index, kind, expected, recorded or "[]"))
    report.note("%s: %d/%d tasks finalized, %d retried, %d failed"
                % (label, len(run.results), len(requests),
                   run.retried_count, run.failed_count))
    return dump_bench_json(run.results, sweep="chaos")


def run_chaos_campaign(tasks=12, jobs=4, seed=1989, task_timeout=2.0,
                       max_retries=2, retry_base=0.05, kills=1, hangs=1,
                       transients=1, corrupts=1, start_method=None,
                       workdir=None, progress=None, check_determinism=True,
                       check_resume=True):
    """Run the seeded chaos campaign and verify every invariant.

    Returns a :class:`ChaosReport`; ``report.ok`` is the CI verdict.
    ``workdir`` (default: a fresh temp directory, removed on success)
    holds the result caches and the resume journal.
    """
    import shutil
    import tempfile

    from repro import orchestrate

    owned = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    requests = chaos_requests(tasks)
    plan = ChaosPlan.seeded(seed, tasks, kills=kills, hangs=hangs,
                            transients=transients, corrupts=corrupts)
    report = ChaosReport(plan, tasks, jobs)

    def campaign(label, use_jobs, chaos, resume=False, journal=False):
        return orchestrate.run_campaign(
            list(requests), jobs=use_jobs,
            cache_dir=os.path.join(workdir, "cache-" + label.split()[0]),
            progress=progress, task_timeout=task_timeout,
            max_retries=max_retries, retry_base=retry_base,
            journal_dir=os.path.join(workdir, "journal") if journal else None,
            resume=resume, chaos=chaos, start_method=start_method, seed=seed)

    fanned_bytes = _check_campaign(
        report, "fanned (jobs=%d)" % jobs, plan, requests,
        campaign("fanned", jobs, plan))

    if check_determinism and fanned_bytes is not None:
        serial_bytes = _check_campaign(
            report, "serial (jobs=1)", plan, requests,
            campaign("serial", 1, plan))
        if serial_bytes is not None:
            if serial_bytes == fanned_bytes:
                report.note("determinism: BENCH bytes identical at jobs=1 "
                            "and jobs=%d (%d bytes)"
                            % (jobs, len(fanned_bytes)))
            else:
                report.problem("nondeterministic BENCH bytes between "
                               "jobs=1 and jobs=%d" % jobs)

    if check_resume and fanned_bytes is not None:
        interrupting = ChaosPlan(faults=plan.faults,
                                 interrupt_after=max(1, tasks // 2),
                                 hang_seconds=plan.hang_seconds)
        interrupted = False
        try:
            campaign("resume", jobs, interrupting, journal=True)
        except KeyboardInterrupt:
            interrupted = True
        if not interrupted:
            report.problem("resume: injected interrupt did not fire")
        else:
            resumed_plan = ChaosPlan(faults=plan.faults,
                                     hang_seconds=plan.hang_seconds)
            resumed = campaign("resume", jobs, resumed_plan, resume=True,
                               journal=True)
            resumed_bytes = _check_campaign(
                report, "resumed (jobs=%d)" % jobs, plan, requests, resumed)
            if resumed.resumed_count < 1:
                report.problem("resume: journal restored no tasks")
            else:
                report.note("resume: %d task(s) restored from journal, "
                            "%d re-executed"
                            % (resumed.resumed_count,
                               tasks - resumed.resumed_count))
            if resumed_bytes is not None and resumed_bytes != fanned_bytes:
                report.problem("resume: resumed BENCH bytes differ from the "
                               "uninterrupted run")

    if owned and report.ok:
        shutil.rmtree(workdir, ignore_errors=True)
    elif not report.ok:
        report.note("workdir kept for inspection: %s" % workdir)
    return report
