"""Orchestration-layer chaos harness: prove the supervisor survives.

PR 1 injected faults *inside* the machine (bit flips, stalls); this
module injects faults *around* it, at campaign granularity -- the same
§2.3.3 restart philosophy one layer up: abort the faulting unit (here, a
worker process), preserve enough state (the journal + result cache) to
resume exactly.

A :class:`ChaosPlan` deterministically assigns orchestration faults to
task indices:

* ``kill``      -- the worker SIGKILLs itself mid-task (no cleanup, no
                   goodbye: the supervisor must notice the death,
                   respawn the worker and retry the task);
* ``hang``      -- the worker sleeps far past the task timeout (the
                   watchdog must kill and respawn it);
* ``transient`` -- the task raises :class:`ChaosError` (the retry path
                   for in-task exceptions and cache I/O errors);
* ``corrupt``   -- the task's result-cache entry is overwritten with
                   garbage before execution (the cache must detect,
                   delete and recompute -- self-healing under load).

Faults fire on attempt 1 only (``persistent=False``), so a healthy
supervisor recovers every task; ``persistent=True`` makes a fault fire
on every attempt, driving the task into quarantine -- the poison-task
path.  ``interrupt_after=N`` raises ``KeyboardInterrupt`` in the
*supervisor* after N finalized tasks, simulating a mid-campaign ^C /
SIGTERM for journal-resume testing.

:func:`run_chaos_campaign` is the end-to-end harness behind
``python -m repro chaos`` and the CI ``chaos-smoke`` job: it runs a
seeded chaos campaign and asserts zero lost tasks, request-order
results, a structured failure record for every injected fault,
byte-identical ``BENCH`` documents between ``jobs=1`` and ``jobs=N``,
and interrupt/resume equivalence through the journal.
"""

import os
import random
import signal
import time


class ChaosError(RuntimeError):
    """The injected transient failure (``transient`` fault kind)."""


#: The orchestration fault kinds a plan can assign to a task.
FAULT_KINDS = ("kill", "hang", "transient", "corrupt")

#: Expected per-attempt failure-record kind for each injected fault that
#: surfaces as an attempt failure (``corrupt`` self-heals in-attempt and
#: is observed through cache telemetry instead).
EXPECTED_RECORD = {"kill": "worker_crash", "hang": "timeout",
                   "transient": "task_error"}


class ChaosPlan:
    """A deterministic assignment of orchestration faults to tasks.

    ``faults`` maps task index -> fault kind; build one explicitly or
    with :meth:`seeded`.  The plan lives supervisor-side; workers only
    ever see plain-dict directives, so it works under both fork and
    spawn start methods.
    """

    def __init__(self, faults=None, interrupt_after=None,
                 hang_seconds=3600.0, persistent=False):
        self.faults = {int(index): str(kind)
                       for index, kind in (faults or {}).items()}
        for index, kind in self.faults.items():
            if kind not in FAULT_KINDS:
                raise ValueError("unknown fault kind %r at task %d "
                                 "(choose from %s)"
                                 % (kind, index, ", ".join(FAULT_KINDS)))
        self.interrupt_after = interrupt_after
        self.hang_seconds = float(hang_seconds)
        self.persistent = bool(persistent)

    @classmethod
    def seeded(cls, seed, tasks, kills=1, hangs=1, transients=1, corrupts=1,
               **kwargs):
        """Assign the requested fault counts to distinct seeded task
        indices (deterministic in ``(seed, tasks)`` and the counts)."""
        wanted = (["kill"] * kills + ["hang"] * hangs
                  + ["transient"] * transients + ["corrupt"] * corrupts)
        if len(wanted) > tasks:
            raise ValueError("%d faults do not fit in %d tasks"
                             % (len(wanted), tasks))
        indices = random.Random(seed).sample(range(tasks), len(wanted))
        return cls(faults=dict(zip(indices, wanted)), **kwargs)

    def directive(self, index, attempt):
        """The worker-side fault directive for one attempt, or None.

        Non-persistent plans fault only the first attempt, so retries
        recover; persistent plans fault every attempt, so the task
        exhausts its budget and quarantines.
        """
        kind = self.faults.get(index)
        if kind is None:
            return None
        if attempt > 1 and not self.persistent:
            return None
        directive = {"kind": kind}
        if kind == "hang":
            directive["seconds"] = self.hang_seconds
        return directive

    def kinds(self):
        """``{task index: fault kind}`` for assertions and reports."""
        return dict(self.faults)


def apply_worker_directive(directive, request_dict, cache_dir):
    """Execute one chaos directive inside a worker, before the task.

    Called by the orchestrator's attempt runner when the supervisor
    attached a directive to the task tuple.
    """
    kind = directive.get("kind")
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(float(directive.get("seconds", 3600.0)))
    elif kind == "transient":
        raise ChaosError("chaos: injected transient failure")
    elif kind == "corrupt":
        _corrupt_cache_entry(request_dict, cache_dir)
    else:
        raise ValueError("unknown chaos directive kind %r" % kind)


def _corrupt_cache_entry(request_dict, cache_dir):
    """Overwrite the task's result-cache entry with garbage, simulating
    mid-campaign on-disk corruption; execution then proceeds normally
    and the cache's self-healing path must absorb it."""
    if not cache_dir:
        return
    from repro import api, orchestrate
    from repro.workloads.experiments import CACHE_SALT

    request = api.RunRequest.from_dict(request_dict)
    fn = api.get_workload(request.workload)
    digest = fn.digest(request) if fn.digest else None
    key = orchestrate.cache_key(request.workload, request.params,
                                request.config_fingerprint(),
                                program_digest=digest, salt=CACHE_SALT,
                                backend=request.resolved_backend())
    path = os.path.join(str(cache_dir), key[:2], key + ".json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": "chaos-garbage", "metrics": ')


# ---------------------------------------------------------------------------
# The end-to-end harness (CLI `repro chaos`, CI `chaos-smoke`)
# ---------------------------------------------------------------------------

class ChaosReport:
    """What one chaos harness run established."""

    def __init__(self, plan, tasks, jobs):
        self.plan = plan
        self.tasks = tasks
        self.jobs = jobs
        self.problems = []
        self.lines = []

    @property
    def ok(self):
        return not self.problems

    def note(self, text):
        self.lines.append(text)

    def problem(self, text):
        self.problems.append(text)

    def render(self):
        out = ["chaos harness: %d tasks, %d fault(s) injected, jobs=%d"
               % (self.tasks, len(self.plan.faults), self.jobs)]
        for index, kind in sorted(self.plan.kinds().items()):
            out.append("  fault: task %d <- %s" % (index, kind))
        out.extend("  " + line for line in self.lines)
        if self.problems:
            out.append("CHAOS HARNESS FAILED: %d problem(s)"
                       % len(self.problems))
            out.extend("  problem: " + text for text in self.problems)
        else:
            out.append("chaos harness: all checks passed")
        return "\n".join(out)


def chaos_requests(tasks):
    """A deterministic mixed bag of cheap workloads to torture."""
    from repro.api import RunRequest

    strategies = ("scalar_tree", "linear_vector", "vector_tree")
    requests = []
    for index in range(tasks):
        which = index % 3
        if which == 0:
            requests.append(RunRequest("fib", {"count": 8 + index % 5}))
        elif which == 1:
            requests.append(RunRequest(
                "reduction", {"strategy": strategies[index % 3]}))
        else:
            requests.append(RunRequest(
                "gather", {"pattern": "stride",
                           "stride_words": 1 + index % 3}))
    return requests


def _check_campaign(report, label, plan, requests, run):
    """Assert the invariants every chaos campaign must keep: zero lost
    tasks, request-order results, recovery, and a structured failure
    record for every injected fault."""
    from repro.orchestrate import dump_bench_json

    if len(run.results) != len(requests):
        report.problem("%s: %d tasks submitted, %d results"
                       % (label, len(requests), len(run.results)))
        return None
    for index, (request, result) in enumerate(zip(requests, run.results)):
        if result is None:
            report.problem("%s: task %d lost" % (label, index))
            return None
        if (result.workload != request.workload
                or result.params != request.params):
            report.problem("%s: task %d out of order (%s(%s) != %s(%s))"
                           % (label, index, result.workload, result.params,
                              request.workload, request.params))
    for index, kind in sorted(plan.kinds().items()):
        result = run.results[index]
        if not result.passed:
            report.problem("%s: task %d (%s fault) did not recover: %s"
                           % (label, index, kind,
                              result.failure or result.check_error))
            continue
        if kind == "corrupt":
            side = run.sidecars[index]
            if not side.get("cache_corrupted"):
                report.problem("%s: task %d corrupt fault left no "
                               "self-healing telemetry" % (label, index))
            continue
        recorded = [record["kind"] for record in result.attempts]
        expected = EXPECTED_RECORD[kind]
        if expected not in recorded:
            report.problem("%s: task %d %s fault left no %r attempt "
                           "record (got %s)"
                           % (label, index, kind, expected, recorded or "[]"))
    report.note("%s: %d/%d tasks finalized, %d retried, %d failed"
                % (label, len(run.results), len(requests),
                   run.retried_count, run.failed_count))
    return dump_bench_json(run.results, sweep="chaos")


def run_chaos_campaign(tasks=12, jobs=4, seed=1989, task_timeout=2.0,
                       max_retries=2, retry_base=0.05, kills=1, hangs=1,
                       transients=1, corrupts=1, start_method=None,
                       workdir=None, progress=None, check_determinism=True,
                       check_resume=True):
    """Run the seeded chaos campaign and verify every invariant.

    Returns a :class:`ChaosReport`; ``report.ok`` is the CI verdict.
    ``workdir`` (default: a fresh temp directory, removed on success)
    holds the result caches and the resume journal.
    """
    import shutil
    import tempfile

    from repro import orchestrate

    owned = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    requests = chaos_requests(tasks)
    plan = ChaosPlan.seeded(seed, tasks, kills=kills, hangs=hangs,
                            transients=transients, corrupts=corrupts)
    report = ChaosReport(plan, tasks, jobs)

    def campaign(label, use_jobs, chaos, resume=False, journal=False):
        return orchestrate.run_campaign(
            list(requests), jobs=use_jobs,
            cache_dir=os.path.join(workdir, "cache-" + label.split()[0]),
            progress=progress, task_timeout=task_timeout,
            max_retries=max_retries, retry_base=retry_base,
            journal_dir=os.path.join(workdir, "journal") if journal else None,
            resume=resume, chaos=chaos, start_method=start_method, seed=seed)

    fanned_bytes = _check_campaign(
        report, "fanned (jobs=%d)" % jobs, plan, requests,
        campaign("fanned", jobs, plan))

    if check_determinism and fanned_bytes is not None:
        serial_bytes = _check_campaign(
            report, "serial (jobs=1)", plan, requests,
            campaign("serial", 1, plan))
        if serial_bytes is not None:
            if serial_bytes == fanned_bytes:
                report.note("determinism: BENCH bytes identical at jobs=1 "
                            "and jobs=%d (%d bytes)"
                            % (jobs, len(fanned_bytes)))
            else:
                report.problem("nondeterministic BENCH bytes between "
                               "jobs=1 and jobs=%d" % jobs)

    if check_resume and fanned_bytes is not None:
        interrupting = ChaosPlan(faults=plan.faults,
                                 interrupt_after=max(1, tasks // 2),
                                 hang_seconds=plan.hang_seconds)
        interrupted = False
        try:
            campaign("resume", jobs, interrupting, journal=True)
        except KeyboardInterrupt:
            interrupted = True
        if not interrupted:
            report.problem("resume: injected interrupt did not fire")
        else:
            resumed_plan = ChaosPlan(faults=plan.faults,
                                     hang_seconds=plan.hang_seconds)
            resumed = campaign("resume", jobs, resumed_plan, resume=True,
                               journal=True)
            resumed_bytes = _check_campaign(
                report, "resumed (jobs=%d)" % jobs, plan, requests, resumed)
            if resumed.resumed_count < 1:
                report.problem("resume: journal restored no tasks")
            else:
                report.note("resume: %d task(s) restored from journal, "
                            "%d re-executed"
                            % (resumed.resumed_count,
                               tasks - resumed.resumed_count))
            if resumed_bytes is not None and resumed_bytes != fanned_bytes:
                report.problem("resume: resumed BENCH bytes differ from the "
                               "uninterrupted run")

    if owned and report.ok:
        shutil.rmtree(workdir, ignore_errors=True)
    elif not report.ok:
        report.note("workdir kept for inspection: %s" % workdir)
    return report


# ---------------------------------------------------------------------------
# Service-level chaos (CLI `repro chaos --service`, CI `service-smoke`)
# ---------------------------------------------------------------------------

class ServiceChaosReport:
    """What one service chaos run established, phase by phase."""

    def __init__(self, tasks, jobs):
        self.tasks = tasks
        self.jobs = jobs
        self.problems = []
        self.lines = []

    @property
    def ok(self):
        return not self.problems

    def note(self, text):
        self.lines.append(text)

    def problem(self, text):
        self.problems.append(text)

    def render(self):
        out = ["service chaos harness: %d tasks, jobs=%d"
               % (self.tasks, self.jobs)]
        out.extend("  " + line for line in self.lines)
        if self.problems:
            out.append("SERVICE CHAOS HARNESS FAILED: %d problem(s)"
                       % len(self.problems))
            out.extend("  problem: " + text for text in self.problems)
        else:
            out.append("service chaos harness: all checks passed")
        return "\n".join(out)


def _direct_bench_text(requests, plan, deadline, seed, cache_dir,
                       max_retries, retry_base, jobs=1):
    """The ground truth the service must reproduce byte-for-byte: the
    same requests through a local run_campaign with the same chaos plan
    and watchdog deadline (the chaos harness proved these bytes are
    identical at any worker count)."""
    from repro import orchestrate

    run = orchestrate.run_campaign(
        list(requests), jobs=jobs, cache_dir=cache_dir,
        task_timeout=deadline, max_retries=max_retries,
        retry_base=retry_base, chaos=plan, seed=seed)
    return orchestrate.dump_bench_json(run.results, sweep="service")


def _check_service_document(report, label, plan, requests, text):
    """The service-side analogue of :func:`_check_campaign`: assert
    zero lost tasks, request order, recovery, and the expected typed
    attempt record for every injected fault -- from the BENCH document
    the service served."""
    import json

    from repro import orchestrate

    try:
        document = orchestrate.validate_bench_json(json.loads(text))
    except ValueError as exc:
        report.problem("%s: served document is invalid: %s" % (label, exc))
        return
    entries = document["results"]
    if len(entries) != len(requests):
        report.problem("%s: %d tasks submitted, %d results served"
                       % (label, len(requests), len(entries)))
        return
    for index, (request, entry) in enumerate(zip(requests, entries)):
        if (entry["workload"] != request.workload
                or entry["params"] != request.params):
            report.problem("%s: task %d out of order" % (label, index))
    for index, kind in sorted((plan or ChaosPlan()).kinds().items()):
        entry = entries[index]
        if entry.get("failure") is not None:
            report.problem("%s: task %d (%s fault) did not recover: %s"
                           % (label, index, kind, entry["failure"]))
            continue
        if kind == "corrupt":
            continue  # self-healing is observed through cache telemetry
        recorded = [record["kind"] for record in entry.get("attempts", [])]
        expected = EXPECTED_RECORD[kind]
        if expected not in recorded:
            report.problem("%s: task %d %s fault left no %r attempt record "
                           "(got %s)" % (label, index, kind, expected,
                                         recorded or "[]"))
    report.note("%s: %d/%d tasks served, every fault recovered"
                % (label, len(entries), len(requests)))


def _slow_and_disconnecting_clients(report, host, port, read_timeout):
    """A client that dribbles half a request and stalls, and one that
    vanishes mid-connection: the server must time both out (408 or
    close) without wedging the accept loop."""
    import socket

    try:
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"POST /v1/campaigns HTTP/1.1\r\nContent-Le")
            sock.settimeout(read_timeout + 5.0)
            data = sock.recv(4096)  # the 408 (or empty on close)
        if data and b"408" not in data.split(b"\r\n", 1)[0]:
            report.problem("slow client: expected 408 or close, got %r"
                           % data[:60])
        else:
            report.note("slow client: timed out with %s"
                        % ("408" if data else "connection close"))
    except OSError as exc:
        report.problem("slow client probe failed: %s" % exc)
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
        sock.sendall(b"GET /v1/health HTTP/1.1\r\n")  # torn header block
        sock.close()  # vanish mid-request
        report.note("disconnecting client: dropped mid-request")
    except OSError as exc:
        report.problem("disconnecting client probe failed: %s" % exc)


def run_service_chaos(tasks=8, jobs=2, seed=1989, deadline=1.5,
                      max_retries=2, retry_base=0.05, workdir=None,
                      progress=None):
    """Chaos-under-load against the campaign service over real HTTP.

    Phases (each a named note in the report):

    1. **faulted campaign** -- worker SIGKILL, watchdog hang and a
       transient exception injected into a campaign submitted over
       HTTP; the service must lose nothing, record every fault, and its
       BENCH document must be byte-identical to a local
       ``run_campaign`` under the same plan.
    2. **dedup** -- the identical resubmission coalesces (never
       double-executes).
    3. **streaming + rude clients** -- SSE progress events arrive; a
       slow client and a mid-request disconnect are absorbed.
    4. **overload** -- submits past the bounded queue draw HTTP 429
       with ``Retry-After``; honoring it eventually succeeds; nothing
       admitted is lost.
    5. **quota** -- a flooding client id is rate-limited (429) while
       another client is not.
    6. **drain + resume** -- a SIGTERM-style drain mid-campaign yields
       ``interrupted`` + a resume hint and 503s for new work; a fresh
       service on the same journal dir completes the remainder from the
       journal, byte-identically.

    Returns a :class:`ServiceChaosReport`; ``report.ok`` is the CI
    verdict for the ``service-smoke`` job.
    """
    import os as _os
    import shutil
    import tempfile

    from repro.api import RunRequest
    from repro.service.client import (ServiceClient, ServiceError,
                                      ServiceOverloaded)
    from repro.service.server import ServiceThread

    owned = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="repro-service-chaos-")
    report = ServiceChaosReport(tasks, jobs)
    requests = chaos_requests(tasks)
    plan = ChaosPlan.seeded(seed, tasks, kills=1, hangs=1, transients=1,
                            corrupts=0)
    chaos_option = {"faults": {str(k): v for k, v in plan.kinds().items()}}
    read_timeout = 1.0

    direct_text = _direct_bench_text(
        requests, ChaosPlan(faults=plan.faults), deadline, seed,
        _os.path.join(workdir, "cache-direct"), max_retries, retry_base)

    service_kwargs = dict(
        jobs=jobs, cache_dir=_os.path.join(workdir, "cache-service"),
        journal_dir=_os.path.join(workdir, "journal"), max_queue=2,
        max_active=1, max_retries=max_retries, retry_base=retry_base,
        seed=seed, drain_grace=0.2)

    with ServiceThread(read_timeout=read_timeout, **service_kwargs) as srv:
        client = ServiceClient(port=srv.port, client_id="chaos-harness")

        # Phase 1: the faulted campaign over HTTP.
        submitted = client.submit(requests, chaos=chaos_option,
                                  deadline_seconds=deadline, seed=seed)
        final = client.wait(submitted["campaign"], timeout=180.0)
        if final["state"] != "done":
            report.problem("faulted campaign ended %r: %s"
                           % (final["state"], final.get("error_detail")))
        else:
            text = client.result_text(submitted["campaign"])
            _check_service_document(report, "faulted campaign", plan,
                                    requests, text)
            if text == direct_text:
                report.note("determinism: service BENCH bytes identical to "
                            "local run_campaign (%d bytes)" % len(text))
            else:
                report.problem("service BENCH bytes differ from the local "
                               "run under the same chaos plan")

        # Phase 2: dedup -- identical submission must coalesce.
        before = client.health()["counters"]["submitted"]
        again = client.submit(requests, chaos=chaos_option,
                              deadline_seconds=deadline, seed=seed)
        after = client.health()["counters"]
        if not again.get("deduplicated") or again["state"] != "done":
            report.problem("dedup: identical resubmission did not coalesce "
                           "(%s)" % again)
        elif after["submitted"] != before:
            report.problem("dedup: resubmission admitted a duplicate "
                           "campaign")
        else:
            report.note("dedup: identical resubmission coalesced, "
                        "nothing re-executed")

        # Phase 3: SSE streaming + slow/disconnecting clients.  A single
        # hang-faulted task keeps the campaign alive until well after
        # the stream connects, so no task event can be missed.
        stream_requests = [RunRequest("fib", {"count": 21})]
        streamed = client.submit(stream_requests, sweep="stream",
                                 chaos={"faults": {"0": "hang"}},
                                 deadline_seconds=deadline, seed=seed)
        saw = {"task": 0, "terminal": False}
        for event in client.events(streamed["campaign"], timeout=60.0):
            if event.get("event") == "task":
                saw["task"] += 1
            if event.get("event") in ("state", "status") and \
                    event.get("state") in ("done", "failed"):
                saw["terminal"] = True
        if saw["task"] < len(stream_requests):
            report.problem("SSE: saw %d task events for a %d-task campaign"
                           % (saw["task"], len(stream_requests)))
        elif not saw["terminal"]:
            report.problem("SSE: stream ended without a terminal state")
        else:
            report.note("SSE: %d task events + terminal state streamed"
                        % saw["task"])
        _slow_and_disconnecting_clients(report, "127.0.0.1", srv.port,
                                        read_timeout)
        if client.health()["state"] != "serving":
            report.problem("service unhealthy after rude clients")

        # Phase 4: overload -- flood past the bounded queue.
        blocker = [RunRequest("fib", {"count": 40})]
        client.submit(blocker, chaos={"faults": {"0": "hang"}},
                      deadline_seconds=deadline, seed=seed)
        flood = [[RunRequest("fib", {"count": 50 + index})]
                 for index in range(6)]
        rejected = None
        admitted = []
        for batch in flood:
            try:
                admitted.append(client.submit(batch)["campaign"])
            except ServiceOverloaded as exc:
                rejected = (batch, exc)
                break
        if rejected is None:
            report.problem("overload: %d floods were all admitted past "
                           "max_queue=2" % len(flood))
        else:
            batch, exc = rejected
            if exc.code != "overloaded" or not exc.retry_after:
                report.problem("overload: 429 lacked code/Retry-After "
                               "(%s, %r)" % (exc.code, exc.retry_after))
            else:
                report.note("overload: 429 with Retry-After=%.0fs after "
                            "%d admission(s)"
                            % (exc.retry_after, len(admitted)))
            retried = client.submit_with_retry(batch, attempts=30)
            admitted.append(retried["campaign"])
        lost = 0
        for cid in admitted:
            if client.wait(cid, timeout=120.0)["state"] != "done":
                lost += 1
        if lost:
            report.problem("overload: %d admitted campaign(s) did not "
                           "complete" % lost)
        else:
            report.note("overload: all %d admitted campaigns completed "
                        "(zero lost)" % len(admitted))

    # Phase 5: quota -- a dedicated service with a tight token bucket.
    with ServiceThread(jobs=1, quota_rate=2.0, quota_burst=2,
                       max_queue=16, seed=seed) as srv:
        flooder = ServiceClient(port=srv.port, client_id="flooder")
        polite = ServiceClient(port=srv.port, client_id="polite")
        quota_admitted = []
        quota_hit = None
        for index in range(4):
            try:
                quota_admitted.append(flooder.submit(
                    [RunRequest("fib", {"count": 60 + index})])["campaign"])
            except ServiceOverloaded as exc:
                quota_hit = exc
                break
        if quota_hit is None or quota_hit.code != "quota_exceeded" \
                or not quota_hit.retry_after:
            report.problem("quota: flood was not rate-limited with "
                           "Retry-After (%s)" % quota_hit)
        else:
            try:
                quota_admitted.append(polite.submit(
                    [RunRequest("fib", {"count": 70})])["campaign"])
            except ServiceError as exc:
                report.problem("quota: limited the wrong client: %s" % exc)
            else:
                report.note("quota: flooding client 429'd "
                            "(Retry-After=%.0fs), other client admitted"
                            % quota_hit.retry_after)
        for cid in quota_admitted:
            polite.wait(cid, timeout=60.0)

    # Phase 6: drain mid-campaign, then resume on a fresh service.
    drain_requests = [RunRequest("fib", {"count": 30 + index})
                      for index in range(4)]
    drain_chaos = {"faults": {"1": "hang"}}
    srv = ServiceThread(read_timeout=read_timeout, **service_kwargs).start()
    try:
        client = ServiceClient(port=srv.port, client_id="chaos-harness")
        submitted = client.submit(drain_requests, chaos=drain_chaos,
                                  deadline_seconds=deadline, seed=seed)
        srv.drain(grace=0.2)
        status = client.status(submitted["campaign"])
        if status["state"] == "done":
            report.note("drain: campaign finished inside the grace window")
        elif status["state"] != "interrupted" or \
                "resume_hint" not in status:
            report.problem("drain: expected interrupted + resume hint, got "
                           "%s" % status)
        else:
            report.note("drain: campaign interrupted with resume hint (%s)"
                        % status["resume_hint"].get("journal_path", "?"))
        try:
            client.submit([RunRequest("fib", {"count": 80})])
        except ServiceError as exc:
            if exc.status == 503 and exc.code == "draining":
                report.note("drain: new submissions refused with 503 "
                            "draining")
            else:
                report.problem("drain: wrong refusal for new work: %s" % exc)
        else:
            report.problem("drain: a draining service admitted new work")
    finally:
        srv.stop()

    with ServiceThread(read_timeout=read_timeout, **service_kwargs) as srv:
        client = ServiceClient(port=srv.port, client_id="chaos-harness")
        resumed = client.submit(drain_requests, chaos=drain_chaos,
                                deadline_seconds=deadline, seed=seed)
        final = client.wait(resumed["campaign"], timeout=120.0)
        if final["state"] != "done":
            report.problem("resume: campaign ended %r" % final["state"])
        else:
            drain_direct = _direct_bench_text(
                drain_requests,
                ChaosPlan(faults={1: "hang"}), deadline, seed,
                _os.path.join(workdir, "cache-drain-direct"), max_retries,
                retry_base)
            text = client.result_text(resumed["campaign"])
            if text != drain_direct:
                report.problem("resume: resumed BENCH bytes differ from an "
                               "uninterrupted local run")
            else:
                report.note("resume: completed from the journal, "
                            "byte-identical to an uninterrupted run "
                            "(%d task(s) restored)" % final.get("resumed", 0))

    if progress is not None:
        for line in report.lines:
            progress(line)
    if owned and report.ok:
        shutil.rmtree(workdir, ignore_errors=True)
    elif not report.ok:
        report.note("workdir kept for inspection: %s" % workdir)
    return report
