"""Robustness harness: checkpoint/restore, fault injection, self-checking.

Three pillars, all built on the machine's harness hooks:

* **Checkpoint/restore** -- ``Machine.snapshot()`` / ``Machine.restore()``
  (on :class:`~repro.cpu.machine.MultiTitan` itself) capture the complete
  architectural and micro-architectural state, bit-exactly, even
  mid-vector.
* **Fault injection** -- :class:`FaultPlan` schedules deterministic,
  seed-reproducible bit flips and stalls against a running machine.
* **Differential self-checking** -- :class:`DifferentialChecker` runs a
  pure functional :class:`ReferenceExecutor` in lockstep with the
  cycle-level machine and raises :class:`~repro.core.exceptions.
  DivergenceError` at the first architectural disagreement, while
  :func:`audit_invariants` (the ``MachineConfig.audit_invariants`` flag)
  validates scoreboard/pipeline bookkeeping every cycle.

``python -m repro.robustness.smoke`` runs a seeded fault-injection
campaign asserting that every injected architectural fault is either
detected or fully masked -- never silent.

On top of the pillars sits the **coverage-guided differential fuzzer**
(:mod:`repro.robustness.fuzz`): seeded generation of valid programs,
architectural coverage binning, automatic shrinking of failures, and
triage bundles -- ``python -m repro.tools.cli fuzz`` drives it.

One layer further up, the **orchestration chaos harness**
(:mod:`repro.robustness.chaos`) injects campaign-level faults -- worker
SIGKILLs, hangs, transient exceptions, cache corruption, mid-campaign
interrupts -- and asserts the supervised campaign engine
(:mod:`repro.orchestrate`) loses nothing: ``python -m repro chaos``.
"""

from repro.core.exceptions import DivergenceError, InvariantError, LivelockError
from repro.robustness.chaos import ChaosError, ChaosPlan, run_chaos_campaign
from repro.robustness.differential import (
    DifferentialChecker,
    bit_exact,
    check_kernel,
    run_differential,
)
from repro.robustness.faults import FaultEvent, FaultPlan, flip_word_bit
from repro.robustness.invariants import audit_invariants
from repro.robustness.reference import ReferenceExecutor
from repro.robustness.watchdog import livelock_diagnostic, watchdog_budget

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "DifferentialChecker",
    "DivergenceError",
    "FaultEvent",
    "FaultPlan",
    "InvariantError",
    "LivelockError",
    "ReferenceExecutor",
    "audit_invariants",
    "bit_exact",
    "check_kernel",
    "flip_word_bit",
    "livelock_diagnostic",
    "run_chaos_campaign",
    "run_differential",
    "watchdog_budget",
]
