"""Deterministic fault injection for the MultiTitan simulator.

A :class:`FaultPlan` is a schedule of perturbations applied by the
machine's run loop at the top of chosen cycles: single-bit flips in the
FPU or integer register files, scoreboard reservation-bit flips, memory
word corruption, cache-tag corruption (a timing fault -- the cache stores
tags only), and forced pipeline stalls.  Plans built with
:meth:`FaultPlan.random` derive every choice from one seeded
``random.Random`` so any failing campaign reproduces from its seed alone
-- the seed rides along on the plan and is reported by
:meth:`FaultPlan.describe`.

What a fault *should* do is the point: scoreboard flips must be caught by
the invariant audit (:mod:`repro.robustness.invariants`), register and
memory flips by the differential checker (:mod:`repro.robustness.
differential`) at the first dependent retirement, and stalls must be
architecturally invisible (pure timing).  The smoke campaign
(``python -m repro.robustness.smoke``) asserts exactly this taxonomy.
"""

import struct
from random import Random

from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import SimulationError
from repro.cpu import isa

KINDS = ("freg", "ireg", "scoreboard", "memory", "cache_tag", "stall")


def flip_word_bit(value, bit):
    """Flip one bit of a 64-bit register/memory word.

    Floats are flipped in their IEEE-754 encoding; ints in two's
    complement (the flip stays within the low 64 bits).
    """
    if not 0 <= bit < 64:
        raise SimulationError("bit index %d outside a 64-bit word" % bit)
    if type(value) is float:
        (word,) = struct.unpack("<Q", struct.pack("<d", value))
        (flipped,) = struct.unpack("<d", struct.pack("<Q", word ^ (1 << bit)))
        return flipped
    return value ^ (1 << bit)


class FaultEvent:
    """One scheduled perturbation."""

    __slots__ = ("cycle", "kind", "target", "bit", "stall_cycles", "fired")

    def __init__(self, cycle, kind, target=None, bit=None, stall_cycles=0):
        if kind not in KINDS:
            raise SimulationError("unknown fault kind %r" % (kind,))
        self.cycle = cycle
        self.kind = kind
        self.target = target
        self.bit = bit
        self.stall_cycles = stall_cycles
        self.fired = False

    def describe(self):
        if self.kind == "freg":
            what = "flip bit %d of FPU register R%d" % (self.bit, self.target)
        elif self.kind == "ireg":
            what = "flip bit %d of integer register r%d" % (self.bit,
                                                            self.target)
        elif self.kind == "scoreboard":
            what = "flip scoreboard reservation bit of R%d" % self.target
        elif self.kind == "memory":
            what = "flip bit %d of memory word at address %d" % (self.bit,
                                                                 self.target)
        elif self.kind == "cache_tag":
            what = "corrupt data-cache tag of line %d" % self.target
        else:
            what = "stall the CPU for %d cycles" % self.stall_cycles
        return "cycle %d: %s" % (self.cycle, what)


class FaultPlan:
    """A deterministic schedule of fault events.

    Attach with ``machine.fault_plan = plan``; the run loop calls
    :meth:`apply` each cycle (events for that cycle fire once).
    """

    def __init__(self, events=(), seed=None):
        self.seed = seed
        self._by_cycle = {}
        self.events = []
        for event in events:
            self.add(event)

    def add(self, event):
        self.events.append(event)
        self._by_cycle.setdefault(event.cycle, []).append(event)
        return event

    # -- builder helpers ------------------------------------------------

    def flip_freg(self, cycle, register, bit):
        return self.add(FaultEvent(cycle, "freg", target=register, bit=bit))

    def flip_ireg(self, cycle, register, bit):
        return self.add(FaultEvent(cycle, "ireg", target=register, bit=bit))

    def flip_scoreboard(self, cycle, register):
        return self.add(FaultEvent(cycle, "scoreboard", target=register))

    def flip_memory(self, cycle, address, bit):
        return self.add(FaultEvent(cycle, "memory", target=address, bit=bit))

    def corrupt_cache_tag(self, cycle, line_index):
        return self.add(FaultEvent(cycle, "cache_tag", target=line_index))

    def stall(self, cycle, stall_cycles):
        return self.add(FaultEvent(cycle, "stall", stall_cycles=stall_cycles))

    # -- deterministic random campaigns ---------------------------------

    @classmethod
    def random(cls, seed, max_cycle, count=1, kinds=KINDS,
               registers=None, memory_words=64):
        """A plan whose every choice derives from ``Random(seed)``.

        The same seed always builds the same plan, so a failing fault run
        is reproducible from the seed alone.  By default every fault kind
        in :data:`KINDS` is drawn from -- architectural flips (``freg``,
        ``ireg``, ``memory``), bookkeeping corruption (``scoreboard``,
        ``cache_tag``), and pure timing faults (``stall``).
        """
        rng = Random(seed)
        plan = cls(seed=seed)
        registers = list(registers) if registers is not None \
            else list(range(NUM_REGISTERS))
        for _ in range(count):
            kind = rng.choice(list(kinds))
            cycle = rng.randrange(max(1, max_cycle))
            if kind == "freg":
                plan.flip_freg(cycle, rng.choice(registers), rng.randrange(64))
            elif kind == "ireg":
                plan.flip_ireg(cycle,
                               rng.randrange(1, isa.NUM_INT_REGISTERS),
                               rng.randrange(64))
            elif kind == "scoreboard":
                plan.flip_scoreboard(cycle, rng.choice(registers))
            elif kind == "memory":
                plan.flip_memory(cycle, rng.randrange(memory_words) * 8,
                                 rng.randrange(64))
            elif kind == "cache_tag":
                plan.corrupt_cache_tag(cycle, rng.randrange(64))
            else:
                plan.stall(cycle, rng.randrange(1, 16))
        return plan

    # -- application ----------------------------------------------------

    def apply(self, machine, cycle):
        """Fire this cycle's events against the machine; return extra
        stall cycles to charge to the CPU."""
        events = self._by_cycle.get(cycle)
        if not events:
            return 0
        stall = 0
        for event in events:
            if event.fired:
                continue
            event.fired = True
            if event.kind == "freg":
                values = machine.fpu.regs.values
                values[event.target] = flip_word_bit(values[event.target],
                                                     event.bit)
            elif event.kind == "ireg":
                machine.iregs[event.target] = flip_word_bit(
                    machine.iregs[event.target], event.bit)
            elif event.kind == "scoreboard":
                bits = machine.fpu.scoreboard.bits
                bits[event.target] = not bits[event.target]
            elif event.kind == "memory":
                words = machine.memory.words
                index = event.target >> 3
                if index < len(words):
                    words[index] = flip_word_bit(words[index], event.bit)
            elif event.kind == "cache_tag":
                tags = machine.dcache._tags
                line = event.target % len(tags)
                tags[line] = None if tags[line] is not None else 0
            elif event.kind == "stall":
                stall += event.stall_cycles
        return stall

    @property
    def fired_events(self):
        return [event for event in self.events if event.fired]

    def describe(self):
        lines = ["fault plan (seed=%r):" % (self.seed,)]
        for event in self.events:
            status = "fired" if event.fired else "pending"
            lines.append("  [%s] %s" % (status, event.describe()))
        return "\n".join(lines)
