"""A pure functional reference executor for the MultiTitan ISA.

No timing, no scoreboard, no caches: each instruction's architectural
effects are applied immediately and in program order.  WRL 89/8's claim
(sections 2.3.1-2.3.3) is that the pipelined machine's state is always
*precise* -- every element of a vector instruction passes through the
scalar scoreboard, so the cycle-level machine must be observationally
equal to this sequential semantics.  The differential checker
(:mod:`repro.robustness.differential`) runs the two in lockstep and
reports the first disagreement.

The executor supports two modes:

* **standalone** -- :meth:`ReferenceExecutor.run` follows its own control
  flow from ``pc`` until HALT;
* **follow** -- :meth:`ReferenceExecutor.execute` applies one committed
  instruction handed to it by the machine's commit hook (this is how the
  differential checker tracks interrupt handlers without modelling
  interrupt timing).
"""

from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import SimulationError
from repro.core.types import UNARY_OPS, execute_op, result_overflowed
from repro.cpu import isa


class ReferenceExecutor:
    """Sequential, untimed interpreter over decoded instruction tuples."""

    def __init__(self, instructions, iregs=None, fregs=None,
                 memory_words=None, pc=0):
        self.instructions = instructions
        self.pc = pc
        self.epc = None
        self.halted = False
        self.steps = 0
        self.iregs = list(iregs) if iregs is not None \
            else [0] * isa.NUM_INT_REGISTERS
        self.fregs = list(fregs) if fregs is not None \
            else [0.0] * NUM_REGISTERS
        self.memory = list(memory_words) if memory_words is not None else []
        self.psw_overflow = False
        self.psw_overflow_dest = None
        self.psw_overflow_element = None

    @classmethod
    def from_machine(cls, machine):
        """Start from a machine's current architectural state (after any
        setup hook has populated registers and memory)."""
        executor = cls(
            machine.program.instructions,
            iregs=machine.iregs,
            fregs=machine.fpu.regs.values,
            memory_words=machine.memory.words,
            pc=machine.pc,
        )
        executor.epc = machine.epc
        executor.halted = machine.halted
        return executor

    # ------------------------------------------------------------------

    def _mem_index(self, address):
        if address % 8:
            raise SimulationError(
                "reference executor: unaligned access at %d" % address)
        index = address >> 3
        if index >= len(self.memory):
            self.memory.extend([0.0] * (index + 1 - len(self.memory)))
        return index

    def execute(self, instruction, pc=None):
        """Apply one instruction; return its architectural effects.

        The result is a dict with ``freg_writes``, ``ireg_writes``,
        ``mem_writes`` (lists of ``(target, value)``) and ``next_pc``.
        ``freg_writes`` lists vector elements in issue order, truncated
        at the first overflowing element exactly like the hardware abort.
        """
        follow = pc is not None
        if follow:
            self.pc = pc
        opcode = instruction[0]
        iregs = self.iregs
        fregs = self.fregs
        freg_writes = []
        ireg_writes = []
        mem_writes = []
        next_pc = self.pc + 1

        if opcode == isa.FALU:
            op, rr, ra, rb, remaining, sra, srb, unary = instruction[1:]
            vl = remaining
            while remaining:
                a = fregs[ra]
                b = fregs[rb] if not unary else None
                result = execute_op(op, a, b)
                fregs[rr] = result
                freg_writes.append((rr, result))
                if result_overflowed(op, a, b, result):
                    if not self.psw_overflow:
                        self.psw_overflow = True
                        self.psw_overflow_dest = rr
                        self.psw_overflow_element = vl - remaining
                    break
                remaining -= 1
                rr += 1
                if sra:
                    ra += 1
                if srb:
                    rb += 1

        elif opcode == isa.FLOAD:
            fd, ra, offset = instruction[1], instruction[2], instruction[3]
            value = self.memory[self._mem_index(iregs[ra] + offset)]
            fregs[fd] = value
            freg_writes.append((fd, value))

        elif opcode == isa.FSTORE:
            fs, ra, offset = instruction[1], instruction[2], instruction[3]
            index = self._mem_index(iregs[ra] + offset)
            self.memory[index] = fregs[fs]
            mem_writes.append((index, fregs[fs]))

        elif opcode == isa.ADDI:
            rd, ra, imm = instruction[1], instruction[2], instruction[3]
            if rd:
                iregs[rd] = iregs[ra] + imm
                ireg_writes.append((rd, iregs[rd]))

        elif opcode in (isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR):
            rd, ra, rb = instruction[1], instruction[2], instruction[3]
            a, b = iregs[ra], iregs[rb]
            if opcode == isa.ADD:
                value = a + b
            elif opcode == isa.SUB:
                value = a - b
            elif opcode == isa.MUL:
                value = a * b
            elif opcode == isa.AND:
                value = a & b
            elif opcode == isa.OR:
                value = a | b
            else:
                value = a ^ b
            if rd:
                iregs[rd] = value
                ireg_writes.append((rd, value))

        elif opcode in (isa.LI, isa.MULI, isa.SLL, isa.SRA):
            if opcode == isa.LI:
                rd, value = instruction[1], instruction[2]
            else:
                rd, ra, imm = instruction[1], instruction[2], instruction[3]
                if opcode == isa.MULI:
                    value = iregs[ra] * imm
                elif opcode == isa.SLL:
                    value = iregs[ra] << imm
                else:
                    value = iregs[ra] >> imm
            if rd:
                iregs[rd] = value
                ireg_writes.append((rd, value))

        elif opcode == isa.LW:
            rd, ra, offset = instruction[1], instruction[2], instruction[3]
            value = self.memory[self._mem_index(iregs[ra] + offset)]
            if rd:
                iregs[rd] = int(value)
                ireg_writes.append((rd, iregs[rd]))

        elif opcode == isa.SW:
            rs, ra, offset = instruction[1], instruction[2], instruction[3]
            index = self._mem_index(iregs[ra] + offset)
            self.memory[index] = iregs[rs]
            mem_writes.append((index, iregs[rs]))

        elif opcode in isa.BRANCH_OPS:
            ra, rb, target = instruction[1], instruction[2], instruction[3]
            if isa.branch_taken(opcode, iregs[ra], iregs[rb]):
                next_pc = target

        elif opcode == isa.J:
            next_pc = instruction[1]

        elif opcode == isa.FCMP:
            rd, fa, fb, cond = (instruction[1], instruction[2],
                                instruction[3], instruction[4])
            a, b = fregs[fa], fregs[fb]
            if cond == isa.CMP_EQ:
                flag = a == b
            elif cond == isa.CMP_LT:
                flag = a < b
            else:
                flag = a <= b
            if rd:
                iregs[rd] = 1 if flag else 0
                ireg_writes.append((rd, iregs[rd]))

        elif opcode == isa.NOP:
            pass

        elif opcode == isa.RFE:
            if self.epc is not None:
                next_pc = self.epc
                self.epc = None
            elif follow:
                # The machine dispatched the interrupt; the reference only
                # sees the committed stream.  Resync control flow at the
                # next commit.
                next_pc = None
            else:
                raise SimulationError(
                    "reference executor: rfe outside an interrupt handler")

        elif opcode == isa.HALT:
            self.halted = True
            next_pc = self.pc

        else:
            raise SimulationError(
                "reference executor: unknown opcode %d" % opcode)

        self.pc = next_pc
        self.steps += 1
        return {
            "freg_writes": freg_writes,
            "ireg_writes": ireg_writes,
            "mem_writes": mem_writes,
            "next_pc": next_pc,
        }

    # ------------------------------------------------------------------

    def step(self):
        """Standalone mode: execute the instruction at the current pc."""
        if self.halted:
            raise SimulationError("reference executor already halted")
        if self.pc >= len(self.instructions):
            raise SimulationError(
                "reference executor: PC %d ran off the end" % self.pc)
        return self.execute(self.instructions[self.pc])

    def run(self, max_steps=10_000_000):
        """Standalone mode: run from the current pc until HALT."""
        while not self.halted:
            if self.steps >= max_steps:
                raise SimulationError(
                    "reference executor exceeded %d steps" % max_steps)
            self.step()
        return self
