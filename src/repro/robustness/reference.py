"""A pure functional reference executor for the MultiTitan ISA.

No timing, no scoreboard, no caches: each instruction's architectural
effects are applied immediately and in program order.  WRL 89/8's claim
(sections 2.3.1-2.3.3) is that the pipelined machine's state is always
*precise* -- every element of a vector instruction passes through the
scalar scoreboard, so the cycle-level machine must be observationally
equal to this sequential semantics.  The differential checker
(:mod:`repro.robustness.differential`) runs the two in lockstep and
reports the first disagreement.

The executor interprets the same **predecoded** dispatch entries as the
cycle-accurate execution core, through a per-kind handler table; the
per-opcode tables themselves (integer ops, branch and FCMP conditions,
FPU element arithmetic) come from :mod:`repro.core.semantics`.  That
module is the single source of truth for architectural behaviour -- the
only thing defined here is the untimed *application order* of effects.

The executor supports two modes:

* **standalone** -- :meth:`ReferenceExecutor.run` follows its own control
  flow from ``pc`` until HALT;
* **follow** -- :meth:`ReferenceExecutor.execute` applies one committed
  instruction handed to it by the machine's commit events (this is how
  the differential checker tracks interrupt handlers without modelling
  interrupt timing).
"""

from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import SimulationError
from repro.core.semantics import (
    K_BRANCH,
    K_FALU,
    K_FCMP,
    K_FLOAD,
    K_FSTORE,
    K_HALT,
    K_INT_BINOP,
    K_INT_IMM,
    K_J,
    K_LI,
    K_LW,
    K_NOP,
    K_RFE,
    K_SW,
    decode_one,
    execute_op,
    predecode,
    result_overflowed,
)
from repro.cpu import isa

#: Handler result meaning "control continues at pc + 1".  A sentinel is
#: needed because ``None`` is a legitimate next_pc (follow-mode ``rfe``
#: asks the checker to resync at the next commit).
_SEQUENTIAL = object()


class ReferenceExecutor:
    """Sequential, untimed interpreter over predecoded dispatch entries."""

    def __init__(self, instructions, iregs=None, fregs=None,
                 memory_words=None, pc=0, decoded=None):
        self.instructions = instructions
        self.pc = pc
        self.epc = None
        self.halted = False
        self.steps = 0
        self.iregs = list(iregs) if iregs is not None \
            else [0] * isa.NUM_INT_REGISTERS
        self.fregs = list(fregs) if fregs is not None \
            else [0.0] * NUM_REGISTERS
        self.memory = list(memory_words) if memory_words is not None else []
        self.psw_overflow = False
        self.psw_overflow_dest = None
        self.psw_overflow_element = None
        self._decoded = decoded if decoded is not None \
            else predecode(instructions)
        self._dispatch = {
            K_FALU: self._exec_falu,
            K_FLOAD: self._exec_fload,
            K_FSTORE: self._exec_fstore,
            K_INT_IMM: self._exec_int_imm,
            K_INT_BINOP: self._exec_int_binop,
            K_LI: self._exec_li,
            K_LW: self._exec_lw,
            K_SW: self._exec_sw,
            K_BRANCH: self._exec_branch,
            K_J: self._exec_j,
            K_FCMP: self._exec_fcmp,
            K_NOP: self._exec_nop,
            K_RFE: self._exec_rfe,
            K_HALT: self._exec_halt,
        }

    @classmethod
    def from_machine(cls, machine):
        """Start from a machine's current architectural state (after any
        setup hook has populated registers and memory); the predecoded
        program is shared with the machine."""
        executor = cls(
            machine.program.instructions,
            iregs=machine.iregs,
            fregs=machine.fpu.regs.values,
            memory_words=machine.memory.words,
            pc=machine.pc,
            decoded=machine.decoded,
        )
        executor.epc = machine.epc
        executor.halted = machine.halted
        return executor

    # ------------------------------------------------------------------

    def _mem_index(self, address):
        if address % 8:
            raise SimulationError(
                "reference executor: unaligned access at %d" % address)
        index = address >> 3
        if index >= len(self.memory):
            self.memory.extend([0.0] * (index + 1 - len(self.memory)))
        return index

    def execute(self, instruction, pc=None):
        """Apply one instruction; return its architectural effects.

        The result is a dict with ``freg_writes``, ``ireg_writes``,
        ``mem_writes`` (lists of ``(target, value)``) and ``next_pc``.
        ``freg_writes`` lists vector elements in issue order, truncated
        at the first overflowing element exactly like the hardware abort.
        """
        follow = pc is not None
        if follow:
            self.pc = pc
        index = self.pc
        # The common case hands us the program's own instruction object,
        # whose dispatch entry was predecoded once at construction;
        # anything else (synthetic instructions in tests, mid-stream
        # patches) decodes on the fly.
        if (isinstance(index, int) and 0 <= index < len(self.instructions)
                and self.instructions[index] is instruction):
            entry = self._decoded[index]
        else:
            entry = decode_one(instruction)
        effects = {
            "freg_writes": [],
            "ireg_writes": [],
            "mem_writes": [],
            "next_pc": self.pc + 1,
        }
        handler = self._dispatch.get(entry[0])
        if handler is None:
            raise SimulationError(
                "reference executor: unknown opcode %d" % entry[1])
        next_pc = handler(entry, effects, follow)
        if next_pc is not _SEQUENTIAL:
            effects["next_pc"] = next_pc
        self.pc = effects["next_pc"]
        self.steps += 1
        return effects

    # -- per-kind handlers (architectural effects only) -----------------

    def _exec_falu(self, entry, effects, follow):
        _, op, rr, ra, rb, vl, sra, srb, unary, _instruction = entry
        fregs = self.fregs
        writes = effects["freg_writes"]
        remaining = vl
        while remaining:
            a = fregs[ra]
            b = fregs[rb] if not unary else None
            result = execute_op(op, a, b)
            fregs[rr] = result
            writes.append((rr, result))
            if result_overflowed(op, a, b, result):
                if not self.psw_overflow:
                    self.psw_overflow = True
                    self.psw_overflow_dest = rr
                    self.psw_overflow_element = vl - remaining
                break
            remaining -= 1
            rr += 1
            if sra:
                ra += 1
            if srb:
                rb += 1
        return _SEQUENTIAL

    def _exec_fload(self, entry, effects, follow):
        _, fd, ra, offset = entry
        value = self.memory[self._mem_index(self.iregs[ra] + offset)]
        self.fregs[fd] = value
        effects["freg_writes"].append((fd, value))
        return _SEQUENTIAL

    def _exec_fstore(self, entry, effects, follow):
        _, fs, ra, offset = entry
        index = self._mem_index(self.iregs[ra] + offset)
        value = self.fregs[fs]
        self.memory[index] = value
        effects["mem_writes"].append((index, value))
        return _SEQUENTIAL

    def _exec_int_imm(self, entry, effects, follow):
        _, rd, ra, imm, op_fn = entry
        if rd:
            iregs = self.iregs
            iregs[rd] = op_fn(iregs[ra], imm)
            effects["ireg_writes"].append((rd, iregs[rd]))
        return _SEQUENTIAL

    def _exec_int_binop(self, entry, effects, follow):
        _, rd, ra, rb, op_fn = entry
        if rd:
            iregs = self.iregs
            iregs[rd] = op_fn(iregs[ra], iregs[rb])
            effects["ireg_writes"].append((rd, iregs[rd]))
        return _SEQUENTIAL

    def _exec_li(self, entry, effects, follow):
        _, rd, imm = entry
        if rd:
            self.iregs[rd] = imm
            effects["ireg_writes"].append((rd, imm))
        return _SEQUENTIAL

    def _exec_lw(self, entry, effects, follow):
        _, rd, ra, offset = entry
        value = self.memory[self._mem_index(self.iregs[ra] + offset)]
        if rd:
            self.iregs[rd] = int(value)
            effects["ireg_writes"].append((rd, self.iregs[rd]))
        return _SEQUENTIAL

    def _exec_sw(self, entry, effects, follow):
        _, rs, ra, offset = entry
        index = self._mem_index(self.iregs[ra] + offset)
        value = self.iregs[rs]
        self.memory[index] = value
        effects["mem_writes"].append((index, value))
        return _SEQUENTIAL

    def _exec_branch(self, entry, effects, follow):
        _, ra, rb, target, test, _opcode = entry
        if test(self.iregs[ra], self.iregs[rb]):
            return target
        return _SEQUENTIAL

    def _exec_j(self, entry, effects, follow):
        return entry[1]

    def _exec_fcmp(self, entry, effects, follow):
        _, rd, fa, fb, test = entry
        if rd:
            self.iregs[rd] = 1 if test(self.fregs[fa], self.fregs[fb]) else 0
            effects["ireg_writes"].append((rd, self.iregs[rd]))
        return _SEQUENTIAL

    def _exec_nop(self, entry, effects, follow):
        return _SEQUENTIAL

    def _exec_rfe(self, entry, effects, follow):
        if self.epc is not None:
            next_pc = self.epc
            self.epc = None
            return next_pc
        if follow:
            # The machine dispatched the interrupt; the reference only
            # sees the committed stream.  Resync control flow at the
            # next commit.
            return None
        raise SimulationError(
            "reference executor: rfe outside an interrupt handler")

    def _exec_halt(self, entry, effects, follow):
        self.halted = True
        return self.pc

    # ------------------------------------------------------------------

    def step(self):
        """Standalone mode: execute the instruction at the current pc."""
        if self.halted:
            raise SimulationError("reference executor already halted")
        if self.pc >= len(self.instructions):
            raise SimulationError(
                "reference executor: PC %d ran off the end" % self.pc)
        return self.execute(self.instructions[self.pc])

    def run(self, max_steps=10_000_000):
        """Standalone mode: run from the current pc until HALT."""
        while not self.halted:
            if self.steps >= max_steps:
                raise SimulationError(
                    "reference executor exceeded %d steps" % max_steps)
            self.step()
        return self
