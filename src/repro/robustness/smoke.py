"""Seeded fault-injection smoke campaign.

Usage::

    PYTHONPATH=src python -m repro.robustness.smoke --seeds 30 --seed 1989

Each seed builds a fresh copy of a small deterministic vector workload,
injects one randomly placed fault (seed-derived, reproducible), and runs
it under the full detection stack: per-cycle invariant audits, the
lockstep differential checker, and a final bit-exact state check.  Every
run is classified:

* **detected** -- a :class:`~repro.core.exceptions.SimulationError`
  (divergence, invariant violation, or machine hazard) named the fault;
* **masked** -- no error and the final architectural state is bit-exact
  against the fault-free baseline (timing-only faults such as stalls and
  cache-tag corruption land here, as do flips of dead state);
* **silent** -- the state differs from the baseline and nothing noticed.

Silent corruption is the only failure: the campaign exits non-zero and
prints the exact command that reproduces the offending seed.
"""

import sys

from repro.core.backend import create_machine
from repro.core.exceptions import SimulationError
from repro.cpu.machine import MachineConfig, MultiTitan  # noqa: F401  (re-exported)
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory
from repro.robustness.differential import DifferentialChecker, bit_exact
from repro.robustness.faults import FaultPlan
from repro.robustness.watchdog import watchdog_budget

VL = 16
A_BASE = 0          # words 0..15
B_BASE = 128        # words 16..31
C_BASE = 256        # words 32..47
SUM_BASE = 512      # word 64
MEMORY_WORDS = 66   # fault-injection address range (covers all data)


def build_workload():
    """A small, fully deterministic vector + scalar workload.

    Loads two 16-element arrays, multiplies and adds them element-wise
    with VL=16 FPU instructions, stores the result, then accumulates an
    integer checksum over the stored words.  Exercises FPU loads/stores,
    vector ALU sequencing, the scoreboard, and the integer data path --
    every architectural structure the fault injector can touch.
    """
    builder = ProgramBuilder()
    builder.li(1, A_BASE)
    builder.li(2, B_BASE)
    builder.li(3, C_BASE)
    for i in range(VL):
        builder.fload(i, 1, 8 * i)
    for i in range(VL):
        builder.fload(VL + i, 2, 8 * i)
    builder.fmul(2 * VL, 0, VL, vl=VL)        # C[i] = A[i] * B[i]
    builder.fadd(0, 2 * VL, VL, vl=VL)        # A'[i] = C[i] + B[i]
    for i in range(VL):
        builder.fstore(2 * VL + i, 3, 8 * i)
    builder.li(4, 0)                          # k
    builder.li(5, VL)                         # n
    builder.li(6, 0)                          # checksum
    builder.li(7, C_BASE)
    top, close = builder.counted_loop(4, 5)
    builder.lw(8, 7, 0)
    builder.add(6, 6, 8)
    builder.addi(7, 7, 8)
    builder.addi(4, 4, 1)
    close()
    builder.sw(6, 0, SUM_BASE)
    return builder.build()


def build_memory():
    memory = Memory(size_bytes=8192)
    for i in range(VL):
        # Exact binary fractions: products and sums stay exact, so the
        # baseline is bit-reproducible across platforms.
        memory.write(A_BASE + 8 * i, 1.5 + 0.25 * i)
        memory.write(B_BASE + 8 * i, 0.75 + 0.125 * i)
    return memory


def make_machine(audit=False, backend=None):
    config = MachineConfig(audit_invariants=True) if audit else None
    return create_machine(backend, build_workload(), memory=build_memory(),
                          config=config)


def architectural_state(machine):
    return {
        "fregs": list(machine.fpu.regs.values),
        "iregs": list(machine.iregs),
        "memory": machine.memory.delta_snapshot(),
        "psw": machine.fpu.regs.psw.state_dict(),
    }


def states_equal(a, b):
    """Bit-exact architectural equality (0.0 vs -0.0 and int vs float
    differences count as corruption)."""
    for key in ("fregs", "iregs"):
        if len(a[key]) != len(b[key]):
            return False
        for x, y in zip(a[key], b[key]):
            if not bit_exact(x, y):
                return False
    mem_a, mem_b = a["memory"], b["memory"]
    if mem_a["length"] != mem_b["length"]:
        return False
    if set(mem_a["words"]) != set(mem_b["words"]):
        return False
    for index, word in mem_a["words"].items():
        if not bit_exact(word, mem_b["words"][index]):
            return False
    return a["psw"] == b["psw"]


def run_seed(seed, baseline, baseline_cycles, kinds, faults_per_run,
             max_cycles=None, backend=None):
    """Run one seeded fault campaign; return (verdict, detail, kinds).

    ``max_cycles`` overrides the default watchdog budget (the normalized
    cycle-budget kwarg of :class:`repro.api.RunRequest`).  ``backend``
    must stay in the multititan timing domain -- fault injection drives
    the unified machine's pipeline hooks.
    """
    machine = make_machine(audit=True, backend=backend)
    plan = FaultPlan.random(seed, max_cycle=baseline_cycles,
                            count=faults_per_run, kinds=kinds,
                            memory_words=MEMORY_WORDS)
    machine.fault_plan = plan
    kinds_used = tuple(sorted({event.kind for event in plan.events}))
    checker = DifferentialChecker(machine)
    budget = max_cycles if max_cycles is not None \
        else watchdog_budget(baseline_cycles)
    try:
        machine.run(max_cycles=budget)
        checker.final_check()
    except SimulationError as error:
        return ("detected", "%s: %s" % (type(error).__name__, error),
                kinds_used)
    finally:
        checker.detach()
    if states_equal(architectural_state(machine), baseline):
        return "masked", plan.describe(), kinds_used
    return "silent", plan.describe(), kinds_used


def main(argv=None, backend=None):
    """Deprecated entry point: forwards to ``python -m repro smoke``.

    The campaign now runs through the unified CLI and the orchestrator
    (``repro.api.Session``), which adds ``--jobs``, ``--cache-dir``,
    ``--json`` and ``--backend``.  This shim keeps the historical flag
    surface and return codes while warning once; it forwards an explicit
    ``backend`` so the campaign records which machine it ran on.
    """
    import warnings

    warnings.warn(
        "python -m repro.robustness.smoke is deprecated; use "
        "python -m repro smoke (same flags, plus --jobs/--cache-dir/"
        "--json/--backend)",
        DeprecationWarning, stacklevel=2)
    from repro.tools.cli import main as cli_main

    flags = list(sys.argv[1:] if argv is None else argv)
    # Forward the machine selection explicitly: the legacy surface had
    # no flag for it, and the new CLI must not silently re-default.
    if backend is not None and "--backend" not in flags:
        flags = ["--backend", backend] + flags
    return cli_main(["smoke"] + flags)


if __name__ == "__main__":
    sys.exit(main())
