"""Per-cycle machine invariant audits (``MachineConfig.audit_invariants``).

The MultiTitan's precise-state story rests on bookkeeping that must stay
mutually consistent every cycle: a scoreboard reservation bit is set if
and only if exactly one write to that register is in flight, the in-flight
ALU instruction register describes elements that still fit the register
file, and cache tag stores keep their shape.  ``audit_invariants`` checks
all of it and raises :class:`~repro.core.exceptions.InvariantError` with
the cycle number at the first violation -- this is how injected
scoreboard corruption (see :mod:`repro.robustness.faults`) is *detected*
rather than silently mis-timing the program.
"""

from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import InvariantError


def audit_scoreboard(fpu, cycle):
    """Reservation bits must match pending writebacks one-for-one."""
    pending_registers = []
    for writes in fpu._pending.values():
        for register, _value in writes:
            pending_registers.append(register)
    seen = set()
    for register in pending_registers:
        if register in seen:
            raise InvariantError(
                "cycle %d: two writes in flight to R%d (the second would "
                "be lost)" % (cycle, register))
        seen.add(register)
    bits = fpu.scoreboard.bits
    for register in seen:
        if not bits[register]:
            raise InvariantError(
                "cycle %d: write in flight to R%d but its reservation bit "
                "is clear" % (cycle, register))
    for register, bit in enumerate(bits):
        if bit and register not in seen:
            raise InvariantError(
                "cycle %d: R%d is reserved but no write is in flight"
                % (cycle, register))


def audit_alu_ir(fpu, cycle):
    """The in-flight vector state must describe a legal element range."""
    for label, state in (("alu_ir", fpu.alu_ir),
                         ("aborted_ir", fpu.aborted_ir)):
        if state is None:
            continue
        if not 1 <= state.remaining <= state.vl:
            raise InvariantError(
                "cycle %d: %s remaining=%d outside 1..vl=%d"
                % (cycle, label, state.remaining, state.vl))
        if not (0 <= state.ra < NUM_REGISTERS
                and 0 <= state.rb < NUM_REGISTERS
                and 0 <= state.rr < NUM_REGISTERS):
            raise InvariantError(
                "cycle %d: %s specifiers (Rr=%d Ra=%d Rb=%d) outside the "
                "register file" % (cycle, label, state.rr, state.ra,
                                   state.rb))
        if state.rr + state.remaining > NUM_REGISTERS:
            raise InvariantError(
                "cycle %d: %s destinations R%d..R%d run past R%d"
                % (cycle, label, state.rr, state.rr + state.remaining - 1,
                   NUM_REGISTERS - 1))


def audit_write_ports(fpu, cycle):
    """Structural reservation-RAM constraint (section 2.3.1).

    The reservation bits live in single-ended RAM columns
    (:mod:`repro.core.reservation_ram`): one clear rides the R-port word
    line and one the memory port, so at most two writes -- one ALU
    result, one load -- may retire in any single cycle.  The sequencer
    guarantees this by issuing one element and one load per cycle;
    corrupted pending-write schedules break it.
    """
    for retire_cycle, writes in fpu._pending.items():
        if len(writes) > 2:
            raise InvariantError(
                "cycle %d: %d writes scheduled to retire together in cycle "
                "%d; the reservation RAM can clear at most two bits"
                % (cycle, len(writes), retire_cycle))
        if retire_cycle <= cycle - 1:
            # Bypass/forwarding contract: a result issued in cycle i is
            # bypassed to consumers at i+latency; a write scheduled in
            # the past can never retire and would wedge its register.
            raise InvariantError(
                "cycle %d: pending write to R%d scheduled for already-"
                "elapsed cycle %d" % (cycle, writes[0][0], retire_cycle))


def audit_register_values(fpu, cycle):
    """Register words hold exactly one 64-bit datum: float or int."""
    for register, value in enumerate(fpu.regs.values):
        if type(value) is not float and type(value) is not int:
            raise InvariantError(
                "cycle %d: R%d holds non-architectural value %r"
                % (cycle, register, value))


def audit_units(fpu, cycle):
    """Every issued element went through exactly one functional unit."""
    issued = sum(unit.issue_count for unit in fpu.units.values())
    if issued != fpu.stats.elements_issued:
        raise InvariantError(
            "cycle %d: functional units issued %d elements, sequencer "
            "counted %d" % (cycle, issued, fpu.stats.elements_issued))


def audit_caches(machine, cycle):
    """Tag stores must keep their configured geometry."""
    for cache in (machine.dcache, machine.ibuf, machine.icache):
        if len(cache._tags) != cache.num_lines:
            raise InvariantError(
                "cycle %d: %s cache has %d tag entries for %d lines"
                % (cycle, cache.name, len(cache._tags), cache.num_lines))
        if cache.hits < 0 or cache.misses < 0:
            raise InvariantError(
                "cycle %d: %s cache counters went negative"
                % (cycle, cache.name))


def audit_invariants(machine, cycle):
    """The full per-cycle audit; called by the run loop in strict runs."""
    fpu = machine.fpu
    audit_scoreboard(fpu, cycle)
    audit_write_ports(fpu, cycle)
    audit_alu_ir(fpu, cycle)
    audit_register_values(fpu, cycle)
    audit_units(fpu, cycle)
    audit_caches(machine, cycle)
    return True
