"""Differential self-checking: cycle-level machine vs functional reference.

A :class:`DifferentialChecker` subscribes to two kinds on the machine's
event bus (``machine.events``, :mod:`repro.core.events`):

* ``commit`` -- after every committed CPU instruction the reference
  executor applies the same instruction functionally and the checker
  compares integer-register and memory effects immediately (they commit
  in the same cycle on the machine);
* ``retire`` -- FPU results reach the register file ``latency`` cycles
  after issue, so each writeback is compared against a per-register
  FIFO of values the reference predicted at commit time.

The first disagreement raises :class:`~repro.core.exceptions.
DivergenceError` naming the diverging register, the cycle, and the
instruction -- a single-bit fault injected into a register is caught at
the first retirement that consumes it.  Comparisons are bit-exact
(``struct`` encoding), so even sign-of-zero or NaN-payload corruption is
caught.  Control flow is verified by pc continuity; interrupt dispatch
and ``rfe`` resync it (the reference follows the committed stream, so
handlers are checked too).
"""

import struct
from collections import deque

from repro.core.exceptions import DivergenceError
from repro.robustness.reference import ReferenceExecutor


def bit_exact(a, b):
    """Bit-exact equality: types must match; floats compare by encoding
    (distinguishes 0.0 from -0.0 and NaN payloads)."""
    if type(a) is not type(b):
        return False
    if type(a) is float:
        return struct.pack("<d", a) == struct.pack("<d", b)
    return a == b


class DifferentialChecker:
    """Lockstep self-checker; attach to a machine *after* its registers
    and memory have been initialised (the reference starts from a copy)."""

    def __init__(self, machine, check_control_flow=True):
        self.machine = machine
        self.reference = ReferenceExecutor.from_machine(machine)
        self.check_control_flow = check_control_flow
        self.commits = 0
        self.retirements = 0
        self._expected_writes = {}   # register -> deque of expected values
        self._expected_pc = machine.pc
        self._last_epc = machine.epc
        machine.events.subscribe("commit", self._on_commit)
        machine.events.subscribe("retire", self._on_retire)

    def detach(self):
        self.machine.events.unsubscribe("commit", self._on_commit)
        self.machine.events.unsubscribe("retire", self._on_retire)

    # ------------------------------------------------------------------

    def _diverge(self, message, **context):
        raise DivergenceError("divergence: " + message, **context)

    def _on_commit(self, event):
        machine = self.machine
        _, cycle, pc, instruction = event
        if self.check_control_flow and self._expected_pc is not None \
                and pc != self._expected_pc:
            # An interrupt dispatch legitimately redirects the committed
            # stream; it is visible as epc switching from None to a saved
            # pc since the previous commit.
            dispatched = machine.epc is not None and self._last_epc is None
            if not dispatched:
                self._diverge(
                    "control flow reached pc %d, reference expected %d"
                    % (pc, self._expected_pc),
                    cycle=cycle, pc=pc, instruction=instruction)
        self._last_epc = machine.epc

        effects = self.reference.execute(instruction, pc=pc)
        self.commits += 1
        self._expected_pc = effects["next_pc"]

        for register, value in effects["ireg_writes"]:
            actual = machine.iregs[register]
            if not bit_exact(actual, value):
                self._diverge(
                    "integer register r%d = %r, reference computed %r"
                    % (register, actual, value),
                    register=register, cycle=cycle, pc=pc,
                    instruction=instruction, expected=value, actual=actual)
        for index, value in effects["mem_writes"]:
            actual = machine.memory.words[index]
            if not bit_exact(actual, value):
                self._diverge(
                    "memory word %d (address %d) = %r, reference wrote %r"
                    % (index, index * 8, actual, value),
                    cycle=cycle, pc=pc, instruction=instruction,
                    expected=value, actual=actual)
        for register, value in effects["freg_writes"]:
            self._expected_writes.setdefault(register, deque()).append(value)

    def _on_retire(self, event):
        _, cycle, ready = event
        for register, value in ready:
            queue = self._expected_writes.get(register)
            if not queue:
                self._diverge(
                    "unexpected FPU writeback to R%d (value %r)"
                    % (register, value),
                    register=register, cycle=cycle, actual=value)
            expected = queue.popleft()
            self.retirements += 1
            if not bit_exact(value, expected):
                self._diverge(
                    "FPU register R%d retired %r, reference computed %r"
                    % (register, value, expected),
                    register=register, cycle=cycle, expected=expected,
                    actual=value)

    # ------------------------------------------------------------------

    def final_check(self):
        """After the run drains: no expected writes may be outstanding and
        the complete architectural state must agree."""
        machine = self.machine
        reference = self.reference
        for register, queue in self._expected_writes.items():
            if queue:
                self._diverge(
                    "%d expected write(s) to R%d never retired"
                    % (len(queue), register), register=register)
        for register, value in enumerate(machine.fpu.regs.values):
            if not bit_exact(value, reference.fregs[register]):
                self._diverge(
                    "final FPU register R%d = %r, reference %r"
                    % (register, value, reference.fregs[register]),
                    register=register, expected=reference.fregs[register],
                    actual=value)
        for register, value in enumerate(machine.iregs):
            if not bit_exact(value, reference.iregs[register]):
                self._diverge(
                    "final integer register r%d = %r, reference %r"
                    % (register, value, reference.iregs[register]),
                    register=register, expected=reference.iregs[register],
                    actual=value)
        machine_words = machine.memory.words
        for index, value in enumerate(reference.memory):
            actual = machine_words[index] if index < len(machine_words) else 0.0
            if not bit_exact(actual, value):
                self._diverge(
                    "final memory word %d (address %d) = %r, reference %r"
                    % (index, index * 8, actual, value),
                    expected=value, actual=actual)
        psw = machine.fpu.regs.psw
        if (psw.overflow, psw.overflow_dest) != (
                reference.psw_overflow, reference.psw_overflow_dest):
            self._diverge(
                "PSW overflow state (%r, R%r) differs from reference "
                "(%r, R%r)" % (psw.overflow, psw.overflow_dest,
                               reference.psw_overflow,
                               reference.psw_overflow_dest))
        return True


def run_differential(program, memory=None, config=None, setup=None,
                     max_cycles=None, check_control_flow=True):
    """Build a machine, attach a checker, run, and verify the final state.

    Returns ``(run_result, checker)``; raises :class:`DivergenceError` at
    the first disagreement.  ``setup`` (as in the workload kernels)
    populates registers before the reference copies its starting state.
    """
    from repro.cpu.machine import MultiTitan
    machine = MultiTitan(program, memory=memory, config=config)
    if setup:
        setup(machine)
    checker = DifferentialChecker(machine,
                                  check_control_flow=check_control_flow)
    try:
        result = machine.run(max_cycles=max_cycles)
        checker.final_check()
    finally:
        checker.detach()
    return result, checker


def check_kernel(kernel, config=None):
    """Differential-check one :class:`~repro.workloads.common.BuiltKernel`.

    Runs the kernel cold under the checker, restores the memory image
    afterwards (kernels are reusable), and returns the checker.
    """
    snapshot = list(kernel.memory.words)
    try:
        _, checker = run_differential(
            kernel.program, memory=kernel.memory, config=config,
            setup=kernel.setup)
    finally:
        kernel.memory.words[:] = snapshot
    return checker
