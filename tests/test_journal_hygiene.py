"""Journal damage reporting, the hygiene layer (list/prune), and the
torn-write resume sweep.

The load contract under test: a torn *final* line is the expected
crash artifact and drops silently, but corrupt terminated lines and
stale/mismatched lines are counted in ``load_report`` and surfaced as
warnings -- damaged journals must never quietly re-execute work the
operator believed was recorded.  The sweep truncates a real campaign
journal at every byte offset and proves the resume completes with
byte-identical BENCH output from any of them.
"""

import os

from repro.api import RunRequest
from repro.journal import (CampaignJournal, describe_journal, list_journals,
                           prune_journals)
from repro.orchestrate import dump_bench_json, run_campaign
from repro.tools.cli import main as cli_main

SMALL = [
    RunRequest("fib", {"count": 8}),
    RunRequest("reduction", {"strategy": "scalar_tree"}),
    RunRequest("fib", {"count": 9}),
]
FAST = dict(retry_base=0.01, seed=0)


def _serialized():
    return [request.to_dict() for request in SMALL]


def _written(tmp_path, entries=2):
    journal = CampaignJournal(tmp_path, _serialized())
    journal.start_fresh()
    for index in range(entries):
        journal.record(index, {"metrics": {"cycles": index}}, {})
    journal.close()
    return journal


def _lines(path):
    with open(path, "rb") as handle:
        return handle.read().split(b"\n")


class TestLoadReport:
    def test_clean_load_reports_nothing(self, tmp_path):
        _written(tmp_path)
        journal = CampaignJournal(tmp_path, _serialized())
        assert len(journal.load()) == 2
        report = journal.load_report
        assert not report.damaged
        assert not report.torn_tail
        assert report.warnings() == []
        assert report.restored == 2

    def test_torn_tail_is_silent_but_flagged(self, tmp_path):
        journal = _written(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b'{"index": 2, "task": "')  # crash mid-append
        fresh = CampaignJournal(tmp_path, _serialized())
        assert set(fresh.load()) == {0, 1}
        report = fresh.load_report
        assert report.torn_tail
        assert report.torn_offset is not None
        assert not report.damaged          # expected crash artifact...
        assert report.warnings() == []     # ...so no warning either

    def test_corrupt_terminated_line_is_counted_and_warned(self, tmp_path):
        journal = _written(tmp_path)
        lines = _lines(journal.path)
        lines[1] = b"### not json ###"     # entry 0, newline kept
        with open(journal.path, "wb") as handle:
            handle.write(b"\n".join(lines))
        fresh = CampaignJournal(tmp_path, _serialized())
        assert set(fresh.load()) == {1}
        report = fresh.load_report
        assert report.corrupt_lines == 1
        assert report.damaged
        assert any("corrupt" in line for line in report.warnings())

    def test_stale_mismatched_line_is_counted_and_warned(self, tmp_path):
        journal = _written(tmp_path)
        lines = _lines(journal.path)
        lines[1] = lines[1].replace(
            journal.task_digests[0].encode("utf-8"), b"0" * 64)
        with open(journal.path, "wb") as handle:
            handle.write(b"\n".join(lines))
        fresh = CampaignJournal(tmp_path, _serialized())
        assert set(fresh.load()) == {1}
        report = fresh.load_report
        assert report.skipped_lines == 1
        assert report.damaged
        assert any("skipped" in line for line in report.warnings())

    def test_mid_file_damage_and_torn_tail_together(self, tmp_path):
        journal = _written(tmp_path)
        lines = _lines(journal.path)
        lines[1] = b"garbage"
        with open(journal.path, "wb") as handle:
            handle.write(b"\n".join(lines))
            handle.write(b'{"torn')
        fresh = CampaignJournal(tmp_path, _serialized())
        assert set(fresh.load()) == {1}
        report = fresh.load_report
        assert report.corrupt_lines == 1
        assert report.torn_tail

    def test_header_mismatch_invalidates_with_warning(self, tmp_path):
        _written(tmp_path)
        edited = _serialized()
        edited.append(RunRequest("fib", {"count": 11}).to_dict())
        # The edited campaign has a different digest, hence a different
        # journal path; point it at the stale file to load it.
        journal = CampaignJournal(tmp_path, edited)
        journal.path = CampaignJournal(tmp_path, _serialized()).path
        assert journal.load() == {}
        report = journal.load_report
        assert report.invalidated
        assert any("invalidated" in line for line in report.warnings())

    def test_repair_torn_tail_truncates_before_append(self, tmp_path):
        journal = _written(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b'{"index": 2, "task": "')
        fresh = CampaignJournal(tmp_path, _serialized())
        fresh.load()
        assert fresh.repair_torn_tail()
        fresh.record(2, {"metrics": {"cycles": 2}}, {})
        fresh.close()
        again = CampaignJournal(tmp_path, _serialized())
        assert set(again.load()) == {0, 1, 2}
        assert not again.load_report.damaged  # no fused corrupt line

    def test_repair_without_tear_is_a_noop(self, tmp_path):
        _written(tmp_path)
        journal = CampaignJournal(tmp_path, _serialized())
        journal.load()
        assert not journal.repair_torn_tail()


class TestHygiene:
    def test_describe_partial_and_complete(self, tmp_path):
        journal = _written(tmp_path, entries=2)
        info = describe_journal(journal.path)
        assert info["valid"]
        assert info["campaign"] == journal.campaign
        assert info["count"] == 3
        assert info["entries"] == 2
        assert not info["complete"]
        with open(journal.path, "ab") as handle:
            handle.write(b"")
        full = _written(tmp_path, entries=3)
        assert describe_journal(full.path)["complete"]

    def test_describe_damaged_header(self, tmp_path):
        path = tmp_path / "journal-deadbeef.jsonl"
        path.write_bytes(b"not a header\n")
        info = describe_journal(str(path))
        assert not info["valid"]
        assert not info["complete"]

    def test_list_journals_ignores_other_files(self, tmp_path):
        _written(tmp_path)
        (tmp_path / "notes.txt").write_text("not a journal")
        (tmp_path / "journal-bad.log").write_text("wrong suffix")
        journals = list_journals(tmp_path)
        assert len(journals) == 1

    def test_list_journals_missing_directory_is_empty(self, tmp_path):
        assert list_journals(tmp_path / "nope") == []

    def test_prune_keeps_partial_journals_by_default(self, tmp_path):
        partial = _written(tmp_path, entries=1)
        removed = prune_journals(tmp_path)
        assert removed == []
        _written(tmp_path, entries=3)  # same campaign, now complete
        removed = prune_journals(tmp_path)
        assert len(removed) == 1
        assert not os.path.exists(partial.path)

    def test_prune_all_abandons_partial_resume_state(self, tmp_path):
        journal = _written(tmp_path, entries=1)
        removed = prune_journals(tmp_path, completed_only=False)
        assert len(removed) == 1
        assert not os.path.exists(journal.path)

    def test_prune_older_than_uses_mtime(self, tmp_path):
        journal = _written(tmp_path, entries=3)
        mtime = os.stat(journal.path).st_mtime
        assert prune_journals(tmp_path, older_than=3600,
                              now=mtime + 10) == []
        removed = prune_journals(tmp_path, older_than=3600,
                                 now=mtime + 7200)
        assert len(removed) == 1

    def test_prune_uses_injected_clock(self, tmp_path):
        """A frozen ``clock`` stands in for ``now``: the age cutoff is
        exact and repeatable, never a race against wall time."""
        journal = _written(tmp_path, entries=3)
        mtime = os.stat(journal.path).st_mtime
        assert prune_journals(tmp_path, older_than=3600,
                              clock=lambda: mtime + 10) == []
        removed = prune_journals(tmp_path, older_than=3600,
                                 clock=lambda: mtime + 7200)
        assert len(removed) == 1

    def test_list_and_prune_stable_under_frozen_clock(self, tmp_path):
        """Hygiene output is a pure function of the files on disk and
        the (frozen) clock: repeated list/prune calls byte-agree."""
        _written(tmp_path, entries=1)
        frozen = os.stat(list_journals(tmp_path)[0]["path"]).st_mtime + 50
        first = list_journals(tmp_path)
        second = list_journals(tmp_path)
        assert first == second
        # Too-young journals survive a dry prune identically every time.
        for _ in range(2):
            assert prune_journals(tmp_path, completed_only=False,
                                  older_than=3600,
                                  clock=lambda: frozen) == []
        assert list_journals(tmp_path) == first

    def test_cli_journal_list_and_prune(self, tmp_path, capsys):
        _written(tmp_path, entries=3)
        assert cli_main(["journal", "list",
                         "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert cli_main(["journal", "prune",
                         "--journal-dir", str(tmp_path)]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert list_journals(tmp_path) == []


class TestTornWriteResumeSweep:
    def test_resume_completes_from_every_truncation_offset(self, tmp_path):
        """Satellite invariant: chop the journal at EVERY byte offset --
        inside the header, mid-record, at a newline -- resume, and the
        campaign must finish with byte-identical BENCH output."""
        requests = list(SMALL)
        cache = str(tmp_path / "cache")   # shared: keeps the sweep fast
        golden_dir = tmp_path / "golden"
        clean = run_campaign(list(requests), jobs=1, cache_dir=cache,
                             journal_dir=golden_dir, **FAST)
        clean_text = dump_bench_json(clean.results, sweep="sweep")
        journal_path = CampaignJournal(golden_dir, _serialized()).path
        with open(journal_path, "rb") as handle:
            data = handle.read()
        assert len(data) > 100

        for offset in range(len(data) + 1):
            workdir = tmp_path / ("cut-%d" % offset)
            workdir.mkdir()
            cut = workdir / os.path.basename(journal_path)
            cut.write_bytes(data[:offset])
            resumed = run_campaign(list(requests), jobs=1, cache_dir=cache,
                                   journal_dir=workdir, resume=True, **FAST)
            text = dump_bench_json(resumed.results, sweep="sweep")
            assert text == clean_text, "divergence at offset %d" % offset

    def test_truncated_resume_repairs_the_journal_file(self, tmp_path):
        """After a torn-tail resume, the journal on disk is whole again:
        loading it back reports no damage and every task present."""
        requests = list(SMALL)
        run_campaign(list(requests), jobs=1, journal_dir=tmp_path, **FAST)
        journal_path = CampaignJournal(tmp_path, _serialized()).path
        with open(journal_path, "rb") as handle:
            data = handle.read()
        with open(journal_path, "wb") as handle:
            handle.write(data[:-20])      # tear the final record
        run_campaign(list(requests), jobs=1, journal_dir=tmp_path,
                     resume=True, **FAST)
        journal = CampaignJournal(tmp_path, _serialized())
        assert set(journal.load()) == {0, 1, 2}
        assert not journal.load_report.damaged
        assert not journal.load_report.torn_tail
