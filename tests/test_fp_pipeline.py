"""Tests for the three-stage pipelined adder and multiplier."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fparith import fp64
from repro.fparith.add import fp_add
from repro.fparith.multiply import fp_mul
from repro.fparith.pipeline import (
    ThreeStagePipeline,
    make_pipelined_adder,
    make_pipelined_multiplier,
)

finite = st.floats(allow_nan=False, allow_infinity=False)


def bits(x):
    return fp64.float_to_bits(x)


def run_single(pipe, a, b):
    """Push one operation through an empty pipe; return its result."""
    assert pipe.clock((bits(a), bits(b))) is None
    assert pipe.clock() is None
    assert pipe.clock() is None
    result = pipe.clock()
    assert result is not None
    return result


class TestPipelineDriver:
    def test_latency_is_three_clocks(self):
        pipe = make_pipelined_adder()
        outputs = [pipe.clock((bits(1.0), bits(2.0))), pipe.clock(),
                   pipe.clock(), pipe.clock()]
        assert outputs[:3] == [None, None, None]
        assert fp64.bits_to_float(outputs[3]) == 3.0

    def test_one_result_per_clock_when_full(self):
        pipe = make_pipelined_multiplier()
        inputs = [(float(i), 2.0) for i in range(1, 8)]
        results = []
        for a, b in inputs:
            out = pipe.clock((bits(a), bits(b)))
            if out is not None:
                results.append(out)
        results.extend(pipe.drain())
        assert [fp64.bits_to_float(r) for r in results] == \
            [2.0 * i for i in range(1, 8)]

    def test_bubbles_pass_through(self):
        pipe = make_pipelined_adder()
        pipe.clock((bits(1.0), bits(1.0)))
        pipe.clock()                          # bubble
        pipe.clock((bits(2.0), bits(2.0)))
        first = pipe.clock()                  # result of 1+1
        assert fp64.bits_to_float(first) == 2.0
        assert pipe.clock() is None           # the bubble
        assert fp64.bits_to_float(pipe.clock()) == 4.0

    def test_in_flight_count(self):
        pipe = make_pipelined_adder()
        assert pipe.in_flight == 0
        pipe.clock((bits(1.0), bits(1.0)))
        assert pipe.in_flight == 1
        pipe.clock((bits(1.0), bits(1.0)))
        assert pipe.in_flight == 2
        pipe.drain()
        assert pipe.in_flight == 0


class TestAdderEquivalence:
    @given(finite, finite)
    @settings(max_examples=400)
    def test_matches_reference_adder(self, a, b):
        got = run_single(make_pipelined_adder(), a, b)
        want = fp_add(bits(a), bits(b))
        assert got == want

    def test_specials_bypass_the_datapath(self):
        pipe = make_pipelined_adder()
        assert fp64.is_nan(run_single(pipe, float("nan"), 1.0))
        assert run_single(make_pipelined_adder(), math.inf, 1.0) == \
            fp64.POS_INF

    def test_cancellation(self):
        assert run_single(make_pipelined_adder(), 1.5, -1.5) == fp64.POS_ZERO

    @given(st.floats(min_value=-1e100, max_value=1e100),
           st.floats(min_value=-1e-100, max_value=1e-100))
    @settings(max_examples=100)
    def test_sticky_heavy_cases(self, a, b):
        got = run_single(make_pipelined_adder(), a, b)
        assert got == fp_add(bits(a), bits(b))


class TestMultiplierEquivalence:
    @given(finite, finite)
    @settings(max_examples=400)
    def test_matches_reference_multiplier(self, a, b):
        got = run_single(make_pipelined_multiplier(), a, b)
        want = fp_mul(bits(a), bits(b))
        assert got == want

    def test_zero_times_infinity(self):
        assert fp64.is_nan(run_single(make_pipelined_multiplier(),
                                      0.0, math.inf))

    def test_subnormal_product(self):
        got = run_single(make_pipelined_multiplier(), 1e-200, 1e-150)
        assert fp64.bits_to_float(got) == 1e-200 * 1e-150


class TestInterleavedStreams:
    def test_mixed_pipelines_run_concurrently(self):
        """Independent add and multiply pipes model the three units
        accepting one operation each per cycle."""
        adder = make_pipelined_adder()
        multiplier = make_pipelined_multiplier()
        add_results = []
        mul_results = []
        for i in range(1, 6):
            out = adder.clock((bits(float(i)), bits(1.0)))
            if out is not None:
                add_results.append(fp64.bits_to_float(out))
            out = multiplier.clock((bits(float(i)), bits(3.0)))
            if out is not None:
                mul_results.append(fp64.bits_to_float(out))
        add_results.extend(fp64.bits_to_float(r) for r in adder.drain())
        mul_results.extend(fp64.bits_to_float(r) for r in multiplier.drain())
        assert add_results == [2.0, 3.0, 4.0, 5.0, 6.0]
        assert mul_results == [3.0, 6.0, 9.0, 12.0, 15.0]
