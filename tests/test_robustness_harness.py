"""The robustness harness: checkpoint/restore round-trips, fault
injection, invariant audits, overflow restart, strict-hazard recovery,
and machine-context error reporting."""

import pytest

from repro.core.exceptions import (
    InvariantError,
    SimulationError,
    VectorHazardError,
)
from repro.cpu import isa
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import Program, ProgramBuilder
from repro.robustness import FaultPlan, audit_invariants, flip_word_bit
from repro.robustness.faults import FaultEvent
from repro.tools import cli


def machine_for(program, memory=None, **overrides):
    config = MachineConfig(model_ibuffer=False, **overrides)
    return MultiTitan(program, memory=memory, config=config)


def recurrence_program():
    """The section 2.3.1 VL=16 chained reduction: element k depends on
    elements k-1 and k-2, so the vector drains over 48 cycles while the
    CPU reaches HALT almost immediately."""
    b = ProgramBuilder()
    b.fadd(2, 1, 0, vl=16)
    b.halt()
    return b.build()


def fibonacci(count):
    values = [1.0, 1.0]
    for _ in range(count):
        values.append(values[-1] + values[-2])
    return values


class TestSnapshotRoundTrip:
    def test_mid_vector_roundtrip_vl16_reduction(self):
        """Acceptance: interrupt a VL=16 reduction mid-flight, snapshot,
        restore into a fresh machine, and complete with identical results
        and cycle counts."""
        program = recurrence_program()

        baseline = machine_for(program)
        baseline.fpu.regs.write(0, 1.0)
        baseline.fpu.regs.write(1, 1.0)
        uninterrupted = baseline.run()
        assert uninterrupted.completion_cycle == 48

        paused = machine_for(program)
        paused.fpu.regs.write(0, 1.0)
        paused.fpu.regs.write(1, 1.0)
        paused.run(stop_cycle=10)
        assert paused.cycle == 10
        snap = paused.snapshot()
        # The snapshot caught the machine genuinely mid-vector.
        assert snap["fpu"]["alu_ir"] is not None
        assert 0 < snap["fpu"]["alu_ir"]["remaining"] < 16
        assert any(snap["fpu"]["scoreboard"]["bits"])
        assert snap["fpu"]["pending"]

        restored = machine_for(program)
        restored.restore(snap)
        # Bit-exact round trip, including in-flight _AluState.
        assert restored.snapshot() == snap

        resumed = paused.run()
        restarted = restored.run()
        expected = fibonacci(16)
        assert paused.fpu.regs.read_group(0, 18) == expected
        assert restored.fpu.regs.read_group(0, 18) == expected
        assert resumed.completion_cycle == 48
        assert restarted.completion_cycle == 48

    def test_roundtrip_with_pending_interrupt_and_handler(self):
        """Snapshot/restore preserves EPC and the pending-interrupt queue:
        a run paused before its interrupt fires still takes the handler."""
        b = ProgramBuilder()
        done = b.label("done")
        b.fadd(2, 1, 0, vl=16)
        b.j(done)
        handler = b.here("handler")
        b.addi(3, 3, 1)
        b.rfe()
        b.place(done)
        b.halt()
        program = b.build()

        def fresh():
            machine = machine_for(program)
            machine.fpu.regs.write(0, 1.0)
            machine.fpu.regs.write(1, 1.0)
            machine.schedule_interrupt(2, handler.index)
            return machine

        baseline = fresh()
        reference_result = baseline.run()

        paused = fresh()
        paused.run(stop_cycle=1)  # before the interrupt delivers
        snap = paused.snapshot()
        assert snap["interrupts"] == [(2, handler.index)]

        restored = machine_for(program)
        restored.restore(snap)
        restored._interrupts = [tuple(e) for e in snap["interrupts"]]
        result = restored.run()

        assert restored.iregs[3] == 1  # handler still executed
        assert restored.fpu.regs.read_group(0, 18) == fibonacci(16)
        assert result.completion_cycle == reference_result.completion_cycle

    def test_restore_rejects_different_program(self):
        program = recurrence_program()
        snap = machine_for(program).snapshot()
        other = ProgramBuilder()
        other.addi(1, 1, 1)
        with pytest.raises(SimulationError, match="different program"):
            machine_for(other.build()).restore(snap)

    def test_restore_rejects_unknown_version(self):
        program = recurrence_program()
        machine = machine_for(program)
        snap = machine.snapshot()
        snap["version"] = 999
        with pytest.raises(SimulationError, match="version"):
            machine.restore(snap)

    def test_restore_preserves_memory_word_types(self):
        """The sparse memory delta keeps int-vs-float identity -- an
        integer zero is captured even though ``0 == 0.0``."""
        b = ProgramBuilder()
        b.li(1, 0)
        b.sw(1, 0, 8)       # memory word 1 becomes integer 0
        b.halt()
        program = b.build()
        machine = machine_for(program)
        machine.run()
        snap = machine.snapshot()
        assert snap["memory"]["words"][1] == 0
        assert type(snap["memory"]["words"][1]) is int
        restored = machine_for(program)
        restored.restore(snap)
        assert type(restored.memory.words[1]) is int


class TestOverflowRestart:
    """Section 2.3.3: the PSW pins the first overflowing element's Rr,
    and the parked instruction-register state restarts from there."""

    def _overflowing_machine(self):
        b = ProgramBuilder()
        b.fmul(16, 0, 8, vl=8)  # both sources strided
        b.halt()
        machine = machine_for(b.build())
        a = [1.0, 2.0, 1e200, 4.0, 5.0, 6.0, 7.0, 8.0]
        bv = [1.0, 1.0, 1e200, 1.0, 1.0, 1.0, 1.0, 1.0]
        machine.fpu.regs.write_group(0, a)
        machine.fpu.regs.write_group(8, bv)
        return machine

    def test_strided_vector_overflow_pins_first_rr(self):
        machine = self._overflowing_machine()
        machine.run()
        psw = machine.fpu.regs.psw
        assert psw.overflow
        assert psw.overflow_dest == 18      # Rr of the first overflow
        assert psw.overflow_element == 2
        assert machine.fpu.regs.read(16) == 1.0
        assert machine.fpu.regs.read(17) == 2.0
        assert machine.fpu.regs.read(18) == float("inf")
        # Elements after the overflowing one were discarded.
        assert machine.fpu.regs.read_group(19, 5) == [0.0] * 5
        assert machine.fpu.stats.overflow_aborts == 1

    def test_broadcast_source_overflow_is_element_zero(self):
        """Stride bits clear: the scalar-broadcast operands overflow on
        the very first element."""
        b = ProgramBuilder()
        b.fmul(16, 0, 8, vl=4, sra=False, srb=False)
        b.halt()
        machine = machine_for(b.build())
        machine.fpu.regs.write(0, 1e200)
        machine.fpu.regs.write(8, 1e200)
        machine.run()
        psw = machine.fpu.regs.psw
        assert (psw.overflow_dest, psw.overflow_element) == (16, 0)

    def test_resume_aborted_restarts_from_overflowing_element(self):
        machine = self._overflowing_machine()
        machine.run()
        fpu = machine.fpu
        parked = fpu.aborted_ir
        assert parked is not None
        assert parked.rr == 18 and parked.element == 2
        assert parked.remaining == 6

        # The handler repairs the offending operands (the PSW names the
        # element; the stride bits locate its sources) and resumes.
        fpu.regs.write(2, 3.0)
        fpu.regs.write(10, 1.0)
        cycle = machine.cycle
        fpu.resume_aborted(cycle)
        while fpu.busy and cycle < machine.cycle + 100:
            cycle += 1
            fpu.retire(cycle)
            fpu.try_issue_element(cycle)

        assert not fpu.regs.psw.overflow
        assert fpu.aborted_ir is None
        # Elements 0-1 kept their pre-abort results; 2-7 completed.
        assert fpu.regs.read_group(16, 8) == [1.0, 2.0, 3.0, 4.0,
                                              5.0, 6.0, 7.0, 8.0]

    def test_resume_without_abort_raises(self):
        machine = machine_for(recurrence_program())
        with pytest.raises(SimulationError, match="to resume"):
            machine.fpu.resume_aborted(0)

    def test_aborted_state_survives_snapshot(self):
        machine = self._overflowing_machine()
        machine.run()
        snap = machine.snapshot()
        assert snap["fpu"]["aborted_ir"]["rr"] == 18
        restored = self._overflowing_machine()
        restored.restore(snap)
        assert restored.fpu.aborted_ir.rr == 18
        assert restored.fpu.aborted_ir.remaining == 6


class TestStrictHazards:
    """Section 2.3.2 leaves load-vs-vector ordering to the compiler;
    strict mode turns a violation into a diagnosable error, and the
    machine stays restorable afterwards."""

    def _hazard_program(self):
        b = ProgramBuilder()
        b.fadd(16, 8, 8, vl=8)  # consumes F8..F15 over 8 cycles
        b.fload(12, 1, 0)       # F12 feeds a not-yet-issued element
        b.halt()
        return b.build()

    def _reordered_program(self):
        b = ProgramBuilder()
        b.fload(12, 1, 0)       # hoisted ahead of the vector: deterministic
        b.fadd(16, 8, 8, vl=8)
        b.halt()
        return b.build()

    def _setup(self, machine):
        machine.memory.write(0, 7.0)
        machine.fpu.regs.write_group(8, [float(i) for i in range(1, 9)])

    def test_strict_mode_flags_load_into_unissued_element(self):
        machine = machine_for(self._hazard_program(), strict_hazards=True)
        self._setup(machine)
        with pytest.raises(VectorHazardError) as info:
            machine.run()
        error = info.value
        # Stable message prefix plus appended machine context.
        assert str(error).startswith("load of R12")
        assert "overlaps an unissued element" in str(error)
        assert "[cycle=" in str(error)
        assert error.pc == 1
        assert error.instruction[0] == isa.FLOAD

    def test_same_program_passes_after_restore_and_reorder(self):
        machine = machine_for(self._hazard_program(), strict_hazards=True)
        self._setup(machine)
        snap = machine.snapshot()
        with pytest.raises(VectorHazardError):
            machine.run()

        # The error is precise: restoring the pre-run snapshot brings the
        # machine back bit-exactly despite the aborted run.
        machine.restore(snap)
        assert machine.snapshot() == snap

        # The compiler-reordered schedule of the same computation passes
        # strict mode and produces the deterministic result.
        reordered = machine_for(self._reordered_program(),
                                strict_hazards=True)
        self._setup(reordered)
        reordered.run()
        expected = [2.0, 4.0, 6.0, 8.0, 14.0, 12.0, 14.0, 16.0]
        assert reordered.fpu.regs.read_group(16, 8) == expected
        assert reordered.fpu.regs.read(12) == 7.0

    def test_default_mode_records_warning_and_continues(self):
        machine = machine_for(self._hazard_program())
        self._setup(machine)
        machine.run()
        assert machine.fpu.hazard_warnings
        assert "load of R12" in machine.fpu.hazard_warnings[0]


class TestErrorContext:
    """Every SimulationError out of the run loop carries cycle, PC, and
    the offending instruction, with the original message as a stable
    prefix."""

    def test_pc_off_end(self):
        program = Program([(isa.NOP,)], {})
        machine = machine_for(program)
        with pytest.raises(SimulationError) as info:
            machine.run()
        error = info.value
        assert str(error).startswith("PC 1 ran off the end")
        assert error.pc == 1
        assert error.cycle >= 1
        assert error.instruction is None

    def test_rfe_outside_handler(self):
        b = ProgramBuilder()
        b.rfe()
        machine = machine_for(b.build())
        with pytest.raises(SimulationError) as info:
            machine.run()
        error = info.value
        assert str(error).startswith("rfe outside an interrupt handler")
        assert "[cycle=0 pc=0 instr=rfe]" in str(error)
        assert error.instruction == (isa.RFE,)

    def test_cycle_limit_exceeded(self):
        b = ProgramBuilder()
        loop = b.here("loop")
        b.j(loop)
        machine = machine_for(b.build())
        with pytest.raises(SimulationError) as info:
            machine.run(max_cycles=50)
        error = info.value
        assert str(error).startswith("simulation exceeded 50 cycles")
        assert error.cycle == 50


class TestFaultInjection:
    def test_flip_word_bit_is_involutive(self):
        value = 1.5
        flipped = flip_word_bit(value, 51)
        assert flipped != value
        assert flip_word_bit(flipped, 51) == value
        assert flip_word_bit(12, 3) == 4
        assert flip_word_bit(-0.0, 63) == 0.0
        with pytest.raises(SimulationError):
            flip_word_bit(1.0, 64)

    def test_random_plans_reproduce_from_seed(self):
        first = FaultPlan.random(seed=1234, max_cycle=500, count=8,
                                 kinds=("freg", "ireg", "memory", "stall"))
        second = FaultPlan.random(seed=1234, max_cycle=500, count=8,
                                  kinds=("freg", "ireg", "memory", "stall"))
        assert [e.describe() for e in first.events] \
            == [e.describe() for e in second.events]
        assert first.seed == 1234
        assert "seed=1234" in first.describe()

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultEvent(0, "alpha-particle")

    def test_scoreboard_flip_caught_by_invariant_audit(self):
        machine = machine_for(recurrence_program(), audit_invariants=True)
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        plan = FaultPlan()
        plan.flip_scoreboard(5, 40)  # R40 is idle: reserved-but-unwritten
        machine.fault_plan = plan
        with pytest.raises(InvariantError, match="R40 is reserved"):
            machine.run()
        assert plan.fired_events

    def test_stall_fault_is_architecturally_invisible(self):
        program = recurrence_program()
        clean = machine_for(program)
        clean.fpu.regs.write(0, 1.0)
        clean.fpu.regs.write(1, 1.0)
        clean_result = clean.run()

        stalled = machine_for(program)
        stalled.fpu.regs.write(0, 1.0)
        stalled.fpu.regs.write(1, 1.0)
        plan = FaultPlan()
        plan.stall(0, 25)
        stalled.fault_plan = plan
        stalled_result = stalled.run()

        assert stalled.fpu.regs.read_group(0, 18) \
            == clean.fpu.regs.read_group(0, 18)
        assert stalled_result.completion_cycle \
            >= clean_result.completion_cycle

    def test_register_flip_mutates_live_register_file(self):
        machine = machine_for(recurrence_program())
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        plan = FaultPlan()
        plan.flip_freg(0, 40, 52)
        machine.fault_plan = plan
        machine.run()
        assert machine.fpu.regs.read(40) == flip_word_bit(0.0, 52)


class TestInvariantAudit:
    def _machine(self):
        machine = machine_for(recurrence_program())
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        return machine

    def test_clean_strict_run_passes_every_cycle(self):
        machine = machine_for(recurrence_program(), audit_invariants=True)
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        result = machine.run()
        assert result.completion_cycle == 48
        assert machine.fpu.regs.read_group(0, 18) == fibonacci(16)

    def test_pending_write_without_reservation(self):
        machine = self._machine()
        machine.fpu._pending[10] = [(4, 1.0)]
        with pytest.raises(InvariantError, match="reservation bit is clear"):
            audit_invariants(machine, 0)

    def test_double_write_in_flight(self):
        machine = self._machine()
        machine.fpu.scoreboard.bits[4] = True
        machine.fpu._pending[10] = [(4, 1.0), (4, 2.0)]
        with pytest.raises(InvariantError, match="two writes in flight"):
            audit_invariants(machine, 0)

    def test_malformed_inflight_vector_state(self):
        machine = self._machine()
        machine.run(stop_cycle=5)
        machine.fpu.alu_ir.remaining = 0
        with pytest.raises(InvariantError, match="outside 1..vl"):
            audit_invariants(machine, 5)

    def test_reservation_ram_write_port_budget(self):
        """At most one ALU result and one load may retire together: three
        writes in one cycle exceed the single-ended clear ports."""
        machine = self._machine()
        machine.fpu.scoreboard.bits[30] = True
        machine.fpu.scoreboard.bits[31] = True
        machine.fpu.scoreboard.bits[32] = True
        machine.fpu._pending[10] = [(30, 1.0), (31, 2.0), (32, 3.0)]
        with pytest.raises(InvariantError, match="at most two bits"):
            audit_invariants(machine, 0)

    def test_stale_pending_write_detected(self):
        machine = self._machine()
        machine.fpu.scoreboard.bits[30] = True
        machine.fpu._pending[3] = [(30, 1.0)]
        with pytest.raises(InvariantError, match="already-elapsed"):
            audit_invariants(machine, 20)

    def test_corrupted_register_value_type(self):
        machine = self._machine()
        machine.fpu.regs.values[9] = "garbage"
        with pytest.raises(InvariantError, match="non-architectural"):
            audit_invariants(machine, 0)


class TestSmokeCampaign:
    def test_short_campaign_has_no_silent_corruption(self, capsys):
        assert cli.main(["smoke", "--seeds", "6", "--seed", "1989"]) == 0
        out = capsys.readouterr().out
        assert "0 silent" in out

    def test_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            cli.main(["smoke", "--kinds", "gamma-ray"])
