"""Tests for the program builder DSL and the textual assembler."""

import pytest

from repro.core.exceptions import AssemblerError, EncodingError
from repro.cpu import isa
from repro.cpu.assembler import assemble
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory


def run(program, memory=None, setup=None):
    machine = MultiTitan(program, memory=memory,
                         config=MachineConfig(model_ibuffer=False))
    if setup:
        setup(machine)
    machine.run()
    return machine


class TestProgramBuilder:
    def test_forward_label_resolution(self):
        b = ProgramBuilder()
        target = b.label("fwd")
        b.j(target)
        b.li(1, 99)     # skipped
        b.place(target)
        b.li(2, 7)
        machine = run(b.build())
        assert machine.iregs[1] == 0
        assert machine.iregs[2] == 7

    def test_unplaced_label_is_an_error(self):
        b = ProgramBuilder()
        b.j(b.label("nowhere"))
        with pytest.raises(AssemblerError):
            b.build()

    def test_duplicate_label_name_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblerError):
            b.label("x")

    def test_halt_appended_automatically(self):
        b = ProgramBuilder()
        b.nop()
        program = b.build()
        assert program.instructions[-1][0] == isa.HALT

    def test_counted_loop_helper(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.li(2, 5)
        top, close = b.counted_loop(1, 2)
        b.addi(3, 3, 2)
        b.addi(1, 1, 1)
        close()
        machine = run(b.build())
        assert machine.iregs[3] == 10

    def test_falu_validates_at_build_time(self):
        b = ProgramBuilder()
        with pytest.raises(EncodingError):
            b.fadd(48, 0, 8, vl=8)  # runs past R51

    def test_fdiv_seq_divides(self):
        b = ProgramBuilder()
        b.fdiv_seq(q=10, a=0, b=1, temps=(20, 21))
        machine = run(b.build(), setup=lambda m: (
            m.fpu.regs.write(0, 7.0), m.fpu.regs.write(1, 4.0)))
        assert machine.fpu.regs.read(10) == pytest.approx(1.75, rel=1e-14)

    def test_disassembly_includes_labels(self):
        b = ProgramBuilder()
        top = b.here("loop")
        b.addi(1, 1, 1)
        b.blt(1, 2, top)
        text = b.build().disassemble()
        assert "loop:" in text
        assert "addi r1, r1, 1" in text

    def test_r0_is_never_written(self):
        b = ProgramBuilder()
        b.li(0, 42)
        b.addi(0, 0, 3)
        machine = run(b.build())
        assert machine.iregs[0] == 0


class TestAssembler:
    def test_basic_program(self):
        program = assemble("""
            ; compute r3 = 5 + 7
            li r1, 5
            li r2, 7
            add r3, r1, r2
            halt
        """)
        machine = run(program)
        assert machine.iregs[3] == 12

    def test_branch_and_label(self):
        program = assemble("""
            li r1, 0
            li r2, 4
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """)
        machine = run(program)
        assert machine.iregs[1] == 4

    def test_fpu_vector_instruction(self):
        program = assemble("""
            fadd f16, f0, f8, vl=4
            halt
        """)
        machine = run(program, setup=lambda m: (
            m.fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0]),
            m.fpu.regs.write_group(8, [5.0, 5.0, 5.0, 5.0])))
        assert machine.fpu.regs.read_group(16, 4) == [6.0, 7.0, 8.0, 9.0]

    def test_scalar_broadcast_stride_bits(self):
        program = assemble("fmul f16, f32, f0, vl=4, sa=0\nhalt\n")
        machine = run(program, setup=lambda m: (
            m.fpu.regs.write(32, 2.0),
            m.fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0])))
        assert machine.fpu.regs.read_group(16, 4) == [2.0, 4.0, 6.0, 8.0]

    def test_memory_operands(self):
        memory = Memory()
        memory.write(256, 4.25)
        program = assemble("""
            li r1, 256
            fload f0, 0(r1)
            fadd f1, f0, f0
            fstore f1, 8(r1)
            halt
        """)
        machine = run(program, memory=memory)
        assert memory.read(264) == 8.5

    def test_fcmp_variants(self):
        program = assemble("""
            fcmp.lt r1, f0, f1
            fcmp.eq r2, f0, f0
            halt
        """)
        machine = run(program, setup=lambda m: (
            m.fpu.regs.write(0, 1.0), m.fpu.regs.write(1, 2.0)))
        assert machine.iregs[1] == 1
        assert machine.iregs[2] == 1

    def test_unary_fpu_ops(self):
        program = assemble("""
            frecip f1, f0
            ftrunc f2, f0
            halt
        """)
        machine = run(program, setup=lambda m: m.fpu.regs.write(0, 4.0))
        assert machine.fpu.regs.read(1) == pytest.approx(0.25, rel=1e-4)
        assert machine.fpu.regs.read(2) == 4

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("li r99, 3")

    def test_bad_fpu_option(self):
        with pytest.raises(AssemblerError):
            assemble("fadd f0, f1, f2, q=3")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("frecip f0, f1, f2")

    def test_comments_and_blank_lines(self):
        program = assemble("""
            # hash comment
            ; semicolon comment

            nop
            halt
        """)
        assert len(program.instructions) == 2

    def test_vector_length_out_of_range(self):
        with pytest.raises(EncodingError):
            assemble("fadd f0, f1, f2, vl=17")
