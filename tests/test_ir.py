"""Tests for the Mahler-flavored expression IR, including differential
fuzzing: random expression trees compiled to machine code must agree with
their own pure-Python evaluation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SimulationError
from repro.vectorize.ir import Kernel
from repro.workloads.common import Lcg


def make_data(names, length, seed=3, lo=0.1, hi=2.0):
    rng = Lcg(seed)
    return {name: rng.floats(length, lo, hi) for name in names}


class TestBasics:
    def test_elementwise_assignment(self):
        k = Kernel()
        x = k.input("x")
        out = k.output("out")
        k.assign(out, x[0] * 2.0 + 1.0)
        data = make_data(["x"], 20)
        outcome = k.compile(n=20, data=data).run()
        assert outcome.passed, outcome.check_error
        assert outcome.outputs["out"][3] == data["x"][3] * 2.0 + 1.0

    def test_livermore_loop1_shape(self):
        k = Kernel()
        y, z = k.input("y"), k.input("z")
        q, r, t = k.param("q"), k.param("r"), k.param("t")
        x = k.output("x")
        k.assign(x, q + y[0] * (r * z[10] + t * z[11]))
        data = make_data(["y"], 40)
        data["z"] = make_data(["z"], 51)["z"]
        outcome = k.compile(n=40, data=data,
                            params={"q": 0.5, "r": 0.25, "t": 0.125}).run()
        assert outcome.passed, outcome.check_error

    def test_offsets(self):
        k = Kernel()
        y = k.input("y")
        x = k.output("x")
        k.assign(x, y[1] - y[0])  # first difference
        data = make_data(["y"], 33)
        outcome = k.compile(n=32, data=data).run()
        assert outcome.passed
        assert outcome.outputs["x"][0] == data["y"][1] - data["y"][0]

    def test_reduction(self):
        k = Kernel()
        a, b = k.input("a"), k.input("b")
        k.reduce_sum(a[0] * b[0], name="dot")
        data = make_data(["a", "b"], 25)
        outcome = k.compile(n=25, data=data).run()
        assert outcome.passed, outcome.check_error
        direct = sum(x * y for x, y in zip(data["a"], data["b"]))
        assert outcome.sums["dot"] == pytest.approx(direct, rel=1e-12)

    def test_division_uses_newton_schedule(self):
        k = Kernel()
        a, b = k.input("a"), k.input("b")
        out = k.output("out")
        k.assign(out, a[0] / b[0])
        data = make_data(["a", "b"], 10)
        outcome = k.compile(n=10, data=data).run()
        assert outcome.passed, outcome.check_error

    def test_raw_reciprocal_is_approximate(self):
        k = Kernel()
        a = k.input("a")
        out = k.output("out")
        k.assign(out, a[0].reciprocal())
        data = {"a": [2.0] * 8}
        outcome = k.compile(n=8, data=data).run(rel_tol=1e-4)
        assert outcome.passed, outcome.check_error
        assert outcome.outputs["out"][0] == pytest.approx(0.5, rel=1e-4)

    def test_multiple_statements(self):
        k = Kernel()
        a = k.input("a")
        double = k.output("double")
        square = k.output("square")
        k.assign(double, a[0] + a[0])
        k.assign(square, a[0] * a[0])
        k.reduce_sum(a[0], name="total")
        data = make_data(["a"], 17)
        outcome = k.compile(n=17, data=data).run()
        assert outcome.passed, outcome.check_error


class TestValidation:
    def test_missing_data(self):
        k = Kernel()
        k.input("a")
        k.assign(k.output("o"), k.input("b")[0])
        with pytest.raises(SimulationError):
            k.compile(n=4, data={"a": [1.0] * 4})

    def test_short_data_for_offset(self):
        k = Kernel()
        y = k.input("y")
        k.assign(k.output("o"), y[5])
        with pytest.raises(SimulationError):
            k.compile(n=10, data={"y": [0.0] * 12})  # needs 15

    def test_missing_param(self):
        k = Kernel()
        q = k.param("q")
        k.assign(k.output("o"), k.input("a")[0] * q)
        with pytest.raises(SimulationError):
            k.compile(n=4, data={"a": [1.0] * 4})

    def test_assign_to_input_rejected(self):
        k = Kernel()
        a = k.input("a")
        with pytest.raises(SimulationError):
            k.assign(a, a[0])

    def test_footprints(self):
        k = Kernel()
        z = k.input("z")
        k.assign(k.output("o"), z[10] + z[3])
        assert k.footprints()["z"] == (3, 10)


class TestAutomaticStripShortening:
    def test_deep_tree_compiles_by_halving_vl(self):
        """A tree too wide for VL=8 must fall back to a shorter strip
        instead of failing (the paper made the programmer do this)."""
        k = Kernel(vl=8)
        inputs = [k.input("a%d" % i) for i in range(8)]
        expr = inputs[0][0]
        for handle in inputs[1:]:
            expr = expr + handle[0]
        expr = expr * expr + expr
        k.assign(k.output("o"), expr)
        data = make_data(["a%d" % i for i in range(8)], 16)
        compiled = k.compile(n=16, data=data)
        assert compiled.vl < 8
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error


# ---------------------------------------------------------------------------
# Differential fuzzing: random trees vs their own Python evaluation
# ---------------------------------------------------------------------------

def expression_trees(max_depth=4):
    leaf = st.one_of(
        st.tuples(st.just("load"), st.sampled_from(["a", "b", "c"]),
                  st.integers(0, 3)),
        st.tuples(st.just("param"), st.sampled_from(["p", "q"])),
        st.tuples(st.just("lit"),
                  st.floats(min_value=0.25, max_value=4.0)),
    )

    def extend(children):
        return st.tuples(st.sampled_from(["+", "-", "*", "/"]),
                         children, children)

    return st.recursive(leaf, extend, max_leaves=10)


def materialize(tree, kernel, handles, params):
    kind = tree[0]
    if kind == "load":
        return handles[tree[1]][tree[2]]
    if kind == "param":
        return params[tree[1]]
    if kind == "lit":
        return tree[1]
    operator, left, right = tree
    lhs = materialize(left, kernel, handles, params)
    rhs = materialize(right, kernel, handles, params)
    from repro.vectorize.ir import _wrap
    lhs, rhs = _wrap(lhs), _wrap(rhs)
    if operator == "+":
        return lhs + rhs
    if operator == "-":
        return lhs - rhs
    if operator == "*":
        return lhs * rhs
    return lhs / rhs


class TestDifferentialFuzz:
    @given(expression_trees(), st.integers(1, 24), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_tree_matches_python(self, tree, n, seed):
        k = Kernel()
        handles = {name: k.input(name) for name in ("a", "b", "c")}
        params = {"p": k.param("p"), "q": k.param("q")}
        out = k.output("out")
        expr = materialize(tree, k, handles, params)
        from repro.vectorize.ir import _wrap
        k.assign(out, _wrap(expr))
        # Positive data keeps denominators away from zero; division by a
        # difference can still be extreme, so compare with a loose bound
        # and skip non-finite references.
        data = make_data(["a", "b", "c"], n + 3, seed=seed, lo=1.0, hi=2.0)
        compiled = k.compile(n=n, data=data, params={"p": 1.25, "q": 1.75})
        expected, _ = compiled.expected()
        if not all(abs(v) < 1e12 for v in expected["out"][:n]):
            return  # the random tree hit a near-zero denominator
        outcome = compiled.run(rel_tol=1e-6)
        assert outcome.passed, outcome.check_error
