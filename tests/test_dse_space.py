"""ParameterSpace: dimensions, constraints, grid order, operators,
serialization, and the shared MachineConfig error path."""

import random

import pytest

from repro.cpu.machine import MachineConfig, _check_observation_fields
from repro.dse.space import (Boolean, Choice, Constraint, IntRange,
                             InvalidPoint, LogRange, ParameterSpace,
                             parse_dimension, parse_scalar, tied)


# ---------------------------------------------------------------------------
# Dimensions
# ---------------------------------------------------------------------------

class TestDimensions:
    def test_int_range_values_and_membership(self):
        dim = IntRange("fpu_latency", 1, 7, step=2)
        assert dim.values() == [1, 3, 5, 7]
        assert dim.contains(5)
        assert not dim.contains(2)      # off-step
        assert not dim.contains(9)      # out of range
        assert not dim.contains(5.0)    # wrong type
        assert not dim.contains(True)   # bool is not an int value

    def test_int_range_mutate_steps_to_neighbor(self):
        dim = IntRange("fpu_latency", 1, 5)
        rng = random.Random(0)
        assert dim.mutate(1, rng) == 2          # clamped at low edge
        assert dim.mutate(5, rng) == 4          # clamped at high edge
        for _ in range(20):
            assert dim.mutate(3, rng) in (2, 4)

    def test_int_range_rejects_empty_or_bad_step(self):
        with pytest.raises(ValueError, match="empty range"):
            IntRange("fpu_latency", 5, 1)
        with pytest.raises(ValueError, match="step"):
            IntRange("fpu_latency", 1, 5, step=0)

    def test_log_range_values(self):
        dim = LogRange("dcache_size", 4096, 65536)
        assert dim.values() == [4096, 8192, 16384, 32768, 65536]
        assert dim.contains(16384)
        assert not dim.contains(12288)

    def test_log_range_mutate_is_adjacent(self):
        dim = LogRange("dcache_size", 4096, 65536)
        rng = random.Random(1)
        for _ in range(20):
            assert dim.mutate(16384, rng) in (8192, 32768)

    def test_boolean_and_choice(self):
        assert Boolean("trace").values() == [False, True]
        dim = Choice("max_vl", [4, 8, 16])
        assert dim.contains(8) and not dim.contains(2)
        rng = random.Random(2)
        for _ in range(10):
            assert dim.mutate(8, rng) in (4, 16)

    def test_choice_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="empty"):
            Choice("max_vl", [])
        with pytest.raises(ValueError, match="duplicate"):
            Choice("max_vl", [4, 4])

    def test_dimension_dict_round_trip(self):
        for dim in (IntRange("fpu_latency", 1, 8, 2),
                    LogRange("dcache_size", 1024, 8192, 2),
                    Boolean("model_tlb"),
                    Choice("max_vl", [4, 8])):
            rebuilt = type(dim).__name__
            from repro.dse.space import Dimension
            clone = Dimension.from_dict(dim.to_dict())
            assert type(clone).__name__ == rebuilt
            assert clone.to_dict() == dim.to_dict()
            assert clone.values() == dim.values()


# ---------------------------------------------------------------------------
# CLI dimension specs
# ---------------------------------------------------------------------------

class TestParseDimension:
    def test_all_spec_forms(self):
        assert parse_dimension("fpu_latency=int:1:8").values() == \
            list(range(1, 9))
        assert parse_dimension("fpu_latency=int:1:8:3").values() == [1, 4, 7]
        assert parse_dimension("dcache_size=log2:1024:4096").values() == \
            [1024, 2048, 4096]
        assert parse_dimension("ibuf_size=log4:64:1024").values() == \
            [64, 256, 1024]
        assert parse_dimension("model_ibuffer=bool").values() == [False, True]
        assert parse_dimension("max_vl=4,8,16").values() == [4, 8, 16]
        assert parse_dimension("strict_hazards=true,false").values() == \
            [True, False]

    def test_bad_specs(self):
        for bad in ("fpu_latency", "fpu_latency=", "=int:1:2",
                    "fpu_latency=int:1", "dcache_size=log2:8",
                    "max_vl=,"):
            with pytest.raises(ValueError):
                parse_dimension(bad)

    def test_parse_scalar(self):
        assert parse_scalar("14") == 14
        assert parse_scalar("0.5") == 0.5
        assert parse_scalar("true") is True
        assert parse_scalar("percycle") == "percycle"


# ---------------------------------------------------------------------------
# The space
# ---------------------------------------------------------------------------

def smoke_space():
    return ParameterSpace([
        IntRange("fpu_latency", 1, 3),
        Choice("dcache_miss_penalty", [0, 14]),
        Choice("max_vl", [4, 8, 16]),
    ])


class TestParameterSpace:
    def test_unknown_dimension_name_uses_machineconfig_error(self):
        with pytest.raises(ValueError, match="unknown MachineConfig"):
            ParameterSpace([IntRange("fpu_latencyy", 1, 3)])

    def test_did_you_mean_suggestion(self):
        with pytest.raises(ValueError,
                           match=r"did you mean 'fpu_latency'\?"):
            ParameterSpace([IntRange("fpu_latencyy", 1, 3)])

    def test_base_config_names_checked_too(self):
        with pytest.raises(ValueError, match="unknown MachineConfig"):
            ParameterSpace([IntRange("fpu_latency", 1, 3)],
                           base_config={"max_vll": 8})

    def test_duplicate_and_overlapping_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate dimension"):
            ParameterSpace([IntRange("fpu_latency", 1, 3),
                            Choice("fpu_latency", [5])])
        with pytest.raises(ValueError, match="both as dimensions"):
            ParameterSpace([IntRange("fpu_latency", 1, 3)],
                           base_config={"fpu_latency": 5})

    def test_grid_first_axis_varies_fastest(self):
        space = ParameterSpace([Choice("fpu_latency", [1, 2]),
                                Choice("max_vl", [4, 8])])
        assert list(space.grid()) == [
            {"fpu_latency": 1, "max_vl": 4},
            {"fpu_latency": 2, "max_vl": 4},
            {"fpu_latency": 1, "max_vl": 8},
            {"fpu_latency": 2, "max_vl": 8},
        ]

    def test_empty_space_grid_is_one_base_point(self):
        assert list(ParameterSpace([]).grid()) == [{}]

    def test_tied_constraint_grid_walks_diagonal(self):
        space = ParameterSpace(
            [Choice("dcache_miss_penalty", [0, 7, 14]),
             Choice("ibuf_miss_penalty", [0, 7, 14])],
            constraints=[tied("dcache_miss_penalty", "ibuf_miss_penalty")])
        assert list(space.grid()) == [
            {"dcache_miss_penalty": 0, "ibuf_miss_penalty": 0},
            {"dcache_miss_penalty": 7, "ibuf_miss_penalty": 7},
            {"dcache_miss_penalty": 14, "ibuf_miss_penalty": 14},
        ]

    def test_check_point_errors(self):
        space = smoke_space()
        with pytest.raises(InvalidPoint, match="missing dimension"):
            space.check_point({"fpu_latency": 1})
        with pytest.raises(InvalidPoint, match=r"did you mean 'max_vl'\?"):
            space.check_point({"fpu_latency": 1, "dcache_miss_penalty": 0,
                               "max_vll": 4})
        with pytest.raises(InvalidPoint, match="outside dimension"):
            space.check_point({"fpu_latency": 99, "dcache_miss_penalty": 0,
                               "max_vl": 4})
        with pytest.raises(InvalidPoint, match="dict"):
            space.check_point([1, 2, 3])

    def test_check_point_reuses_machine_validate(self):
        # vl ceiling above the architected maximum: MachineConfig.validate
        # rejects it, so the space must too -- before any simulation.
        space = ParameterSpace([Choice("max_vl", [8, 64])])
        assert space.is_valid({"max_vl": 8})
        with pytest.raises(InvalidPoint, match="no valid machine"):
            space.check_point({"max_vl": 64})

    def test_machine_config_builds_validated_config(self):
        space = smoke_space()
        config = space.machine_config(
            {"fpu_latency": 2, "dcache_miss_penalty": 14, "max_vl": 4})
        assert isinstance(config, MachineConfig)
        assert config.fpu_latency == 2 and config.max_vl == 4

    def test_operators_are_seed_deterministic_and_admissible(self):
        space = smoke_space()
        a = [space.sample(random.Random(5)) for _ in range(4)]
        b = [space.sample(random.Random(5)) for _ in range(4)]
        assert a == b
        rng = random.Random(6)
        point = space.sample(rng)
        for _ in range(10):
            point = space.mutate(point, rng)
            assert space.is_valid(point)
        other = space.sample(rng)
        child = space.crossover(point, other, rng)
        assert space.is_valid(child)
        for name in space.names:
            assert child[name] in (point[name], other[name])

    def test_mutate_changes_exactly_one_dimension(self):
        space = smoke_space()
        rng = random.Random(7)
        point = space.sample(rng)
        for _ in range(10):
            neighbor = space.mutate(point, rng)
            changed = [n for n in space.names if neighbor[n] != point[n]]
            assert len(changed) == 1

    def test_impossible_constraints_raise(self):
        space = ParameterSpace([Choice("fpu_latency", [1, 2])],
                               constraints=[Constraint("never",
                                                       lambda p: False)])
        with pytest.raises(InvalidPoint, match="no admissible point"):
            space.sample(random.Random(0))
        assert list(space.grid()) == []

    def test_dict_round_trip_preserves_fingerprint_and_tied(self):
        space = ParameterSpace(
            [Choice("dcache_miss_penalty", [0, 7]),
             Choice("ibuf_miss_penalty", [0, 7])],
            constraints=[tied("dcache_miss_penalty", "ibuf_miss_penalty")],
            base_config={"model_ibuffer": False}, name="pair")
        clone = ParameterSpace.from_dict(space.to_dict())
        assert clone.fingerprint() == space.fingerprint()
        assert clone.name == "pair"
        # tied: constraints come back executable
        assert not clone.is_valid({"dcache_miss_penalty": 0,
                                   "ibuf_miss_penalty": 7})
        assert list(clone.grid()) == list(space.grid())

    def test_opaque_constraints_deserialize_inert(self):
        space = ParameterSpace([Choice("fpu_latency", [1, 2])],
                               constraints=[Constraint("odd-only",
                                                       lambda p: False)])
        clone = ParameterSpace.from_dict(space.to_dict())
        assert clone.fingerprint() == space.fingerprint()
        # The predicate is not serializable: the marker admits everything.
        assert clone.is_valid({"fpu_latency": 2})

    def test_dimension_lookup_did_you_mean(self):
        space = smoke_space()
        assert space.dimension("max_vl").name == "max_vl"
        with pytest.raises(ValueError, match=r"did you mean 'max_vl'\?"):
            space.dimension("max_v")

    def test_size_and_point_key(self):
        space = smoke_space()
        assert space.size() == 3 * 2 * 3
        key = ParameterSpace.point_key({"b": 1, "a": 2})
        assert key == '{"a":2,"b":1}'


# ---------------------------------------------------------------------------
# The shared MachineConfig error path (satellite: did-you-mean)
# ---------------------------------------------------------------------------

class TestMachineConfigFieldChecks:
    def test_from_overrides_suggests_closest_match(self):
        with pytest.raises(ValueError,
                           match=r"fpu_latencyy \(did you mean "
                                 r"'fpu_latency'\?\)"):
            MachineConfig.from_overrides({"fpu_latencyy": 3})

    def test_from_overrides_lists_valid_fields(self):
        with pytest.raises(ValueError, match="valid: .*dcache_size"):
            MachineConfig.from_overrides({"zzz_nonsense": 1})

    def test_multiple_unknowns_all_reported(self):
        with pytest.raises(ValueError, match="max_vll.*trrace") as err:
            MachineConfig.check_field_names(["max_vll", "trrace"])
        assert "did you mean 'max_vl'?" in str(err.value)
        assert "did you mean 'trace'?" in str(err.value)

    def test_field_names_cover_dataclass(self):
        names = MachineConfig.field_names()
        assert "fpu_latency" in names and "max_vl" in names
        assert names == tuple(sorted(names))

    def test_legacy_error_prefix_preserved(self):
        with pytest.raises(ValueError, match="unknown MachineConfig"):
            MachineConfig.from_overrides({"nope": 1})


class TestObservationFieldsGuard:
    def test_real_config_passes_at_import(self):
        assert _check_observation_fields(MachineConfig) is MachineConfig

    def test_renamed_field_fails_loudly(self):
        class Broken(MachineConfig):
            OBSERVATION_FIELDS = ("trace", "no_such_field")

        with pytest.raises(AssertionError, match="no_such_field"):
            _check_observation_fields(Broken)

    def test_observation_fields_stay_out_of_fingerprint(self):
        base = MachineConfig().fingerprint()
        assert MachineConfig(trace=True).fingerprint() == base
        assert MachineConfig(fpu_latency=5).fingerprint() != base


class TestPresetValidateDrift:
    """The preset spaces and ``MachineConfig.validate`` must not drift:
    every point a preset can propose builds a validating machine, and
    every per-dimension boundary value survives validation on its own.
    A preset edit that admits an impossible machine (or a ``validate``
    tightening that silently shrinks a preset) fails here, not mid-
    campaign."""

    def test_every_preset_grid_point_builds_a_valid_machine(self):
        from repro.dse.presets import SPACES, space_preset

        for name in sorted(SPACES):
            space = space_preset(name)
            count = 0
            for point in space.grid():
                # check_point is the full admission path (universe,
                # constraints, and a from_overrides -> validate build).
                space.check_point(point)
                space.machine_config(point).validate()
                count += 1
            assert count == space.size(), \
                "preset %r: validate rejects %d of %d declared points" \
                % (name, space.size() - count, space.size())

    def test_dimension_boundary_values_validate_in_isolation(self):
        from repro.dse.presets import SPACES, space_preset

        for name in sorted(SPACES):
            space = space_preset(name)
            baseline = {dim.name: dim.values()[0]
                        for dim in space.dimensions}
            for dim in space.dimensions:
                universe = dim.values()
                for boundary in (universe[0], universe[-1]):
                    point = dict(baseline)
                    point[dim.name] = boundary
                    config = space.machine_config(point)
                    assert config.validate() is config

    def test_out_of_universe_boundary_neighbors_are_rejected(self):
        """The space refuses values one step past each ordered
        dimension's edge even when the machine itself would accept
        them -- preset bounds are the contract, not just validate."""
        from repro.dse.presets import SPACES, space_preset

        for name in sorted(SPACES):
            space = space_preset(name)
            baseline = {dim.name: dim.values()[0]
                        for dim in space.dimensions}
            for dim in space.dimensions:
                if not dim.ordered:
                    continue
                universe = dim.values()
                for outside in (universe[0] - 1, universe[-1] + 1):
                    point = dict(baseline)
                    point[dim.name] = outside
                    with pytest.raises(InvalidPoint, match="outside"):
                        space.check_point(point)
