"""Robustness tests: runaway programs, bad programs, config edges."""

import pytest

from repro.core.exceptions import SimulationError
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import Program, ProgramBuilder
from repro.cpu import isa
from repro.mem.memory import Memory


class TestRunawayPrograms:
    def test_infinite_loop_hits_the_cycle_limit(self):
        b = ProgramBuilder()
        top = b.here("spin")
        b.j(top)
        machine = MultiTitan(b.build(), config=MachineConfig(
            model_ibuffer=False, max_cycles=500))
        with pytest.raises(SimulationError):
            machine.run()

    def test_explicit_max_cycles_argument(self):
        b = ProgramBuilder()
        top = b.here("spin")
        b.j(top)
        machine = MultiTitan(b.build(),
                             config=MachineConfig(model_ibuffer=False))
        with pytest.raises(SimulationError):
            machine.run(max_cycles=100)

    def test_pc_off_the_end(self):
        # A hand-built Program without the auto-HALT.
        program = Program([(isa.NOP,)], {})
        machine = MultiTitan(program, config=MachineConfig(model_ibuffer=False))
        with pytest.raises(SimulationError):
            machine.run()

    def test_unknown_opcode(self):
        program = Program([(99, 1, 2)], {})
        machine = MultiTitan(program, config=MachineConfig(model_ibuffer=False))
        with pytest.raises(SimulationError):
            machine.run()


class TestConfigEdges:
    def test_latency_one_machine_works(self):
        b = ProgramBuilder()
        b.fadd(2, 0, 1)
        machine = MultiTitan(b.build(), config=MachineConfig(
            model_ibuffer=False, fpu_latency=1))
        machine.fpu.regs.write(0, 2.0)
        machine.fpu.regs.write(1, 3.0)
        result = machine.run()
        assert machine.fpu.regs.read(2) == 5.0
        assert result.completion_cycle == 1

    def test_zero_miss_penalty(self):
        memory = Memory()
        memory.write(256, 1.5)
        b = ProgramBuilder()
        b.fload(0, 1, 0)
        machine = MultiTitan(b.build(), memory=memory, config=MachineConfig(
            model_ibuffer=False, dcache_miss_penalty=0))
        machine.iregs[1] = 256
        result = machine.run()
        assert result.halt_cycle == 1  # cold but free

    def test_empty_program_is_just_a_halt(self):
        machine = MultiTitan(ProgramBuilder().build(),
                             config=MachineConfig(model_ibuffer=False))
        assert machine.run().completion_cycle == 0

    def test_rerun_after_reset(self):
        b = ProgramBuilder()
        b.addi(2, 2, 5)
        machine = MultiTitan(b.build(), config=MachineConfig(model_ibuffer=False))
        machine.run()
        first = machine.iregs[2]
        machine.reset_cpu()
        machine.run()
        assert machine.iregs[2] == first == 5
