"""The fuzzing harness around the generator: watchdog budgets and
livelock diagnostics, architectural coverage binning, all-kinds fault
plans, the smoke campaign's per-kind report, failure signatures, triage
encoding, and the CLI surface."""

import json
import math
import os

import pytest

from repro.core.exceptions import DivergenceError, InvariantError
from repro.cpu.machine import MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.robustness import LivelockError, watchdog_budget
from repro.robustness.faults import KINDS, FaultPlan
from repro.robustness.fuzz import (
    COVERAGE_UNIVERSE,
    CoverageMap,
    decode_data,
    encode_data,
    failure_signature,
    vl_bucket,
)
from repro.robustness.watchdog import (
    BUDGET_FACTOR,
    BUDGET_SLACK,
    livelock_diagnostic,
)
from repro.robustness import smoke
from repro.tools import cli


# ---------------------------------------------------------------------------
# Watchdog and livelock diagnostics
# ---------------------------------------------------------------------------

def test_watchdog_budget_formula():
    assert watchdog_budget(100) == BUDGET_FACTOR * 100 + BUDGET_SLACK
    assert watchdog_budget(0) == BUDGET_SLACK


def test_livelock_error_carries_diagnostic():
    builder = ProgramBuilder()
    top = builder.here()
    builder.j(top)
    machine = MultiTitan(builder.build())
    with pytest.raises(LivelockError) as info:
        machine.run(max_cycles=50)
    message = str(info.value)
    assert "simulation exceeded 50 cycles" in message
    assert "livelock diagnostic" in message
    assert "pc=" in message
    assert "scoreboard" in message


def test_livelock_diagnostic_reports_stalls_and_scoreboard():
    builder = ProgramBuilder()
    builder.fadd(2, 1, 0, vl=16)
    machine = MultiTitan(builder.build())
    machine.run(stop_cycle=3)   # vector still in flight
    text = livelock_diagnostic(machine)
    assert text.startswith("livelock diagnostic: pc=")
    assert "pending scoreboard bits" in text


# ---------------------------------------------------------------------------
# Coverage binning
# ---------------------------------------------------------------------------

def test_coverage_universe_shape():
    assert len(COVERAGE_UNIVERSE) == 284
    assert ("falu", "add", "2-4", "11", "none") in COVERAGE_UNIVERSE
    assert ("falu", "recip", "9-16", "u1", "ir_busy") in COVERAGE_UNIVERSE
    assert ("fload", "interlock", "miss") in COVERAGE_UNIVERSE
    assert ("branch", "blt", "not-taken") in COVERAGE_UNIVERSE
    assert ("overflow", "1") in COVERAGE_UNIVERSE
    # Unary ops never encode a two-bit stride kind.
    assert ("falu", "recip", "1", "11", "none") not in COVERAGE_UNIVERSE


def test_vl_buckets():
    assert [vl_bucket(v) for v in (1, 2, 4, 5, 8, 9, 16)] == \
        ["1", "2-4", "2-4", "5-8", "5-8", "9-16", "9-16"]


def _run_with_coverage(builder, setup=None):
    machine = MultiTitan(builder.build())
    if setup is not None:
        setup(machine)
    coverage = CoverageMap()
    coverage.attach(machine)
    machine.run()
    coverage.detach()
    return coverage


def test_coverage_classifies_falu_and_loads():
    builder = ProgramBuilder()
    builder.fload(0, 0, 0)
    builder.fadd(8, 0, 4, vl=4)
    coverage = _run_with_coverage(builder)
    assert ("fload", "none", "miss") in coverage.hits
    assert ("falu", "add", "2-4", "11", "none") in coverage.hits
    assert coverage.unhit_falu()
    assert all(key[0] == "falu" for key in coverage.unhit_falu())


def test_coverage_attributes_overflow_to_vl_bucket():
    builder = ProgramBuilder()
    builder.fmul(4, 0, 0, vl=1)

    def setup(machine):
        machine.fpu.regs.write(0, 2.0 ** 1000)

    coverage = _run_with_coverage(builder, setup)
    assert ("overflow", "1") in coverage.hits
    assert ("falu", "mul", "1", "11", "none") in coverage.hits


def test_coverage_merge_and_summary():
    a = CoverageMap()
    a.record(("int", "nop", "none"))
    b = CoverageMap()
    b.record(("int", "nop", "none"))
    b.record(("int", "li", "none"))
    a.merge(b)
    assert a.hits[("int", "nop", "none")] == 2
    assert a.hit_count() == 2
    assert a.summary() == "coverage: 2/284 bins hit (0.7%)"


def test_coverage_map_attaches_to_one_machine_at_a_time():
    builder = ProgramBuilder()
    machine = MultiTitan(builder.build())
    coverage = CoverageMap()
    coverage.attach(machine)
    with pytest.raises(ValueError):
        coverage.attach(machine)
    coverage.detach()
    coverage.detach()   # idempotent


# ---------------------------------------------------------------------------
# Fault plans and the smoke campaign's per-kind report
# ---------------------------------------------------------------------------

def test_random_fault_plan_defaults_to_all_kinds():
    plan = FaultPlan.random(1, max_cycle=100, count=60)
    assert {event.kind for event in plan.events} == set(KINDS)


def test_smoke_campaign_reports_per_kind_outcomes(capsys):
    assert cli.main(["smoke", "--seeds", "3"]) == 0
    out = capsys.readouterr().out
    assert "per-kind outcomes" in out
    for kind in KINDS:
        assert kind in out


def test_smoke_main_shim_warns_and_forwards(capsys):
    with pytest.warns(DeprecationWarning, match="python -m repro smoke"):
        assert smoke.main(["--seeds", "1"]) == 0
    assert "per-kind outcomes" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Failure signatures
# ---------------------------------------------------------------------------

def test_failure_signature_strips_context_and_numbers():
    error = DivergenceError("divergence: FPU register R7 retired 1.0, "
                            "reference computed 2.0 [cycle=12 pc=3]")
    assert failure_signature(error) == "divergence:freg"
    assert failure_signature(
        DivergenceError("divergence: unexpected FPU writeback to R4")
    ) == "divergence:unexpected-writeback"
    assert failure_signature(LivelockError("anything")) == "livelock"
    first = failure_signature(
        InvariantError("cycle 9: R5 is reserved but no write is in flight"))
    second = failure_signature(
        InvariantError("cycle 77: R31 is reserved but no write is in "
                       "flight [cycle=77 pc=4]"))
    assert first == second


# ---------------------------------------------------------------------------
# Triage data encoding
# ---------------------------------------------------------------------------

def test_encode_decode_roundtrip_is_lossless():
    data = {
        "floats": [1.5, -0.0, float("inf"), float("-inf"), float("nan")],
        "big": 2 ** 80,
        "flags": [True, False, None],
        "tuple": (1, (2.0, "x")),
        "~marker-like-key": 3,
        "intkeys": {0: "a", (1, 2): "b"},
    }
    encoded = encode_data(data)
    # Strict JSON round-trip (what the bundle files actually do).
    decoded = decode_data(json.loads(json.dumps(encoded, allow_nan=False)))
    assert decoded["big"] == 2 ** 80
    assert decoded["flags"] == [True, False, None]
    assert decoded["flags"][0] is True
    assert decoded["tuple"] == (1, (2.0, "x"))
    assert isinstance(decoded["tuple"], tuple)
    assert decoded["~marker-like-key"] == 3
    assert decoded["intkeys"] == {0: "a", (1, 2): "b"}
    floats = decoded["floats"]
    assert floats[0] == 1.5
    assert math.copysign(1.0, floats[1]) == -1.0
    assert floats[2] == float("inf") and floats[3] == float("-inf")
    assert math.isnan(floats[4])


def test_encode_rejects_unencodable_objects():
    with pytest.raises(TypeError):
        encode_data({"bad": object()})


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_fuzz_requires_a_subcommand_or_repro(capsys):
    assert cli.main(["fuzz"]) == 2
    assert "usage" in capsys.readouterr().err


def test_cli_fuzz_coverage_runs_clean(capsys):
    assert cli.main(["fuzz", "coverage", "--seeds", "5"]) == 0
    out = capsys.readouterr().out
    assert "ran 5 cases, 0 failures" in out
    assert "coverage:" in out


def test_cli_fuzz_run_coverage_floor_fails_when_unreachable(capsys):
    assert cli.main(["fuzz", "run", "--seeds", "2",
                     "--min-bins", "284"]) == 1
    assert "COVERAGE FLOOR FAILED" in capsys.readouterr().out


def test_cli_fuzz_run_bundles_and_repros_a_planted_bug(tmp_path, capsys):
    out_dir = str(tmp_path / "bundles")
    status = cli.main(["fuzz", "run", "--seeds", "20",
                       "--bug", "flipped-scoreboard-clear",
                       "--max-failures", "1", "--out", out_dir])
    assert status == 1
    captured = capsys.readouterr().out
    assert "minimized" in captured
    bundles = sorted(os.listdir(out_dir))
    assert bundles
    bundle = os.path.join(out_dir, bundles[0])
    for name in ("program.s", "original.s", "memory.json",
                 "snapshot.json", "meta.json"):
        assert os.path.exists(os.path.join(bundle, name))
    assert cli.main(["fuzz", "repro", bundle]) == 0
    assert "reproduced" in capsys.readouterr().out
    # The documented one-liner form.
    assert cli.main(["fuzz", "--repro", bundle]) == 0
