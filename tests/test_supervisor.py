"""The fault-tolerant campaign engine: supervisor, journal, telemetry.

Covers the robustness contracts layered over plain campaign execution:
worker-death and watchdog-timeout recovery with typed per-attempt
records, poison-task quarantine, the crash-safe journal and
interrupt/``--resume`` byte-equivalence, stale-temp sweeping and
corrupt-entry telemetry in the result cache, the exception-safe
progress sink, and spawn start-method compatibility.
"""

import json
import os

import pytest

from repro import orchestrate
from repro.api import RunRequest
from repro.journal import CampaignJournal, campaign_digest, task_digest
from repro.orchestrate import (
    FAILURE_KINDS,
    RESULT_SCHEMA,
    ProgressSink,
    ResultCache,
    dump_bench_json,
    run_campaign,
    validate_bench_json,
)
from repro.robustness.chaos import ChaosPlan

SMALL = [
    RunRequest("fib", {"count": 8}),
    RunRequest("reduction", {"strategy": "scalar_tree"}),
    RunRequest("fib", {"count": 9}),
]

FAST = dict(retry_base=0.01, seed=0)


def _entry_payload(metrics=None):
    return {"schema": RESULT_SCHEMA, "workload": "w", "params": {},
            "config": {}, "metrics": metrics or {"cycles": 1},
            "check_error": None, "program_digest": None, "key": "k",
            "backend": "fastpath"}


# ---------------------------------------------------------------------------
# ResultCache: temp hygiene and self-healing telemetry
# ---------------------------------------------------------------------------

class TestCacheTempHygiene:
    def test_len_counts_committed_entries_not_inflight_temps(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, _entry_payload())
        (tmp_path / "ab" / ".tmp-inflight.json").write_text("{")
        assert len(cache) == 1

    def test_stale_temps_swept_on_construction(self, tmp_path):
        sub = tmp_path / "ab"
        sub.mkdir()
        stale = sub / ".tmp-stale.json"
        stale.write_text("{")
        old = os.path.getmtime(stale) - 3600
        os.utime(stale, (old, old))
        fresh = sub / ".tmp-fresh.json"
        fresh.write_text("{")
        committed = sub / ("ab" + "0" * 62 + ".json")
        committed.write_text(json.dumps(_entry_payload()))

        cache = ResultCache(tmp_path)
        assert cache.swept_temps == 1
        assert not stale.exists()      # killed-worker dropping removed
        assert fresh.exists()          # live concurrent writer untouched
        assert committed.exists()

    def test_sweep_age_zero_takes_fresh_temps_too(self, tmp_path):
        sub = tmp_path / "cd"
        sub.mkdir()
        (sub / ".tmp-now.json").write_text("{")
        cache = ResultCache(tmp_path, temp_sweep_age=0)
        assert cache.swept_temps == 1

    def test_sweep_judges_age_by_injected_clock(self, tmp_path):
        """The sweep's 'now' comes from the injected clock, so a frozen
        clock makes the age cutoff exact instead of racing wall time."""
        sub = tmp_path / "ab"
        sub.mkdir()
        temp = sub / ".tmp-pinned.json"
        temp.write_text("{")
        mtime = os.path.getmtime(temp)

        kept = ResultCache(tmp_path, temp_sweep_age=60,
                           clock=lambda: mtime + 59)
        assert kept.swept_temps == 0
        assert temp.exists()

        swept = ResultCache(tmp_path, temp_sweep_age=60,
                            clock=lambda: mtime + 60)
        assert swept.swept_temps == 1
        assert not temp.exists()

    def test_sweep_disabled_with_none(self, tmp_path):
        sub = tmp_path / "ef"
        sub.mkdir()
        temp = sub / ".tmp-kept.json"
        temp.write_text("{")
        old = os.path.getmtime(temp) - 3600
        os.utime(temp, (old, old))
        cache = ResultCache(tmp_path, temp_sweep_age=None)
        assert cache.swept_temps == 0
        assert temp.exists()


class TestCacheSelfHealingTelemetry:
    KEY = "ab" + "1" * 62

    def _commit(self, cache, payload=None):
        cache.put(self.KEY, payload or _entry_payload())
        return os.path.join(str(cache.directory), self.KEY[:2],
                            self.KEY + ".json")

    def test_truncated_entry_counts_deletes_and_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = self._commit(cache)
        with open(path, "w") as handle:
            handle.write('{"schema": "repro-run/2", "metr')
        assert cache.get(self.KEY) is None
        assert cache.corrupted == 1
        assert cache.misses == 1
        assert not os.path.exists(path)    # quarantined by deletion
        cache.put(self.KEY, _entry_payload())
        assert cache.get(self.KEY) is not None
        assert cache.hits == 1

    def test_wrong_schema_entry_is_corruption_not_a_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = self._commit(cache, dict(_entry_payload(),
                                        schema="repro-run/1"))
        assert cache.get(self.KEY) is None
        assert cache.corrupted == 1
        assert not os.path.exists(path)

    def test_entry_without_metrics_dict_is_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._commit(cache, dict(_entry_payload(), metrics=None))
        assert cache.get(self.KEY) is None
        assert cache.corrupted == 1

    def test_concurrent_writer_race_vanished_file_still_heals(
            self, tmp_path, monkeypatch):
        """A concurrent writer may heal or delete a corrupt entry between
        our open and our remove; the file being gone must read as
        success, not an error."""
        cache = ResultCache(tmp_path)
        path = self._commit(cache)
        with open(path, "w") as handle:
            handle.write("{not json")

        real_remove = os.remove

        def racing_remove(target, *args, **kwargs):
            real_remove(target, *args, **kwargs)   # the other writer won
            raise FileNotFoundError(target)

        monkeypatch.setattr(orchestrate.os, "remove", racing_remove)
        assert cache.get(self.KEY) is None          # no exception escapes
        assert cache.corrupted == 1


# ---------------------------------------------------------------------------
# Supervisor: recovery, quarantine, determinism of failure records
# ---------------------------------------------------------------------------

class TestSupervisorRecovery:
    def test_worker_kill_recovers_with_worker_crash_record(self):
        plan = ChaosPlan(faults={1: "kill"})
        run = run_campaign(list(SMALL), jobs=2, chaos=plan, **FAST)
        result = run.results[1]
        assert result.passed
        assert [record["kind"] for record in result.attempts] == \
            ["worker_crash"]
        assert all(r.passed for r in run.results)
        assert run.retried_count == 1 and run.failed_count == 0

    def test_hung_task_recovers_with_timeout_record(self):
        plan = ChaosPlan(faults={0: "hang"}, hang_seconds=30.0)
        run = run_campaign(list(SMALL), jobs=2, chaos=plan,
                           task_timeout=0.6, **FAST)
        result = run.results[0]
        assert result.passed
        assert result.attempts[0]["kind"] == "timeout"
        assert "0.60s" in result.attempts[0]["error"]

    def test_persistent_fault_quarantines_after_attempt_budget(self):
        plan = ChaosPlan(faults={1: "transient"}, persistent=True)
        run = run_campaign(list(SMALL), jobs=2, chaos=plan,
                           max_retries=1, **FAST)
        result = run.results[1]
        assert not result.passed
        assert result.failure["kind"] == "quarantined"
        assert result.failure["attempts"] == 2
        assert [record["kind"] for record in result.attempts] == \
            ["task_error", "task_error"]
        assert result.metrics == {}
        # A quarantined task never sinks its neighbours.
        assert run.results[0].passed and run.results[2].passed
        assert run.failed_count == 1

    def test_failure_records_are_byte_deterministic_across_jobs(self):
        plan = ChaosPlan(faults={0: "kill", 2: "transient"})
        runs = [run_campaign(list(SMALL), jobs=jobs, chaos=plan, **FAST)
                for jobs in (1, 3)]
        texts = {dump_bench_json(run.results, sweep="t") for run in runs}
        assert len(texts) == 1

    def test_bench_document_with_failures_validates(self, tmp_path):
        plan = ChaosPlan(faults={0: "transient"}, persistent=True)
        run = run_campaign(list(SMALL), jobs=2, chaos=plan,
                           max_retries=0, **FAST)
        document = validate_bench_json(
            json.loads(dump_bench_json(run.results, sweep="t")))
        assert document["results"][0]["failure"]["kind"] == "quarantined"


class TestSpawnStartMethod:
    def test_kill_recovery_under_spawn(self):
        """The fleet works under spawn: tasks travel as plain dicts and
        the worker entry point is importable, so a SIGKILLed worker is
        respawned and its task retried exactly as under fork."""
        plan = ChaosPlan(faults={0: "kill"})
        run = run_campaign(list(SMALL), jobs=2, chaos=plan,
                           start_method="spawn", **FAST)
        assert all(result.passed for result in run.results)
        assert [record["kind"] for record in run.results[0].attempts] == \
            ["worker_crash"]


# ---------------------------------------------------------------------------
# Journal: crash-safety and resume equivalence
# ---------------------------------------------------------------------------

class TestJournal:
    def _serialized(self):
        return [request.to_dict() for request in SMALL]

    def test_record_and_load_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path, self._serialized())
        journal.start_fresh()
        journal.record(1, {"metrics": {"cycles": 7}}, {"pid": 1})
        journal.close()
        restored = CampaignJournal(tmp_path, self._serialized()).load()
        assert set(restored) == {1}
        result, sidecar = restored[1]
        assert result["metrics"] == {"cycles": 7}

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        journal = CampaignJournal(tmp_path, self._serialized())
        journal.start_fresh()
        journal.record(0, {"metrics": {}}, {})
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"index": 2, "task": "')   # crash mid-append
        restored = CampaignJournal(tmp_path, self._serialized()).load()
        assert set(restored) == {0}

    def test_edited_campaign_invalidates_the_journal(self, tmp_path):
        journal = CampaignJournal(tmp_path, self._serialized())
        journal.start_fresh()
        journal.record(0, {"metrics": {}}, {})
        journal.close()
        edited = self._serialized()
        edited.append(RunRequest("fib", {"count": 11}).to_dict())
        assert CampaignJournal(tmp_path, edited).load() == {}

    def test_task_digest_mismatch_skips_the_stale_line(self, tmp_path):
        journal = CampaignJournal(tmp_path, self._serialized())
        journal.start_fresh()
        journal.record(0, {"metrics": {}}, {})
        journal.close()
        with open(journal.path) as handle:
            text = handle.read().replace(journal.task_digests[0], "0" * 64)
        with open(journal.path, "w") as handle:
            handle.write(text)
        assert CampaignJournal(tmp_path, self._serialized()).load() == {}

    def test_start_fresh_truncates_previous_entries(self, tmp_path):
        journal = CampaignJournal(tmp_path, self._serialized())
        journal.start_fresh()
        journal.record(0, {"metrics": {}}, {})
        journal.start_fresh()
        journal.close()
        assert CampaignJournal(tmp_path, self._serialized()).load() == {}

    def test_digests_are_order_sensitive(self):
        serialized = self._serialized()
        assert campaign_digest(serialized) != \
            campaign_digest(list(reversed(serialized)))
        assert task_digest(serialized[0]) != task_digest(serialized[1])


class TestInterruptResume:
    def test_resume_reexecutes_only_unfinished_tasks_byte_identically(
            self, tmp_path):
        requests = list(SMALL) + [RunRequest("fib", {"count": 10})]
        clean = run_campaign(list(requests), jobs=2, **FAST)
        clean_bytes = dump_bench_json(clean.results, sweep="t")

        interrupting = ChaosPlan(interrupt_after=2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(list(requests), jobs=2, chaos=interrupting,
                         journal_dir=tmp_path, **FAST)

        resumed = run_campaign(list(requests), jobs=2,
                               journal_dir=tmp_path, resume=True, **FAST)
        assert resumed.resumed_count >= 2
        assert resumed.resumed_count < len(requests)
        assert dump_bench_json(resumed.results, sweep="t") == clean_bytes

    def test_fully_journaled_campaign_resumes_without_execution(
            self, tmp_path):
        first = run_campaign(list(SMALL), jobs=2, journal_dir=tmp_path,
                             **FAST)
        again = run_campaign(list(SMALL), jobs=2, journal_dir=tmp_path,
                             resume=True, **FAST)
        assert again.resumed_count == len(SMALL)
        assert all(side.get("resumed") for side in again.sidecars)
        assert (dump_bench_json(again.results, sweep="t")
                == dump_bench_json(first.results, sweep="t"))

    def test_resume_without_journal_runs_everything(self):
        run = run_campaign(list(SMALL), jobs=1, resume=True, **FAST)
        assert run.resumed_count == 0
        assert all(result.passed for result in run.results)


# ---------------------------------------------------------------------------
# ProgressSink: exception safety and verbs
# ---------------------------------------------------------------------------

class TestProgressSink:
    def test_broken_emit_never_raises(self):
        def broken(_line):
            raise RuntimeError("sink is broken")

        sink = ProgressSink(broken, total=2)
        sink.line("hello")
        sink.task({"workload": "fib", "params": {}}, {"wall_seconds": 0.0})
        sink.utilization([{"pid": 1, "wall_seconds": 0.1}], wall=0.1)
        assert sink.done == 1

    def test_broken_progress_does_not_sink_a_campaign(self):
        def broken(_line):
            raise RuntimeError("sink is broken")

        run = run_campaign(list(SMALL), jobs=1, progress=broken, **FAST)
        assert all(result.passed for result in run.results)

    def test_verbs_for_each_sidecar_shape(self):
        lines = []
        sink = ProgressSink(lines.append, total=4)
        task = {"workload": "fib", "params": {"count": 8}}
        sink.task(task, {"wall_seconds": 0.1, "pid": 1})
        sink.task(task, {"wall_seconds": 0.0, "pid": 1, "cached": True})
        sink.task(task, {"wall_seconds": 0.2, "pid": 2, "retried": 2})
        sink.task(task, {"wall_seconds": 0.0, "pid": 0, "failed": True})
        assert "ran" in lines[0]
        assert "cache hit" in lines[1]
        assert "after 2 retries" in lines[2]
        assert "FAILED" in lines[3]
        assert lines[3].startswith("[4/4]")

    def test_utilization_skips_resumed_tasks(self):
        lines = []
        sink = ProgressSink(lines.append, total=2)
        sink.utilization([{"pid": 1, "wall_seconds": 0.5},
                          {"pid": 2, "wall_seconds": 0.5, "resumed": True},
                          None], wall=1.0)
        assert len(lines) == 1 and "worker 1" in lines[0]


# ---------------------------------------------------------------------------
# Schema v2: failure fields under validation, legacy acceptance
# ---------------------------------------------------------------------------

class TestFailureSchema:
    def _document(self, **overrides):
        entry = dict(_entry_payload(), failure=None, attempts=[])
        entry.update(overrides)
        return {"schema": orchestrate.BENCH_SCHEMA, "sweep": "t",
                "count": 1, "results": [entry]}

    def test_valid_failure_record_passes(self):
        failure = {"kind": "quarantined", "error": "boom", "attempts": 3}
        attempts = [{"attempt": 1, "kind": "timeout", "error": "slow"}]
        validate_bench_json(self._document(failure=failure,
                                           attempts=attempts))

    def test_unknown_failure_kind_rejected(self):
        bad = {"kind": "gremlins", "error": "boom", "attempts": 1}
        with pytest.raises(ValueError, match="failure.kind"):
            validate_bench_json(self._document(failure=bad))

    def test_malformed_attempt_record_rejected(self):
        with pytest.raises(ValueError, match="attempts\\[0\\]"):
            validate_bench_json(self._document(
                attempts=[{"attempt": "one", "kind": "timeout",
                           "error": "slow"}]))

    def test_every_failure_kind_is_accepted(self):
        for kind in FAILURE_KINDS:
            validate_bench_json(self._document(
                failure={"kind": kind, "error": "x", "attempts": 1}))

    def test_legacy_v1_document_still_validates(self):
        entry = dict(_entry_payload(), schema="repro-run/1")
        entry.pop("program_digest")
        document = {"schema": "repro-bench/1", "sweep": "t", "count": 1,
                    "results": [entry]}
        validate_bench_json(document)   # no failure fields required
