"""Round-trip tests for the whole-program binary encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import EncodingError
from repro.cpu import isa
from repro.cpu.binary import (
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    load_image,
    store_image,
)
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory


def random_instructions():
    reg = st.integers(0, 31)
    freg = st.integers(0, 51)
    imm16 = st.integers(-(1 << 15), (1 << 15) - 1)
    return st.one_of(
        st.just((isa.NOP,)),
        st.just((isa.HALT,)),
        st.just((isa.RFE,)),
        st.tuples(st.just(isa.LI), reg, st.integers(-(1 << 20), (1 << 20) - 1)),
        st.tuples(st.sampled_from([isa.ADD, isa.SUB, isa.MUL, isa.AND,
                                   isa.OR, isa.XOR]), reg, reg, reg),
        st.tuples(st.sampled_from([isa.ADDI, isa.MULI, isa.SLL, isa.SRA,
                                   isa.LW, isa.SW]), reg, reg, imm16),
        st.tuples(st.sampled_from(sorted(isa.BRANCH_OPS)), reg, reg,
                  st.integers(0, (1 << 16) - 1)),
        st.tuples(st.just(isa.J), st.integers(0, (1 << 26) - 1)),
        st.tuples(st.sampled_from([isa.FLOAD, isa.FSTORE]), freg, reg,
                  st.integers(-(1 << 14), (1 << 14) - 1)),
        st.tuples(st.just(isa.FCMP), reg, freg, freg, st.integers(0, 2)),
    )


class TestInstructionRoundTrip:
    @given(random_instructions())
    @settings(max_examples=400)
    def test_round_trip(self, instruction):
        word = encode_instruction(instruction)
        assert 0 <= word < (1 << 32)
        assert decode_instruction(word) == instruction

    def test_falu_uses_the_figure3_word(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=4, sra=False)
        instruction = b.build().instructions[0]
        word = encode_instruction(instruction)
        assert (word >> 28) == 6  # the architected major opcode
        assert decode_instruction(word) == instruction

    def test_immediate_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode_instruction((isa.ADDI, 1, 2, 1 << 20))

    def test_li_range(self):
        encode_instruction((isa.LI, 1, (1 << 20) - 1))
        with pytest.raises(EncodingError):
            encode_instruction((isa.LI, 1, 1 << 21))

    def test_unknown_word_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(0x3F << 26 | 0x2000000)


class TestProgramRoundTrip:
    def build_sample(self):
        b = ProgramBuilder()
        b.li(1, 256)
        top = b.here("loop")
        b.fload(0, 1, 0)
        b.fadd(1, 0, 0)
        b.fstore(1, 1, 8)
        b.addi(2, 2, 1)
        b.li(3, 4)
        b.blt(2, 3, top)
        return b.build()

    def test_program_round_trip(self):
        program = self.build_sample()
        words = encode_program(program)
        decoded = decode_program(words)
        assert decoded.instructions == program.instructions

    @pytest.mark.parametrize("loop", [1, 3, 5, 13, 16, 21])
    def test_livermore_kernels_round_trip(self, loop):
        from repro.workloads.livermore import build_loop
        program = build_loop(loop).program
        assert decode_program(encode_program(program)).instructions == \
            program.instructions

    def test_linpack_round_trips(self):
        from repro.workloads.linpack import build_linpack
        program = build_linpack(8, "vector").program
        assert decode_program(encode_program(program)).instructions == \
            program.instructions

    def test_image_in_simulated_memory(self):
        """Store the binary image into simulator memory, read it back,
        and run the decoded program -- same result."""
        program = self.build_sample()
        memory = Memory()
        memory.write(256, 5.0)
        image_base = 64 * 1024
        words = encode_program(program)
        store_image(memory, image_base, words)
        decoded = load_image(memory, image_base, len(words))

        machine = MultiTitan(decoded, memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.run()
        assert memory.read(264) == 10.0

    @given(st.lists(random_instructions(), min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_random_program_image_round_trip(self, instructions):
        from repro.cpu.program import Program

        program = Program(list(instructions), {})
        memory = Memory()
        words = encode_program(program)
        store_image(memory, 8192, words)
        decoded = load_image(memory, 8192, len(words))
        assert decoded.instructions == program.instructions

    def test_decoded_program_times_identically(self):
        program = self.build_sample()
        decoded = decode_program(encode_program(program))

        def run(p):
            memory = Memory()
            memory.write(256, 5.0)
            machine = MultiTitan(p, memory=memory,
                                 config=MachineConfig(model_ibuffer=False))
            return machine.run().completion_cycle

        assert run(program) == run(decoded)
