"""Planted machine bugs must be found by the fuzzer, shrink to tiny
reproducers with their failure signature intact, and replay from the
triage bundle alone."""

import pytest

from repro.core.exceptions import SimulationError
from repro.cpu.machine import MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.robustness.fuzz import (
    BUGS,
    fuzz,
    install_bug,
    repro_bundle,
    run_case,
    shrink_case,
    write_bundle,
)

#: Seeds to scan per bug; every planted bug fires well before this.
SCAN_SEEDS = 40


@pytest.mark.parametrize("bug", sorted(BUGS))
def test_planted_bug_is_caught_shrunk_and_bundled(tmp_path, bug):
    campaign = fuzz(seeds=SCAN_SEEDS, base_seed=0, bug=bug, max_failures=1)
    assert campaign.failures, "planted bug %s was never detected" % bug
    failure = campaign.failures[0]
    signature = failure.result.signature

    shrunk = shrink_case(failure.case.program, failure.case.memory_words,
                         signature, bug=bug)
    minimized = shrunk.program
    assert len(minimized.instructions) <= 8, \
        "%s only shrank to %d instructions" % (bug,
                                               len(minimized.instructions))
    assert len(minimized.instructions) < shrunk.original_length

    # The minimised program still fails for the same architectural
    # reason (and passes without the bug -- the failure is the bug's).
    replay = run_case(minimized, failure.case.memory_words, bug=bug)
    assert replay.failed and replay.signature == signature
    assert run_case(minimized, failure.case.memory_words).verdict == "pass"

    bundle = str(tmp_path / bug)
    write_bundle(bundle, failure.case, failure.result, shrunk, bug=bug)
    result, meta = repro_bundle(bundle)
    assert result.failed and result.signature == meta["signature"]
    assert meta["seed"] == failure.case.seed
    assert meta["minimized_instructions"] == len(minimized.instructions)
    assert meta["repro"] == ("python -m repro.tools.cli fuzz --repro %s"
                             % bundle)


def test_bug_undo_restores_a_clean_machine():
    """install_bug's undo must fully restore -- especially the overflow
    bug, which patches a module global."""
    for bug in sorted(BUGS):
        fuzz(seeds=3, base_seed=0, bug=bug)
    clean = fuzz(seeds=5, base_seed=0)
    assert clean.clean, clean.summary()


def test_unknown_bug_is_rejected():
    builder = ProgramBuilder()
    machine = MultiTitan(builder.build())
    with pytest.raises(SimulationError, match="unknown planted bug"):
        install_bug(machine, "no-such-bug")


def test_shrink_respects_attempt_budget():
    campaign = fuzz(seeds=SCAN_SEEDS, base_seed=0,
                    bug="off-by-one-stride", max_failures=1)
    failure = campaign.failures[0]
    shrunk = shrink_case(failure.case.program, failure.case.memory_words,
                         failure.result.signature, bug="off-by-one-stride",
                         max_attempts=5)
    assert shrunk.attempts <= 5
    # Best effort only: whatever came back still has the trailing HALT.
    from repro.cpu import isa
    assert shrunk.program.instructions[-1][0] == isa.HALT
