"""Tests for the issue-slot utilization analysis."""

import pytest

from repro.analysis.utilization import analyze, stall_breakdown, utilization_report
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES


def traced_run(build, setup=None, memory=None):
    b = ProgramBuilder()
    build(b)
    machine = MultiTitan(b.build(), memory=memory,
                         config=MachineConfig(model_ibuffer=False, trace=True))
    if setup:
        setup(machine)
    result = machine.run()
    return machine, result


class TestAnalyze:
    def test_pure_vector_occupies_only_the_alu_slot(self):
        machine, result = traced_run(lambda b: b.fadd(16, 0, 8, vl=8))
        utilization = analyze(machine.trace, result.completion_cycle)
        assert utilization.alu_elements == 8
        assert utilization.memory_ops == 0
        assert utilization.dual_issue_cycles == 0

    def test_dual_issue_counted(self):
        memory = Memory()
        arena = Arena(memory, base=64)
        data = arena.alloc_array([1.0] * 8)

        def build(b):
            b.fadd(16, 0, 8, vl=8)
            for i in range(7):
                b.fload(32 + i, 1, i * WORD_BYTES)

        machine, result = traced_run(
            build, memory=memory,
            setup=lambda m: (m.iregs.__setitem__(1, data),
                             m.dcache.warm_range(data, 64)))
        utilization = analyze(machine.trace, result.completion_cycle)
        assert utilization.dual_issue_cycles >= 6
        assert utilization.operations_per_cycle > 1.2

    def test_occupancy_bounds(self):
        machine, result = traced_run(lambda b: b.fadd(2, 0, 1))
        utilization = analyze(machine.trace, result.completion_cycle)
        assert 0.0 <= utilization.alu_occupancy <= 1.0
        assert 0.0 <= utilization.dual_issue_rate <= 1.0

    def test_empty_trace(self):
        utilization = analyze([], 0)
        assert utilization.operations_per_cycle == 0.0


class TestReport:
    def test_stall_breakdown_sorted(self):
        machine, result = traced_run(lambda b: [b.fadd(16, 0, 8, vl=8),
                                                b.fadd(32, 0, 8, vl=1)])
        breakdown = stall_breakdown(result.stats)
        counts = list(breakdown.values())
        assert counts == sorted(counts, reverse=True)
        assert breakdown["ALU IR busy"] == 7

    def test_report_text(self):
        machine, result = traced_run(lambda b: b.fadd(16, 0, 8, vl=4))
        text = utilization_report(machine.trace, result)
        assert "operations per cycle" in text
        assert "ALU slot occupancy" in text
