"""The campaign service: protocol validation, admission control
(backpressure, quotas, dedup), lifecycle endpoints, streaming, drain.

The heavy chaos-under-load scenarios (worker SIGKILL over HTTP, submit
floods, slow clients, drain + journal resume with byte-identity) live
in :func:`repro.robustness.chaos.run_service_chaos`; these tests pin
the protocol and every admission/lifecycle decision deterministically.
"""

import http.client
import json

import pytest

from repro.api import RunRequest
from repro.orchestrate import dump_bench_json, run_campaign
from repro.service import protocol
from repro.service.client import (ServiceClient, ServiceError,
                                  ServiceOverloaded)
from repro.service.server import CampaignService, ServiceThread, TokenBucket

# Service campaigns execute on executor threads; chaos-faulted ones then
# fork workers from a threaded process, which Python 3.12 deprecates.
pytestmark = pytest.mark.filterwarnings(
    "ignore:.*fork.*:DeprecationWarning")

SMALL = [
    RunRequest("fib", {"count": 8}),
    RunRequest("reduction", {"strategy": "scalar_tree"}),
]

#: A short watchdog deadline so hang-faulted campaigns stay in flight
#: long enough to observe, then recover quickly.
DEADLINE = 0.8


def _thread(tmp_path, **kwargs):
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("journal_dir", str(tmp_path / "journal"))
    kwargs.setdefault("retry_base", 0.01)
    kwargs.setdefault("drain_grace", 0.2)
    return ServiceThread(**kwargs)


def _hang_submit(client, requests=None, **options):
    """Submit a campaign pinned in flight for ~DEADLINE seconds (hang
    fault on task 0, recovered by the watchdog + retry)."""
    options.setdefault("chaos", {"faults": {"0": "hang"}})
    options.setdefault("deadline_seconds", DEADLINE)
    return client.submit(requests or [RunRequest("fib", {"count": 9})],
                         **options)


class TestProtocol:
    def test_submit_body_round_trips_requests(self):
        body = protocol.submit_body(SMALL, options={"jobs": 2})
        serialized, options = protocol.parse_submit(body)
        assert serialized == [request.to_dict() for request in SMALL]
        assert options == {"jobs": 2}

    def test_campaign_id_is_the_journal_digest(self):
        from repro.journal import campaign_digest

        serialized = [request.to_dict() for request in SMALL]
        assert protocol.campaign_id(serialized) == \
            campaign_digest(serialized)

    def test_schema_tag_required(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit({"requests": [SMALL[0].to_dict()]})

    def test_empty_requests_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit({"schema": protocol.SERVICE_SCHEMA,
                                   "requests": []})

    def test_unknown_workload_rejected_at_the_boundary(self):
        body = {"schema": protocol.SERVICE_SCHEMA,
                "requests": [{"workload": "no-such-workload", "params": {}}]}
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit(body)

    def test_unknown_option_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown option"):
            protocol.validate_options({"bogus": 1})

    def test_deadline_must_be_positive(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_options({"deadline_seconds": 0})

    def test_chaos_option_validates_fault_kinds(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_options({"chaos": {"faults": {"0": "nuke"}}})
        plan = protocol.validate_options(
            {"chaos": {"faults": {0: "kill"}, "persistent": False}})
        assert plan["chaos"]["faults"] == {"0": "kill"}

    def test_oversized_campaign_is_413(self):
        body = protocol.submit_body(SMALL)
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.parse_submit(body, max_requests=1)
        assert info.value.status == 413
        assert info.value.code == "too_large"

    def test_sse_frames_round_trip(self):
        events = [{"event": "task", "index": 1}, {"event": "state",
                                                  "state": "done"}]
        blob = b"".join(protocol.format_sse(event) for event in events)

        class Stream:
            def __init__(self, data):
                self.data = data
                self.pos = 0

            def read(self, n):
                chunk = self.data[self.pos:self.pos + n]
                self.pos += n
                return chunk

        assert list(protocol.iter_sse(Stream(blob))) == events


class TestTokenBucket:
    def test_burst_then_deplete_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.admit(0.0) == (True, 0.0)
        assert bucket.admit(0.0) == (True, 0.0)
        admitted, retry = bucket.admit(0.0)
        assert not admitted and retry == pytest.approx(1.0)
        admitted, _ = bucket.admit(1.0)
        assert admitted

    def test_refill_is_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.admit(0.0)[0]
        assert bucket.admit(100.0)[0]
        assert not bucket.admit(100.0)[0]


class TestLifecycle:
    def test_run_wait_result_byte_identical_to_local_run(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            final = client.run(SMALL, seed=1989)
            assert final["state"] == "done"
            assert final["done"] == len(SMALL)
            text = client.result_text(final["campaign"])
        local = run_campaign(list(SMALL), jobs=1,
                             cache_dir=str(tmp_path / "cache-local"),
                             retry_base=0.01, seed=1989)
        assert text == dump_bench_json(local.results, sweep="service")

    def test_identical_resubmission_deduplicates(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            first = client.run(SMALL)
            again = client.submit(SMALL)
            assert again["campaign"] == first["campaign"]
            assert again["deduplicated"] is True
            assert again["state"] == "done"
            health = client.health()
            assert health["counters"]["submitted"] == 1
            assert health["counters"]["deduplicated"] == 1

    def test_unknown_campaign_is_404(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            with pytest.raises(ServiceError) as info:
                client.status("f" * 64)
            assert info.value.status == 404
            assert info.value.code == "not_found"

    def test_result_before_done_is_409_with_status(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            submitted = _hang_submit(client)
            with pytest.raises(ServiceError) as info:
                client.result_text(submitted["campaign"])
            assert info.value.status == 409
            client.wait(submitted["campaign"])

    def test_cancel_in_flight_campaign(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            # Two tasks with the hang on the first: the abort request
            # always lands before the campaign can complete.
            submitted = _hang_submit(client, [
                RunRequest("fib", {"count": 9}),
                RunRequest("fib", {"count": 10})])
            body = client.cancel(submitted["campaign"])
            assert body["state"] in ("cancelled", "running")
            final = client.wait(submitted["campaign"])
            assert final["state"] == "cancelled"
            with pytest.raises(ServiceError) as info:
                client.cancel(submitted["campaign"])
            assert info.value.status == 409

    def test_sse_stream_reports_tasks_then_terminal_state(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            submitted = _hang_submit(client)
            events = list(client.events(submitted["campaign"], timeout=30.0))
        kinds = [event.get("event") for event in events]
        assert "task" in kinds
        assert events[-1].get("state") == "done"

    def test_health_document_shape(self, tmp_path):
        with _thread(tmp_path) as srv:
            health = ServiceClient(port=srv.port).health()
        assert health["schema"] == protocol.SERVICE_SCHEMA
        assert health["state"] == "serving"
        assert set(health["counters"]) >= {"submitted", "completed",
                                           "rejected_overload",
                                           "rejected_quota"}


class TestAdmissionControl:
    def test_task_budget_backpressure_is_429_with_retry_after(
            self, tmp_path):
        with _thread(tmp_path, max_pending_tasks=1) as srv:
            client = ServiceClient(port=srv.port)
            with pytest.raises(ServiceOverloaded) as info:
                client.submit(SMALL)  # two tasks against a budget of one
            assert info.value.status == 429
            assert info.value.code == "overloaded"
            assert info.value.retry_after and info.value.retry_after > 0

    def test_oversized_campaign_is_rejected_over_http(self, tmp_path):
        with _thread(tmp_path, max_requests=1) as srv:
            client = ServiceClient(port=srv.port)
            with pytest.raises(ServiceError) as info:
                client.submit(SMALL)
            assert info.value.status == 413

    def test_quota_limits_one_client_not_another(self, tmp_path):
        with _thread(tmp_path, quota_rate=0.001, quota_burst=1) as srv:
            flooder = ServiceClient(port=srv.port, client_id="flooder")
            other = ServiceClient(port=srv.port, client_id="other")
            flooder.submit([RunRequest("fib", {"count": 8})])
            with pytest.raises(ServiceOverloaded) as info:
                flooder.submit([RunRequest("fib", {"count": 9})])
            assert info.value.code == "quota_exceeded"
            assert info.value.retry_after > 0
            other.submit([RunRequest("fib", {"count": 10})])

    def test_submit_with_retry_honors_retry_after(self, tmp_path):
        waits = []
        with _thread(tmp_path, max_pending_tasks=1) as srv:
            client = ServiceClient(port=srv.port)
            with pytest.raises(ServiceOverloaded):
                client.submit_with_retry(SMALL, attempts=3,
                                         sleep=waits.append)
        assert len(waits) == 3
        assert all(wait > 0 for wait in waits)


class TestHttpEdges:
    def _raw(self, port, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
        try:
            conn.request(method, path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_unknown_path_is_404(self, tmp_path):
        with _thread(tmp_path) as srv:
            status, _ = self._raw(srv.port, "GET", "/v1/nonsense")
        assert status == 404

    def test_wrong_method_is_405(self, tmp_path):
        with _thread(tmp_path) as srv:
            status, _ = self._raw(srv.port, "DELETE", "/v1/campaigns")
        assert status == 405

    def test_malformed_json_body_is_400(self, tmp_path):
        with _thread(tmp_path) as srv:
            status, data = self._raw(srv.port, "POST", "/v1/campaigns",
                                     body=b"{not json")
        assert status == 400
        assert json.loads(data)["error"]["code"] == "bad_request"


class TestDrainAndResume:
    def test_drain_interrupts_and_refuses_new_work(self, tmp_path):
        srv = _thread(tmp_path).start()
        try:
            client = ServiceClient(port=srv.port)
            submitted = _hang_submit(client)
            srv.drain(grace=0.1)
            status = client.status(submitted["campaign"])
            assert status["state"] in ("interrupted", "done")
            if status["state"] == "interrupted":
                assert "resume_hint" in status
            with pytest.raises(ServiceError) as info:
                client.submit(SMALL)
            assert info.value.status == 503
            assert info.value.code == "draining"
        finally:
            srv.stop()

    def test_resubmission_after_drain_resumes_from_journal(self, tmp_path):
        requests = [RunRequest("fib", {"count": 8 + index})
                    for index in range(3)]
        chaos = {"faults": {"1": "hang"}}
        srv = _thread(tmp_path).start()
        try:
            client = ServiceClient(port=srv.port)
            submitted = _hang_submit(client, requests, chaos=chaos)
            srv.drain(grace=0.1)
        finally:
            srv.stop()
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            resumed = client.submit(requests, chaos=chaos,
                                    deadline_seconds=DEADLINE)
            assert resumed["campaign"] == submitted["campaign"]
            final = client.wait(resumed["campaign"])
            assert final["state"] == "done"
            text = client.result_text(final["campaign"])
        local = run_campaign(
            list(requests), jobs=1, task_timeout=DEADLINE, retry_base=0.01,
            cache_dir=str(tmp_path / "cache-local"), seed=1989,
            chaos=_plan(chaos))
        assert text == dump_bench_json(local.results, sweep="service")

    def test_fresh_option_ignores_the_journal(self, tmp_path):
        with _thread(tmp_path) as srv:
            client = ServiceClient(port=srv.port)
            final = client.run(SMALL, fresh=True)
            assert final["state"] == "done"
            assert final["resumed"] == 0


def _plan(chaos_option):
    from repro.robustness.chaos import ChaosPlan

    return ChaosPlan(faults={int(k): v for k, v
                             in chaos_option["faults"].items()})


class TestServiceCore:
    def test_constructor_normalizes_bounds(self, tmp_path):
        service = CampaignService(jobs=0, max_active=0,
                                  cache_dir=tmp_path / "c")
        assert service.jobs == 1
        assert service.max_active == 1
        assert service.cache_dir == str(tmp_path / "c")
