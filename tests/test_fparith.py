"""Bit-accuracy tests for the add, multiply, reciprocal, and division
units against host IEEE-754 arithmetic."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fparith import fp64
from repro.fparith.add import classify_path, fp_add, fp_sub
from repro.fparith.division import (
    DIVIDE_LATENCY_CYCLES,
    DIVIDE_STEPS,
    divide,
    divide_schedule,
    iteration_step,
)
from repro.fparith.integer_ops import (
    INT64_MAX,
    INT64_MIN,
    float_from_int,
    integer_multiply,
    truncate_to_int,
)
from repro.fparith.multiply import booth_partial_products, chunky_tree_sum, fp_mul
from repro.fparith.reciprocal import GUARANTEED_BITS, recip_approx, recip_approx_bits

finite = st.floats(allow_nan=False, allow_infinity=False)
normalish = st.floats(min_value=-1e300, max_value=1e300,
                      allow_nan=False, allow_infinity=False)


def bits(x):
    return fp64.float_to_bits(x)


def val(b):
    return fp64.bits_to_float(b)


class TestAddUnit:
    @given(finite, finite)
    @settings(max_examples=500)
    def test_matches_host_addition(self, a, b):
        got = val(fp_add(bits(a), bits(b)))
        want = a + b
        assert got == want or (math.isnan(got) and math.isnan(want))

    @given(finite, finite)
    @settings(max_examples=300)
    def test_matches_host_subtraction(self, a, b):
        got = val(fp_sub(bits(a), bits(b)))
        want = a - b
        assert got == want or (math.isnan(got) and math.isnan(want))

    def test_near_path_selected_for_close_subtraction(self):
        assert classify_path(bits(1.5), bits(-1.25)) == "near"

    def test_far_path_selected_for_addition(self):
        assert classify_path(bits(1.5), bits(1.25)) == "far"

    def test_far_path_selected_for_distant_subtraction(self):
        assert classify_path(bits(1024.0), bits(-1.0)) == "far"

    def test_cancellation_to_zero_is_positive(self):
        assert fp_add(bits(1.5), bits(-1.5)) == fp64.POS_ZERO

    def test_inf_plus_inf(self):
        assert fp_add(fp64.POS_INF, fp64.POS_INF) == fp64.POS_INF

    def test_inf_minus_inf_is_nan(self):
        assert fp64.is_nan(fp_add(fp64.POS_INF, fp64.NEG_INF))

    def test_nan_propagates(self):
        assert fp64.is_nan(fp_add(fp64.QNAN, bits(1.0)))

    def test_signed_zeros(self):
        assert fp_add(fp64.NEG_ZERO, fp64.NEG_ZERO) == fp64.NEG_ZERO
        assert fp_add(fp64.POS_ZERO, fp64.NEG_ZERO) == fp64.POS_ZERO

    def test_sticky_subtraction(self):
        # A subtraction whose subtrahend contributes only sticky bits.
        a, b = 1.0, 1e-30
        assert val(fp_sub(bits(a), bits(b))) == a - b

    @given(st.floats(min_value=1e-308, max_value=1e308))
    @settings(max_examples=200)
    def test_x_minus_x_is_zero(self, x):
        assert fp_sub(bits(x), bits(x)) == fp64.POS_ZERO

    def test_subnormal_sum(self):
        a = 5e-324
        assert val(fp_add(bits(a), bits(a))) == a + a

    def test_overflow_rounds_to_infinity(self):
        big = math.ldexp(1.9999999, 1023)
        assert fp64.is_inf(fp_add(bits(big), bits(big)))


class TestMultiplyUnit:
    @given(finite, finite)
    @settings(max_examples=500)
    def test_matches_host_multiplication(self, a, b):
        got = val(fp_mul(bits(a), bits(b)))
        want = a * b
        assert got == want or (math.isnan(got) and math.isnan(want))

    @given(st.integers(0, (1 << 60) - 1), st.integers(0, (1 << 60) - 1))
    @settings(max_examples=300)
    def test_booth_recoding_is_exact(self, a, b):
        assert chunky_tree_sum(booth_partial_products(a, b)) == a * b

    def test_chunky_tree_empty(self):
        assert chunky_tree_sum([]) == 0

    def test_zero_times_inf_is_nan(self):
        assert fp64.is_nan(fp_mul(fp64.POS_ZERO, fp64.POS_INF))

    def test_sign_of_zero_product(self):
        assert fp_mul(bits(-1.0), fp64.POS_ZERO) == fp64.NEG_ZERO

    def test_underflow_to_subnormal(self):
        a = 1e-200
        b = 1e-150
        assert val(fp_mul(bits(a), bits(b))) == a * b

    def test_overflow_to_infinity(self):
        assert fp64.is_inf(fp_mul(bits(1e300), bits(1e300)))


class TestReciprocalUnit:
    @given(st.floats(min_value=1e-300, max_value=1e300))
    @settings(max_examples=500)
    def test_sixteen_bit_accuracy(self, x):
        approx = recip_approx(x)
        assert abs(approx * x - 1.0) < 2.0 ** -GUARANTEED_BITS

    @given(st.floats(min_value=1e-300, max_value=1e300))
    @settings(max_examples=100)
    def test_negative_inputs_mirror(self, x):
        assert recip_approx(-x) == -recip_approx(x)

    def test_one_is_nearly_exact(self):
        assert abs(recip_approx(1.0) - 1.0) < 1e-4

    def test_powers_of_two_exact_exponent(self):
        for exponent in (-10, -1, 0, 1, 10, 100):
            x = math.ldexp(1.0, exponent)
            assert abs(recip_approx(x) * x - 1.0) < 2.0 ** -GUARANTEED_BITS

    def test_zero_gives_infinity(self):
        assert recip_approx(0.0) == math.inf
        assert recip_approx(-0.0) == -math.inf

    def test_infinity_gives_zero(self):
        assert recip_approx(math.inf) == 0.0

    def test_nan_propagates(self):
        assert math.isnan(recip_approx(float("nan")))

    def test_subnormal_overflows(self):
        assert recip_approx(5e-324) == math.inf


class TestDivision:
    def test_schedule_has_six_steps(self):
        assert len(divide_schedule(1.0, 3.0)) == DIVIDE_STEPS == 6

    def test_latency_is_eighteen_cycles(self):
        assert DIVIDE_LATENCY_CYCLES == 18

    def test_iteration_step(self):
        assert iteration_step(2.0, 0.5) == 1.0

    @given(st.floats(min_value=-1e150, max_value=1e150),
           st.floats(min_value=1e-150, max_value=1e150))
    @settings(max_examples=500)
    def test_few_ulp_accuracy(self, a, b):
        want = a / b
        got = divide(a, b)
        if want == 0.0:
            assert got == 0.0
            return
        assert abs((got - want) / want) < 1e-13

    def test_converges_from_sixteen_bits(self):
        # After two Newton iterations the error must be far below the
        # raw approximation's 2^-16.
        q = divide(1.0, 3.0)
        assert abs(q - 1.0 / 3.0) < 1e-15


class TestIntegerOps:
    @given(st.integers(INT64_MIN, INT64_MAX))
    def test_float_conversion(self, value):
        assert float_from_int(value) == float(value)

    @given(st.floats(min_value=-1e15, max_value=1e15))
    def test_truncate_toward_zero(self, value):
        assert truncate_to_int(value) == int(value)

    def test_truncate_nan_is_zero(self):
        assert truncate_to_int(float("nan")) == 0

    def test_truncate_saturates(self):
        assert truncate_to_int(1e300) == INT64_MAX
        assert truncate_to_int(-1e300) == INT64_MIN

    @given(st.integers(-(1 << 40), 1 << 40), st.integers(-(1 << 20), 1 << 20))
    def test_integer_multiply_small(self, a, b):
        assert integer_multiply(a, b) == a * b

    def test_integer_multiply_wraps(self):
        assert integer_multiply(1 << 63, 2) == 0
        assert integer_multiply(INT64_MAX, 2) == -2
