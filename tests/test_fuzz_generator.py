"""The fuzzer's generator contract: every generated program is valid by
construction -- it assembles, round-trips through source text,
terminates under the watchdog, and runs divergence-free against the
functional reference on a correct machine."""

from repro.cpu.assembler import assemble
from repro.robustness.fuzz import (
    COVERAGE_UNIVERSE,
    CoverageMap,
    generate_case,
    run_case,
)

SEEDS = 500


def test_500_seeds_valid_roundtrip_and_divergence_free():
    """The headline guarantee, end to end over 500 seeds.

    Each generated case must (a) render to assembler text that
    reassembles to the identical instruction tuples, and (b) pass a
    full differential run -- reference prerun, lockstep checker,
    per-cycle invariant audits, watchdog -- with zero findings.  The
    campaign's coverage map feeds back into generation, and must end
    well above the CI floor.
    """
    coverage = CoverageMap()
    for seed in range(SEEDS):
        case = generate_case(seed, coverage=coverage)
        reassembled = assemble(case.program.to_source())
        assert reassembled.instructions == case.program.instructions, \
            "seed %d does not round-trip" % seed
        result = run_case(case.program, case.memory_words,
                          coverage=coverage)
        assert result.verdict == "pass", \
            "seed %d: %s: %s" % (seed, result.verdict,
                                 result.signature or result.error)
    assert coverage.hit_count() >= 0.8 * len(COVERAGE_UNIVERSE), \
        coverage.report()


def test_generation_is_deterministic():
    for seed in (0, 7, 123):
        first = generate_case(seed)
        second = generate_case(seed)
        assert first.program.instructions == second.program.instructions
        assert first.memory_words == second.memory_words
        assert first.strategies == second.strategies


def test_case_records_seed_and_strategy_trace():
    case = generate_case(42)
    assert case.seed == 42
    assert case.strategies, "strategy trace must not be empty"
    assert len(case.program.instructions) > 10


def test_coverage_bias_changes_generation():
    """A coverage map with unhit FPU ALU bins steers the generator:
    biased and unbiased generation from the same seed differ."""
    unbiased = generate_case(3)
    biased = generate_case(3, coverage=CoverageMap())
    assert "target_falu" in biased.strategies
    assert biased.program.instructions != unbiased.program.instructions
