"""Tests for the Mahler-like vectorizing layer: register allocation,
elementwise codegen, reductions, recurrences, and strip-mining."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import SimulationError
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES
from repro.vectorize.allocator import AllocationError, FpuRegisterPool, IntRegisterPool
from repro.vectorize.builder import VScalar, VVec, VectorKernelBuilder


class TestFpuRegisterPool:
    def test_contiguous_groups(self):
        pool = FpuRegisterPool()
        first = pool.alloc(8)
        second = pool.alloc(8)
        assert second == first + 8

    def test_exhaustion_raises_like_the_papers_compile_error(self):
        pool = FpuRegisterPool()
        pool.alloc(48)
        with pytest.raises(AllocationError):
            pool.alloc(8)

    def test_mark_release(self):
        pool = FpuRegisterPool()
        kept = pool.alloc(4)
        pool.mark()
        temp = pool.alloc(8)
        pool.release()
        assert pool.alloc(1) == temp  # temp space reclaimed

    def test_release_without_mark(self):
        with pytest.raises(AllocationError):
            FpuRegisterPool().release()

    def test_high_water_tracking(self):
        pool = FpuRegisterPool()
        pool.mark()
        pool.alloc(20)
        pool.release()
        assert pool.high_water == 20

    def test_int_pool_skips_r0(self):
        pool = IntRegisterPool()
        assert pool.alloc() == 1


def run_built(vb_user, memory=None, strict=True):
    """Build a program through a fresh builder and run it."""
    pb = ProgramBuilder()
    vb = VectorKernelBuilder(pb, vl=8)
    vb_user(pb, vb)
    machine = MultiTitan(pb.build(), memory=memory or Memory(),
                         config=MachineConfig(model_ibuffer=False,
                                              strict_hazards=strict))
    machine.run()
    return machine


class TestElementwiseCodegen:
    def test_vector_vector_op(self):
        memory = Memory()
        arena = Arena(memory, base=256)
        a = arena.alloc_array([1.0, 2.0, 3.0, 4.0])
        b_addr = arena.alloc_array([10.0, 20.0, 30.0, 40.0])
        out = arena.alloc(4)

        def emit(pb, vb):
            av = vb.array(a)
            bv = vb.array(b_addr)
            ov = vb.array(out)

            def body(vl):
                x = vb.vload(av, 0, vl=vl)
                y = vb.vload(bv, 0, vl=vl)
                vb.vstore(ov, vb.add(x, y, into=x))

            vb.strip_loop(4, body)

        run_built(emit, memory)
        assert memory.read_block(out, 4) == [11.0, 22.0, 33.0, 44.0]

    def test_scalar_vector_op_sets_stride_bits(self):
        memory = Memory()
        arena = Arena(memory, base=256)
        data = arena.alloc_array([1.0, 2.0, 3.0])
        params = arena.alloc_array([10.0])
        out = arena.alloc(3)

        def emit(pb, vb):
            dv = vb.array(data)
            pv = vb.array(params)
            ov = vb.array(out)
            scale = vb.scalar_load(pv, 0)

            def body(vl):
                x = vb.vload(dv, 0, vl=vl)
                vb.vstore(ov, vb.mul(x, scale, into=x))

            vb.strip_loop(3, body)

        run_built(emit, memory)
        assert memory.read_block(out, 3) == [10.0, 20.0, 30.0]

    def test_division_schedule(self):
        memory = Memory()
        arena = Arena(memory, base=256)
        a = arena.alloc_array([1.0, 9.0])
        b_addr = arena.alloc_array([3.0, 4.5])
        out = arena.alloc(2)

        def emit(pb, vb):
            av, bv, ov = vb.array(a), vb.array(b_addr), vb.array(out)

            def body(vl):
                x = vb.vload(av, 0, vl=vl)
                y = vb.vload(bv, 0, vl=vl)
                vb.vstore(ov, vb.div(x, y))

            vb.strip_loop(2, body)

        run_built(emit, memory)
        got = memory.read_block(out, 2)
        assert got[0] == pytest.approx(1.0 / 3.0, rel=1e-13)
        assert got[1] == pytest.approx(2.0, rel=1e-13)

    def test_splat_broadcast(self):
        def emit(pb, vb):
            seven = vb.scalar_temp()
            # materialize 7.0 without memory: 0 + 0 then... use move of zero
            # and an immediate-free path: just splat zero and check shape.
            vec = vb.splat(vb.zero(), 5)
            assert vec.length == 5

        run_built(emit)

    def test_elem_accessor(self):
        vec = VVec(10, 4)
        assert vec.elem(2).reg == 12
        with pytest.raises(SimulationError):
            vec.elem(4)

    def test_length_mismatch_rejected(self):
        def emit(pb, vb):
            with pytest.raises(SimulationError):
                vb.add(VVec(0, 4), VVec(8, 8))

        run_built(emit)


class TestReductions:
    @pytest.mark.parametrize("length", [1, 2, 3, 5, 7, 8])
    def test_vsum_all_lengths(self, length):
        values = [float(i + 1) for i in range(length)]
        memory = Memory()
        arena = Arena(memory, base=256)
        data = arena.alloc_array(values)
        out = arena.alloc(1)

        def emit(pb, vb):
            dv = vb.array(data)
            ov = vb.array(out)

            def body(vl):
                x = vb.vload(dv, 0, vl=vl)
                total = vb.vsum(x)
                vb.store_elem(ov, total)

            vb.strip_loop(length, body)

        run_built(emit, memory)
        assert memory.read(out) == sum(values)

    def test_recurrence_add_prefix_sums(self):
        memory = Memory()
        arena = Arena(memory, base=256)
        data = arena.alloc_array([1.0, 2.0, 3.0, 4.0])
        out = arena.alloc(4)

        def emit(pb, vb):
            dv = vb.array(data)
            ov = vb.array(out)
            seed = vb.move(vb.zero())

            def body(vl):
                y = vb.vload(dv, 0, vl=vl)
                prefix = vb.recurrence_add(seed, y)
                vb.vstore(ov, prefix)

            vb.strip_loop(4, body)

        run_built(emit, memory)
        assert memory.read_block(out, 4) == [1.0, 3.0, 6.0, 10.0]


class TestStripMining:
    @given(st.integers(0, 40), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_lengths_and_strip_sizes(self, n, vl):
        """Copy-with-increment over any (n, vl): full strips plus the
        known-size remainder must cover every element exactly once."""
        values = [float(i) for i in range(n)]
        memory = Memory()
        arena = Arena(memory, base=256)
        data = arena.alloc_array(values) if n else arena.alloc(1)
        out = arena.alloc(max(n, 1))

        pb = ProgramBuilder()
        vb = VectorKernelBuilder(pb, vl=vl)
        dv = vb.array(data)
        ov = vb.array(out)

        def body(effective_vl):
            x = vb.vload(dv, 0, vl=effective_vl)
            y = vb.add(x, x, into=x)
            vb.vstore(ov, y)

        vb.strip_loop(n, body)
        machine = MultiTitan(pb.build(), memory=memory,
                             config=MachineConfig(model_ibuffer=False,
                                                  strict_hazards=True))
        machine.run()
        assert memory.read_block(out, n) == [2.0 * v for v in values] if n \
            else True

    def test_negative_count_rejected(self):
        def emit(pb, vb):
            with pytest.raises(SimulationError):
                vb.strip_loop(-1, lambda vl: None)

        run_built(emit)

    def test_strided_array_advance(self):
        """step=2 arrays advance 2*vl words per strip."""
        n = 6
        values = [float(i) for i in range(2 * n)]
        memory = Memory()
        arena = Arena(memory, base=256)
        data = arena.alloc_array(values)
        out = arena.alloc(n)

        def emit(pb, vb):
            dv = vb.array(data, step=2)
            ov = vb.array(out)

            def body(vl):
                x = vb.vload(dv, 0, vl=vl)  # every second element
                vb.vstore(ov, vb.add(x, x, into=x))

            vb.vl = 4
            vb.strip_loop(n, body)

        run_built(emit, memory)
        assert memory.read_block(out, n) == [2.0 * values[2 * i] for i in range(n)]

    def test_element_loop_restores_vl(self):
        def emit(pb, vb):
            vb.element_loop(3, lambda: None)
            assert vb.vl == 8

        run_built(emit)

    def test_loop_counter_registers_are_reused(self):
        pb = ProgramBuilder()
        vb = VectorKernelBuilder(pb, vl=2)
        before = vb.ints._next
        for _ in range(10):
            vb.strip_loop(6, lambda vl: None)
        assert vb.ints._next <= before + 2


class TestKernelHazardFreedom:
    """Generated code must never rely on racy load/store ordering: the
    strict hazard checker must stay silent for every Livermore kernel."""

    @pytest.mark.parametrize("loop", list(range(1, 25)))
    def test_livermore_strict(self, loop):
        from repro.workloads.livermore import build_loop
        kernel = build_loop(loop)
        machine = MultiTitan(kernel.program, memory=kernel.memory,
                             config=MachineConfig(model_ibuffer=False,
                                                  strict_hazards=True))
        machine.run()
        assert machine.fpu.hazard_warnings == []
