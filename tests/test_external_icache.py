"""Tests for the two-level instruction path of Figure 1."""

import pytest

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder


def straightline_program(count=600):
    """More instructions than the 2 KB buffer (512 slots) can hold."""
    b = ProgramBuilder()
    for _ in range(count):
        b.addi(2, 2, 1)
    return b.build()


def looped_program(body=600, passes=2):
    b = ProgramBuilder()
    b.li(3, 0)
    b.li(4, passes)
    top = b.here("top")
    for _ in range(body):
        b.addi(2, 2, 1)
    b.addi(3, 3, 1)
    b.blt(3, 4, top)
    return b.build()


class TestTwoLevelInstructionPath:
    def test_external_cache_off_by_default(self):
        machine = MultiTitan(straightline_program(),
                             config=MachineConfig(model_ibuffer=True))
        machine.run()
        assert machine.icache.accesses == 0

    def test_cold_misses_cost_the_same_either_way(self):
        """First touch misses both levels: full memory penalty."""
        flat = MultiTitan(straightline_program(),
                          config=MachineConfig(model_ibuffer=True))
        two_level = MultiTitan(straightline_program(),
                               config=MachineConfig(
                                   model_ibuffer=True,
                                   model_external_icache=True))
        assert flat.run().completion_cycle == two_level.run().completion_cycle

    def test_refill_from_external_cache_is_cheap(self):
        """A loop larger than the buffer but smaller than the external
        cache thrashes the buffer; the second pass refills at the L2 hit
        penalty instead of the memory penalty."""
        config_flat = MachineConfig(model_ibuffer=True)
        config_l2 = MachineConfig(model_ibuffer=True,
                                  model_external_icache=True)
        flat = MultiTitan(looped_program(), config=config_flat)
        two_level = MultiTitan(looped_program(), config=config_l2)
        flat_cycles = flat.run().completion_cycle
        l2_cycles = two_level.run().completion_cycle
        assert l2_cycles < flat_cycles
        assert two_level.icache.hits > 0

    def test_small_loops_never_touch_the_external_cache(self):
        b = ProgramBuilder()
        b.li(3, 0)
        b.li(4, 10)
        top = b.here("top")
        b.addi(2, 2, 1)
        b.addi(3, 3, 1)
        b.blt(3, 4, top)
        machine = MultiTitan(b.build(), config=MachineConfig(
            model_ibuffer=True, model_external_icache=True))
        machine.run()
        # A couple of compulsory misses, then the 2 KB buffer holds it.
        assert machine.icache.accesses <= 2
        assert machine.iregs[2] == 10
