"""Tests for the 512-entry TLB and the section 2.1.2 page-crossing
argument (scalar loads make vector page crossings restartable for free)."""

import pytest

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory, WORD_BYTES
from repro.mem.tlb import PAGE_BYTES, TLB_ENTRIES, Tlb


class TestTlbModel:
    def test_miss_then_hit(self):
        tlb = Tlb()
        assert tlb.translate(0) == tlb.miss_penalty
        assert tlb.translate(8) == 0          # same page
        assert tlb.translate(PAGE_BYTES) == tlb.miss_penalty

    def test_512_entries_4k_pages(self):
        tlb = Tlb()
        assert tlb.entries == TLB_ENTRIES == 512
        assert tlb.page_bytes == PAGE_BYTES == 4096
        assert tlb.reach_bytes == 2 * 1024 * 1024

    def test_direct_mapped_conflict(self):
        tlb = Tlb()
        tlb.translate(0)
        tlb.translate(TLB_ENTRIES * PAGE_BYTES)  # same index, other tag
        assert tlb.translate(0) == tlb.miss_penalty

    def test_warm_range(self):
        tlb = Tlb()
        tlb.warm_range(0, 3 * PAGE_BYTES)
        for page in range(3):
            assert tlb.translate(page * PAGE_BYTES) == 0

    def test_flush_and_stats(self):
        tlb = Tlb()
        tlb.translate(0)
        tlb.translate(0)
        assert (tlb.hits, tlb.misses) == (1, 1)
        tlb.flush()
        assert tlb.translate(0) == tlb.miss_penalty
        tlb.reset_stats()
        assert (tlb.hits, tlb.misses) == (0, 0)


class TestMachineIntegration:
    def _loads_program(self, addresses):
        b = ProgramBuilder()
        for index, address in enumerate(addresses):
            b.li(1, address)
            b.fload(index, 1, 0)
        return b.build()

    def test_tlb_off_by_default(self):
        memory = Memory()
        machine = MultiTitan(self._loads_program([256]), memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.dcache.warm_range(0, 4096)
        baseline = machine.run().completion_cycle
        assert machine.tlb.misses == 0
        assert baseline <= 4

    def test_tlb_miss_penalty_applies(self):
        memory = Memory()
        config = MachineConfig(model_ibuffer=False, model_tlb=True)
        machine = MultiTitan(self._loads_program([256]), memory=memory,
                             config=config)
        machine.dcache.warm_range(0, 4096)
        result = machine.run()
        assert machine.tlb.misses == 1
        assert result.completion_cycle >= config.tlb_miss_penalty

    def test_warm_tlb_costs_nothing(self):
        memory = Memory()
        config = MachineConfig(model_ibuffer=False, model_tlb=True)
        machine = MultiTitan(self._loads_program([256, 264, 272]),
                             memory=memory, config=config)
        machine.dcache.warm_range(0, 4096)
        machine.tlb.warm_range(0, 4096)
        result = machine.run()
        assert machine.tlb.misses == 0

    def test_page_crossing_vector_is_just_scalar_loads(self):
        """Section 2.1.2: a 'vector' spanning a page boundary needs no
        restart state -- each element load translates on its own, and the
        second page simply pays one more TLB miss."""
        memory = Memory()
        base = PAGE_BYTES - 4 * WORD_BYTES  # last 4 words of page 0
        for index in range(8):
            memory.write(base + index * WORD_BYTES, float(index + 1))
        b = ProgramBuilder()
        for index in range(8):             # crosses into page 1 at i=4
            b.fload(index, 1, index * WORD_BYTES)
        config = MachineConfig(model_ibuffer=False, model_tlb=True)
        machine = MultiTitan(b.build(), memory=memory, config=config)
        machine.iregs[1] = base
        machine.dcache.warm_range(base, 8 * WORD_BYTES)
        machine.run()
        assert machine.tlb.misses == 2     # one per page, nothing special
        assert machine.fpu.regs.read_group(0, 8) == \
            [float(i + 1) for i in range(8)]

    def test_stores_and_integer_accesses_translate(self):
        memory = Memory()
        b = ProgramBuilder()
        b.li(1, 256)
        b.fstore(0, 1, 0)
        b.li(2, 2 * PAGE_BYTES)
        b.sw(3, 2, 0)
        b.lw(4, 2, 8)
        config = MachineConfig(model_ibuffer=False, model_tlb=True)
        machine = MultiTitan(b.build(), memory=memory, config=config)
        machine.dcache.warm_range(0, 3 * PAGE_BYTES)
        machine.run()
        assert machine.tlb.misses == 2     # page 0 and page 2
        assert machine.tlb.hits == 1
