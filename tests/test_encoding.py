"""Instruction format tests (Figure 3 and the coprocessor bus)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import (
    AluInstruction,
    LoadStoreInstruction,
    MAX_VECTOR_LENGTH,
    NUM_REGISTERS,
    decode_alu,
    decode_load_store,
    disassemble_alu,
    encode_alu,
    encode_load_store,
)
from repro.core.exceptions import EncodingError, ReservedOperationError
from repro.core.types import Op, Unit, op_for, unit_func_for


def alu_instructions():
    """Strategy generating only encodable instructions."""
    defined = [(1, 0), (1, 1), (1, 2), (1, 3), (2, 0), (2, 1), (2, 2), (3, 0)]

    @st.composite
    def build(draw):
        unit, func = draw(st.sampled_from(defined))
        vl = draw(st.integers(1, MAX_VECTOR_LENGTH))
        stride_ra = draw(st.booleans())
        stride_rb = draw(st.booleans())
        rr = draw(st.integers(0, NUM_REGISTERS - vl))
        ra_max = NUM_REGISTERS - (vl if stride_ra else 1)
        rb_max = NUM_REGISTERS - (vl if stride_rb else 1)
        ra = draw(st.integers(0, ra_max))
        rb = draw(st.integers(0, rb_max))
        return AluInstruction(rr=rr, ra=ra, rb=rb, unit=unit, func=func,
                              vector_length=vl, stride_ra=stride_ra,
                              stride_rb=stride_rb)

    return build()


class TestAluEncoding:
    @given(alu_instructions())
    def test_round_trip(self, instruction):
        assert decode_alu(encode_alu(instruction)) == instruction

    @given(alu_instructions())
    def test_word_is_32_bits(self, instruction):
        word = encode_alu(instruction)
        assert 0 <= word < (1 << 32)

    def test_known_encoding_fields(self):
        instruction = AluInstruction(rr=14, ra=12, rb=13, unit=1, func=0,
                                     vector_length=1)
        word = encode_alu(instruction)
        assert word & 1          # SRb
        assert (word >> 1) & 1   # SRa
        assert (word >> 2) & 0xF == 0   # VL-1
        assert (word >> 22) & 0x3F == 14

    def test_scalar_is_vector_of_length_one(self):
        instruction = AluInstruction(rr=0, ra=1, rb=2, unit=1, func=0)
        assert instruction.vector_length == 1

    def test_vector_overflowing_register_file_rejected(self):
        with pytest.raises(EncodingError):
            AluInstruction(rr=48, ra=0, rb=8, unit=1, func=0,
                           vector_length=8).validate()

    def test_scalar_source_beyond_file_rejected(self):
        with pytest.raises(EncodingError):
            AluInstruction(rr=0, ra=52, rb=1, unit=1, func=0).validate()

    def test_scalar_source_not_range_checked_against_vl(self):
        # A non-striding source at R51 is fine even for a long vector.
        AluInstruction(rr=0, ra=51, rb=8, unit=1, func=0,
                       vector_length=8, stride_ra=False).validate()

    def test_vector_length_bounds(self):
        with pytest.raises(EncodingError):
            AluInstruction(rr=0, ra=1, rb=2, unit=1, func=0,
                           vector_length=17).validate()
        with pytest.raises(EncodingError):
            AluInstruction(rr=0, ra=1, rb=2, unit=1, func=0,
                           vector_length=0).validate()

    def test_reserved_unit_rejected(self):
        with pytest.raises(ReservedOperationError):
            AluInstruction(rr=0, ra=1, rb=2, unit=0, func=0).validate()

    def test_reserved_func_rejected(self):
        with pytest.raises(ReservedOperationError):
            AluInstruction(rr=0, ra=1, rb=2, unit=2, func=3).validate()
        with pytest.raises(ReservedOperationError):
            AluInstruction(rr=0, ra=1, rb=2, unit=3, func=1).validate()

    def test_decode_rejects_wide_word(self):
        with pytest.raises(EncodingError):
            decode_alu(1 << 32)

    def test_register_footprint(self):
        instruction = AluInstruction(rr=8, ra=0, rb=4, unit=1, func=0,
                                     vector_length=4, stride_ra=False)
        reads, writes = instruction.register_footprint()
        assert writes == {8, 9, 10, 11}
        assert reads == {0, 4, 5, 6, 7}


class TestOpMapping:
    def test_figure4_table(self):
        assert op_for(1, 0) == Op.ADD
        assert op_for(1, 1) == Op.SUB
        assert op_for(1, 2) == Op.FLOAT
        assert op_for(1, 3) == Op.TRUNC
        assert op_for(2, 0) == Op.MUL
        assert op_for(2, 1) == Op.IMUL
        assert op_for(2, 2) == Op.ITER
        assert op_for(3, 0) == Op.RECIP

    @given(st.sampled_from(list(Op)))
    def test_inverse_mapping(self, op):
        unit, func = unit_func_for(op)
        assert op_for(unit, func) == op


class TestLoadStoreEncoding:
    @given(st.booleans(), st.integers(0, NUM_REGISTERS - 1))
    def test_round_trip(self, is_store, register):
        instruction = LoadStoreInstruction(is_store=is_store, register=register)
        assert decode_load_store(encode_load_store(instruction)) == instruction

    @given(st.booleans(), st.integers(0, NUM_REGISTERS - 1))
    def test_fits_ten_bits(self, is_store, register):
        word = encode_load_store(LoadStoreInstruction(is_store, register))
        assert 0 <= word < (1 << 10)

    def test_out_of_range_register(self):
        with pytest.raises(EncodingError):
            LoadStoreInstruction(False, 52).validate()

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode_load_store(0x3C0)


class TestDisassembly:
    def test_vector_add(self):
        text = disassemble_alu(AluInstruction(rr=16, ra=0, rb=8, unit=1,
                                              func=0, vector_length=4))
        assert text == "R[16..19] := R[0..3] + R[8..11]"

    def test_scalar_broadcast(self):
        text = disassemble_alu(AluInstruction(rr=16, ra=32, rb=0, unit=2,
                                              func=0, vector_length=4,
                                              stride_ra=False))
        assert text == "R[16..19] := R32 * R[0..3]"

    def test_reciprocal(self):
        text = disassemble_alu(AluInstruction(rr=5, ra=6, rb=0, unit=3, func=0))
        assert text == "R5 := reciprocal(R6)"
