"""Disassemble/assemble round-trips over the whole opcode space.

Two layers are exercised:

* CPU instruction text: every opcode in :mod:`repro.cpu.isa` is built
  with :class:`ProgramBuilder`, rendered by ``isa.disassemble``, fed
  back through the text assembler, and compared tuple-for-tuple (FPU ALU
  instructions disassemble to the paper's notation, so their text
  round-trip uses the assembler's own mnemonics instead);
* FPU binary words: every operation/vector-length/stride combination
  round-trips through the Figure-3 32-bit codec, and both load/store
  variants through the 10-bit coprocessor-bus codec.
"""

import pytest

from repro.core.encoding import (
    AluInstruction,
    LoadStoreInstruction,
    MAX_VECTOR_LENGTH,
    NUM_REGISTERS,
    decode_alu,
    decode_load_store,
    encode_alu,
    encode_load_store,
)
from repro.core.types import Op, UNARY_OPS, unit_func_for
from repro.cpu import isa
from repro.cpu.assembler import assemble
from repro.cpu.program import ProgramBuilder


def build_every_cpu_opcode():
    """One instance of every non-FALU opcode (branches hit every test)."""
    b = ProgramBuilder()
    b.nop()
    b.li(1, 8)
    b.li(2, -3)
    b.add(3, 1, 2)
    b.addi(4, 1, 5)
    b.sub(5, 1, 2)
    b.mul(6, 1, 2)
    b.muli(7, 1, 3)
    b.sll(8, 1, 2)
    b.sra(9, 1, 1)
    b.and_(10, 1, 2)
    b.or_(11, 1, 2)
    b.xor(12, 1, 2)
    b.lw(13, 1, 8)
    b.sw(13, 1, 16)
    b.fload(0, 1, 0)
    b.fstore(1, 1, 8)
    b.fcmp(14, 0, 1, isa.CMP_EQ)
    b.fcmp(15, 0, 1, isa.CMP_LT)
    b.fcmp(16, 0, 1, isa.CMP_LE)
    end = b.label("end")
    b.beq(1, 2, end)
    b.bne(1, 2, end)
    b.blt(1, 2, end)
    b.bge(1, 2, end)
    b.ble(1, 2, end)
    b.bgt(1, 2, end)
    b.j(end)
    b.rfe()
    b.place(end)
    b.halt()
    return b.build()


class TestCpuTextRoundTrip:
    def test_every_opcode_covered(self):
        program = build_every_cpu_opcode()
        covered = {instruction[0] for instruction in program.instructions}
        expected = set(isa.OPCODE_NAMES) - {isa.FALU}
        assert covered == expected

    def test_disassemble_assemble_identity(self):
        """disassemble -> assemble reproduces the exact instruction
        tuples (branch targets round-trip through @N notation)."""
        program = build_every_cpu_opcode()
        text = "\n".join(isa.disassemble(instruction)
                         for instruction in program.instructions)
        reassembled = assemble(text)
        assert reassembled.instructions == program.instructions

    def test_builder_assembler_equivalence(self):
        """Hand-written assembler text and the builder produce the same
        tuples for every addressing shape."""
        source = """
        start:
            li      r1, 8
            addi    r2, r1, -1
            lw      r3, 8(r1)
            sw      r3, -8(r1)
            fload   f0, 0(r1)
            fstore  f0, 16(r1)
            fcmp.eq r4, f0, f1
            blt     r2, r1, start
            j       start
            rfe
            halt
        """
        b = ProgramBuilder()
        start = b.here("start")
        b.li(1, 8)
        b.addi(2, 1, -1)
        b.lw(3, 1, 8)
        b.sw(3, 1, -8)
        b.fload(0, 1, 0)
        b.fstore(0, 1, 16)
        b.fcmp(4, 0, 1, isa.CMP_EQ)
        b.blt(2, 1, start)
        b.j(start)
        b.rfe()
        b.halt()
        assert assemble(source).instructions == b.build().instructions

    def test_absolute_branch_targets(self):
        program = assemble("nop\nbeq r1, r2, @0\nj 1\nhalt\n")
        assert program.instructions[1] == (isa.BEQ, 1, 2, 0)
        assert program.instructions[2] == (isa.J, 1)


FALU_MNEMONICS = {
    Op.ADD: "fadd",
    Op.SUB: "fsub",
    Op.MUL: "fmul",
    Op.ITER: "fiter",
    Op.RECIP: "frecip",
    Op.FLOAT: "ffloat",
    Op.TRUNC: "ftrunc",
    Op.IMUL: "fimul",
}


class TestFaluTextRoundTrip:
    @pytest.mark.parametrize("op", sorted(Op, key=int))
    def test_assembler_matches_builder(self, op):
        mnemonic = FALU_MNEMONICS[op]
        b = ProgramBuilder()
        if op in UNARY_OPS:
            text = "%s f20, f4, vl=3, sa=1\nhalt\n" % mnemonic
            b.falu(op, 20, 4, 0, vl=3, sra=True, srb=False)
        else:
            text = "%s f20, f4, f8, vl=3, sa=1, sb=0\nhalt\n" % mnemonic
            b.falu(op, 20, 4, 8, vl=3, sra=True, srb=False)
        b.halt()
        assert assemble(text).instructions == b.build().instructions

    def test_builder_tuple_fields(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=4, sra=True, srb=False)
        instruction = b.build().instructions[0]
        assert instruction == (isa.FALU, int(Op.ADD), 16, 0, 8, 4, 1, 0,
                               False)


class TestAluWordRoundTrip:
    @pytest.mark.parametrize("op", sorted(Op, key=int))
    @pytest.mark.parametrize("vl", [1, 2, MAX_VECTOR_LENGTH])
    @pytest.mark.parametrize("sra,srb", [(True, True), (True, False),
                                         (False, True), (False, False)])
    def test_encode_decode_identity(self, op, vl, sra, srb):
        unit, func = unit_func_for(op)
        instruction = AluInstruction(
            rr=NUM_REGISTERS - vl, ra=0, rb=1, unit=unit, func=func,
            vector_length=vl, stride_ra=sra, stride_rb=srb)
        decoded = decode_alu(encode_alu(instruction))
        assert decoded == instruction
        assert decoded.op == op

    def test_register_extremes(self):
        unit, func = unit_func_for(Op.ADD)
        instruction = AluInstruction(rr=0, ra=NUM_REGISTERS - 1,
                                     rb=NUM_REGISTERS - 1, unit=unit,
                                     func=func)
        assert decode_alu(encode_alu(instruction)) == instruction


class TestLoadStoreWordRoundTrip:
    @pytest.mark.parametrize("is_store", [False, True])
    @pytest.mark.parametrize("register", [0, 1, NUM_REGISTERS - 1])
    def test_encode_decode_identity(self, is_store, register):
        instruction = LoadStoreInstruction(is_store=is_store,
                                           register=register)
        assert decode_load_store(encode_load_store(instruction)) \
            == instruction
