"""Tests for the structural hardware models: the reservation-bit RAM and
the distributed bypass network, including behavioural equivalence with
the architectural scoreboard."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bypass import (
    BypassNetwork,
    CENTRALIZED_WIRE_DELAYS,
    DISTRIBUTED_WIRE_DELAYS,
    ResultBus,
    centralized_forwarding_distance,
    forwarding_distance,
)
from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import SimulationError
from repro.core.reservation_ram import ReservationBitRam
from repro.core.scoreboard import Scoreboard


class TestReservationBitRam:
    def test_set_then_read_next_cycle(self):
        ram = ReservationBitRam()
        ram.begin_cycle()
        ram.set_on_issue(5)
        ram.end_cycle()
        ram.begin_cycle()
        assert ram.read(5)
        ram.end_cycle()

    def test_reads_see_start_of_cycle_state(self):
        ram = ReservationBitRam()
        ram.begin_cycle()
        ram.set_on_issue(5)
        assert not ram.read(5)  # bitlines drive after the read phase
        ram.end_cycle()

    def test_simultaneous_set_and_clear_different_rows(self):
        """The true bitline clears one row while the complement bitline
        sets another -- the single-ended trick."""
        ram = ReservationBitRam()
        ram.begin_cycle()
        ram.set_on_issue(3)
        ram.end_cycle()
        ram.begin_cycle()
        ram.clear_on_retire(3)
        ram.set_on_issue(7)
        ram.end_cycle()
        assert not ram.peek(3)
        assert ram.peek(7)

    def test_clear_then_set_same_row_leaves_it_reserved(self):
        ram = ReservationBitRam()
        ram.begin_cycle()
        ram.set_on_issue(4)
        ram.end_cycle()
        ram.begin_cycle()
        ram.clear_on_retire(4)
        ram.set_on_issue(4)
        ram.end_cycle()
        assert ram.peek(4)

    def test_only_one_set_per_cycle(self):
        ram = ReservationBitRam()
        ram.begin_cycle()
        ram.set_on_issue(1)
        with pytest.raises(SimulationError):
            ram.set_on_issue(2)

    def test_only_one_clear_per_cycle(self):
        ram = ReservationBitRam()
        ram.begin_cycle()
        ram.clear_on_retire(1)
        with pytest.raises(SimulationError):
            ram.clear_on_retire(2)

    def test_read_port_budget(self):
        ram = ReservationBitRam()
        ram.begin_cycle()
        for register in (0, 1, 2):
            ram.read(register)
        with pytest.raises(SimulationError):
            ram.read(3)

    def test_access_outside_cycle(self):
        ram = ReservationBitRam()
        with pytest.raises(SimulationError):
            ram.read(0)

    def test_one_extra_decoder(self):
        assert ReservationBitRam().decoder_count == 1

    @given(st.lists(st.tuples(st.sampled_from(["set", "clear"]),
                              st.integers(0, NUM_REGISTERS - 1)),
                    max_size=80))
    @settings(max_examples=60)
    def test_equivalent_to_architectural_scoreboard(self, operations):
        """Applying legal set/clear sequences (one of each per cycle) to
        both models yields identical bit vectors."""
        ram = ReservationBitRam()
        scoreboard = Scoreboard()
        for kind, register in operations:
            ram.begin_cycle()
            if kind == "set":
                if scoreboard.bits[register]:
                    ram.end_cycle()
                    continue  # the issue logic never double-reserves
                ram.set_on_issue(register)
                scoreboard.reserve(register)
            else:
                ram.clear_on_retire(register)
                scoreboard.clear(register)
            ram.end_cycle()
        for register in range(NUM_REGISTERS):
            assert ram.peek(register) == scoreboard.bits[register]


class TestBypassNetwork:
    def test_bus_selected_for_reserved_source_with_matching_result(self):
        unit = BypassNetwork("add")
        value = unit.select(source_register=5, register_file_value=0.0,
                            result_bus=ResultBus(5, 42.0), reserved=True)
        assert value == 42.0
        assert unit.bus_selections == 1

    def test_file_selected_when_not_reserved(self):
        unit = BypassNetwork("add")
        value = unit.select(5, 7.0, ResultBus(5, 42.0), reserved=False)
        assert value == 7.0

    def test_file_selected_for_other_destination(self):
        unit = BypassNetwork("multiply")
        value = unit.select(5, 7.0, ResultBus(9, 42.0), reserved=True)
        assert value == 7.0

    def test_file_selected_with_idle_bus(self):
        unit = BypassNetwork("reciprocal")
        assert unit.select(5, 7.0, None, reserved=False) == 7.0

    def test_wire_delay_advantage(self):
        assert DISTRIBUTED_WIRE_DELAYS == 1
        assert CENTRALIZED_WIRE_DELAYS == 2
        assert centralized_forwarding_distance() == forwarding_distance() + 1

    def test_forwarding_distance_matches_machine_timing(self):
        """The simulator's producer-to-consumer distance equals the
        bypassed latency (Figure 5's schedule depends on it)."""
        from repro.core.functional_units import FUNCTIONAL_UNIT_LATENCY
        assert forwarding_distance() == FUNCTIONAL_UNIT_LATENCY
