"""The ExecutionBackend protocol, the backend registry, and the
cycle-level classical chained-vector backend.

Covers the contract every registered backend must honour (snapshot/
restore round-trips, including mid-vector stop-cycle restores), the
classical machine's functional equivalence against the sequential
reference and its timing rules (startup, chaining, the split-register-
file move tax), config validation, backend-aware cache keys and BENCH
schemas, and the cross-backend fuzz oracle.
"""

import dataclasses
import math

import pytest

from repro import api, orchestrate
from repro.baselines.classical_machine import (ClassicalCycleTiming,
                                               ClassicalVectorBackend)
from repro.core import backend as backend_mod
from repro.core.backend import (DEFAULT_BACKEND, ExecutionBackend,
                                backend_names, create_machine, get_backend)
from repro.core.exceptions import SimulationError
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory
from repro.robustness import smoke
from repro.robustness.differential import bit_exact
from repro.robustness.reference import ReferenceExecutor

ALL_BACKENDS = backend_names()


def _smoke_machine(name):
    return create_machine(name, smoke.build_workload(),
                          memory=smoke.build_memory())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_registered_names_and_default(self):
        # The soa backend registers only when its optional NumPy
        # dependency is importable (pip install .[batch]).
        assert ALL_BACKENDS[:3] == ("percycle", "fastpath", "classical")
        from repro.batch import HAVE_NUMPY
        assert (("soa" in ALL_BACKENDS) == HAVE_NUMPY)
        assert DEFAULT_BACKEND == "fastpath"
        assert get_backend().name == "fastpath"

    def test_unknown_backend_names_the_registered_set(self):
        with pytest.raises(ValueError, match="percycle, fastpath, classical"):
            get_backend("cray")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            backend_mod.register_backend(
                "percycle", "dup", timing_domain="multititan",
                factory=lambda *a, **k: None)

    def test_timing_domains(self):
        assert get_backend("percycle").timing_domain == "multititan"
        assert get_backend("fastpath").timing_domain == "multititan"
        assert get_backend("classical").timing_domain == "classical"
        assert not get_backend("classical").supports_faults
        if "soa" in ALL_BACKENDS:
            # Same timing domain as percycle: the oracle compares their
            # full snapshots (cycle counts included) bit-for-bit.
            assert get_backend("soa").timing_domain == "multititan"
            assert not get_backend("soa").supports_faults

    def test_named_backends_force_dispatch_strategy(self):
        program = smoke.build_workload()
        fast = create_machine("fastpath", program,
                              config=MachineConfig(fast_path=False))
        slow = create_machine("percycle", program,
                              config=MachineConfig(fast_path=True))
        assert fast.config.fast_path and not slow.config.fast_path
        assert fast.backend_id == "fastpath"
        assert slow.backend_id == "percycle"

    def test_create_machine_none_leaves_config_untouched(self):
        config = MachineConfig(fast_path=False)
        machine = create_machine(None, smoke.build_workload(), config=config)
        assert machine.config is config
        assert machine.backend_id == "percycle"

    def test_every_backend_implements_the_protocol(self):
        for name in ALL_BACKENDS:
            machine = _smoke_machine(name)
            assert isinstance(machine, ExecutionBackend)
            assert machine.backend_id == name
            for attribute in ("config", "program", "memory", "decoded",
                              "cycle", "pc", "halted", "iregs", "fpu",
                              "stats", "events", "fault_plan"):
                assert hasattr(machine, attribute), (name, attribute)


# ---------------------------------------------------------------------------
# Snapshot/restore round-trips (parametrized over the registry)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestSnapshotRestore:
    def test_stop_cycle_snapshot_resumes_identically(self, name):
        golden = _smoke_machine(name)
        final = golden.run()
        baseline = golden.architectural_state()
        # Stop points spread across the run; several land mid-vector
        # (the smoke workload issues VL=16 FALUs and load/store bursts).
        total = final.completion_cycle
        saw_inflight = False
        for stop in sorted({1, total // 8, total // 3, total // 2,
                            2 * total // 3, total - 1}):
            paused = _smoke_machine(name)
            paused.run(stop_cycle=stop)
            assert not paused.halted or paused.cycle <= total
            if name == "classical" and paused._inflight is not None:
                saw_inflight = True
            resumed = _smoke_machine(name)
            resumed.restore(paused.snapshot())
            result = resumed.run()
            assert result.completion_cycle == total, stop
            assert resumed.architectural_state() == baseline, stop
        if name == "classical":
            assert saw_inflight, "no stop point paused mid-vector-stream"

    def test_delta_snapshot_keeps_negative_zero(self, name):
        # -0.0 compares equal to the +0.0 fill but is a different bit
        # pattern; a dropped -0.0 shows up as a cross-backend memory
        # divergence (found by the 250-seed oracle campaign).
        machine = _smoke_machine(name)
        machine.memory.write(0, -0.0)
        machine.memory.write(8, 0)        # int zero: also part of the delta
        delta = machine.memory.delta_snapshot()
        assert 0 in delta["words"]
        assert math.copysign(1.0, delta["words"][0]) < 0.0
        assert delta["words"][1] == 0 and type(delta["words"][1]) is int
        restored = _smoke_machine(name)
        restored.restore(machine.snapshot())
        assert math.copysign(1.0, restored.memory.read(0)) < 0.0

    def test_snapshot_rejects_other_programs(self, name):
        machine = _smoke_machine(name)
        snapshot = machine.snapshot()
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=4)
        b.halt()
        other = create_machine(name, b.build(), memory=Memory())
        with pytest.raises(SimulationError):
            other.restore(snapshot)

    def test_architectural_state_matches_reference(self, name):
        machine = _smoke_machine(name)
        machine.run()
        program = smoke.build_workload()
        memory = smoke.build_memory()
        reference = ReferenceExecutor(program.instructions,
                                      memory_words=list(memory.words),
                                      decoded=program.decoded)
        reference.run()
        state = machine.architectural_state()
        assert state["halted"]
        assert all(bit_exact(a, b) for a, b
                   in zip(state["fregs"], reference.fregs))
        assert state["iregs"] == reference.iregs
        words = machine.memory.words
        assert len(words) == len(reference.memory)
        assert all(bit_exact(a, b) for a, b in zip(words, reference.memory))


# ---------------------------------------------------------------------------
# Classical timing rules
# ---------------------------------------------------------------------------

def _classical_cycles(build, timing=None):
    b = ProgramBuilder()
    build(b)
    b.halt()
    machine = ClassicalVectorBackend(b.build(), memory=Memory(),
                                     timing=timing)
    return machine.run().completion_cycle


class TestClassicalTiming:
    def test_vector_op_costs_startup_plus_length(self):
        vl4 = _classical_cycles(lambda b: b.fadd(16, 0, 8, vl=4))
        vl8 = _classical_cycles(lambda b: b.fadd(16, 0, 8, vl=8))
        assert vl8 - vl4 == 4  # one cycle per extra element
        empty = _classical_cycles(lambda b: None)
        timing = ClassicalCycleTiming()
        # one dispatch cycle + startup dead cycles + one cycle per element
        assert vl4 - empty == 1 + timing.vector_startup + 4

    def test_chaining_discounts_the_startup(self):
        def chained(b):
            b.fadd(16, 0, 8, vl=8)
            b.fmul(24, 16, 8, vl=8)      # sources the previous dest

        def independent(b):
            b.fadd(16, 0, 8, vl=8)
            b.fmul(32, 40, 44, vl=8)     # no overlap: full startup

        timing = ClassicalCycleTiming()
        saved = timing.vector_startup - timing.chain_delay
        assert (_classical_cycles(independent)
                - _classical_cycles(chained)) == saved
        # With chaining disabled (chain as expensive as a cold start)
        # the two programs cost the same.
        flat = dataclasses.replace(timing,
                                   chain_delay=timing.vector_startup)
        assert (_classical_cycles(independent, timing=flat)
                == _classical_cycles(chained, timing=flat))

    def test_scalar_read_of_vector_register_pays_the_move_tax(self):
        def store_vector_resident(b):
            b.fadd(16, 0, 8, vl=4)
            b.li(1, 0)
            b.fstore(16, 1, 0)           # R16 lives in the vector file

        def store_scalar_resident(b):
            b.fadd(16, 0, 8, vl=4)
            b.li(1, 0)
            b.fstore(0, 1, 0)            # R0 never left the scalar file

        timing = ClassicalCycleTiming()
        assert (_classical_cycles(store_vector_resident)
                - _classical_cycles(store_scalar_resident)
                == timing.move_latency)

    def test_move_tax_charged_once_then_rehomed(self):
        # The nop between the stores keeps them from fusing into a
        # vector store stream; both dispatch as scalar stores.
        def one_store(b):
            b.fadd(16, 0, 8, vl=4)
            b.li(1, 0)
            b.fstore(16, 1, 0)
            b.nop()

        def two_stores(b):
            b.fadd(16, 0, 8, vl=4)
            b.li(1, 0)
            b.fstore(16, 1, 0)
            b.nop()
            b.fstore(16, 1, 8)           # re-homed: no second tax

        timing = ClassicalCycleTiming()
        assert (_classical_cycles(two_stores)
                - _classical_cycles(one_store)
                == timing.scalar_mem_latency)

    def test_vector_load_run_streams_one_element_per_cycle(self):
        def run_of(n):
            def build(b):
                b.li(1, 0)
                for i in range(n):
                    b.fload(i, 1, 8 * i)
            return build

        assert (_classical_cycles(run_of(4))
                - _classical_cycles(run_of(2))) == 2

    def test_timing_report_names_backend_and_parameters(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=4)
        b.halt()
        machine = ClassicalVectorBackend(b.build(), memory=Memory())
        machine.run()
        report = machine.timing_report()
        assert report["backend"] == "classical"
        assert report["vector_startup"] == 15
        assert report["cycles"] == machine.cycle
        assert report["vector_ops"] >= 1

    def test_fault_plan_is_rejected_not_ignored(self):
        machine = _smoke_machine("classical")
        machine.fault_plan = object()
        with pytest.raises(SimulationError, match="fault injection"):
            machine.run()


# ---------------------------------------------------------------------------
# MachineConfig.validate
# ---------------------------------------------------------------------------

class TestConfigValidation:
    def test_valid_config_returns_self(self):
        config = MachineConfig()
        assert config.validate() is config

    @pytest.mark.parametrize("field,value", [
        ("fpu_latency", 0),
        ("cycle_time_ns", 0),
        ("max_cycles", 0),
        ("store_port_cycles", 0),
        ("taken_branch_cycles", 0),
        ("dcache_miss_penalty", -1),
        ("dcache_size", 100),       # not a multiple of the line
        ("dcache_line", 0),
        ("max_vl", 0),
        ("max_vl", 60),             # above the register-file ceiling
    ])
    def test_inconsistent_config_names_the_field(self, field, value):
        with pytest.raises(ValueError, match="MachineConfig.%s" % field):
            MachineConfig(**{field: value}).validate()

    def test_from_overrides_validates(self):
        with pytest.raises(ValueError, match="MachineConfig.fpu_latency"):
            MachineConfig.from_overrides({"fpu_latency": 0})

    def test_machines_reject_programs_above_max_vl(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=16)
        b.halt()
        program = b.build()
        config = MachineConfig(max_vl=8)
        with pytest.raises(SimulationError, match="max_vl=8"):
            MultiTitan(program, config=config)
        with pytest.raises(SimulationError, match="max_vl=8"):
            ClassicalVectorBackend(program, config=config)


# ---------------------------------------------------------------------------
# API and orchestration plumbing
# ---------------------------------------------------------------------------

class TestApiPlumbing:
    def test_request_validates_backend_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.RunRequest("livermore", {"loop": 7}, backend="cray")

    def test_resolved_backend_defaults(self):
        request = api.RunRequest("livermore", {"loop": 7})
        assert request.backend is None
        assert request.resolved_backend() == DEFAULT_BACKEND

    def test_request_round_trips_backend(self):
        request = api.RunRequest("livermore", {"loop": 7},
                                 backend="classical")
        clone = api.RunRequest.from_dict(request.to_dict())
        assert clone.backend == "classical"

    def test_cache_key_distinguishes_backends(self):
        keys = {orchestrate.cache_key("w", {}, "fp", backend=name)
                for name in ALL_BACKENDS}
        assert len(keys) == len(ALL_BACKENDS)

    def test_result_backend_defaults_for_legacy_payloads(self):
        result = api.RunResult(workload="w", params={}, config={},
                               metrics={})
        payload = result.to_dict()
        assert payload["backend"] == DEFAULT_BACKEND
        del payload["backend"]
        assert api.RunResult.from_dict(payload).backend == DEFAULT_BACKEND

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_livermore_runs_on_every_backend(self, name):
        request = api.RunRequest("livermore", {"loop": 7, "n": 16},
                                 backend=name)
        result = api.execute_request(request)
        assert result.passed, result.check_error
        assert result.backend == name
        assert result.metrics["cycles"] > 0

    def test_helper_module_workloads_reject_backend_selection(self):
        request = api.RunRequest("reduction", {"strategy": "scalar_tree"},
                                 backend="classical")
        with pytest.raises(ValueError, match="does not support backend"):
            api.execute_request(request)

    def test_multititan_only_workloads_reject_classical(self):
        request = api.RunRequest("latency", {"op": "add"},
                                 backend="classical")
        with pytest.raises(ValueError, match="multititan-domain"):
            api.execute_request(request)

    def test_bench_document_validates_with_backend(self, tmp_path):
        request = api.RunRequest("livermore", {"loop": 7, "n": 16},
                                 backend="classical")
        result = api.execute_request(request)
        path = tmp_path / "BENCH_backends.json"
        orchestrate.write_bench_json(str(path), [result], sweep="test")
        document = orchestrate.validate_bench_json(str(path))
        assert document["results"][0]["backend"] == "classical"

    def test_legacy_v2_documents_still_validate_without_backend(self):
        document = {
            "schema": "repro-bench/2",
            "sweep": "trajectory",
            "count": 1,
            "results": [{
                "schema": "repro-run/2", "workload": "w", "params": {},
                "config": {}, "metrics": {"cycles": 1},
                "check_error": None, "key": "k",
            }],
        }
        assert orchestrate.validate_bench_json(document) is document

    def test_current_documents_require_backend(self):
        document = {
            "schema": orchestrate.BENCH_SCHEMA,
            "sweep": "s",
            "count": 1,
            "results": [{
                "schema": orchestrate.RESULT_SCHEMA, "workload": "w",
                "params": {}, "config": {}, "metrics": {},
                "check_error": None, "key": "k",
            }],
        }
        with pytest.raises(ValueError, match="backend"):
            orchestrate.validate_bench_json(document)

    def test_session_backend_threads_into_requests(self):
        session = api.Session(backend="classical")
        request = session.request("livermore", {"loop": 7})
        assert request.backend == "classical"
        override = session.request("livermore", {"loop": 7},
                                   backend="percycle")
        assert override.backend == "percycle"

    def test_legacy_smoke_shim_forwards_backend(self, monkeypatch):
        import repro.tools.cli as cli

        seen = {}
        monkeypatch.setattr(cli, "main",
                            lambda argv: seen.setdefault("argv", argv) and 0)
        with pytest.warns(DeprecationWarning, match="--backend"):
            smoke.main(argv=["--seeds", "1"], backend="percycle")
        assert seen["argv"] == ["smoke", "--backend", "percycle",
                                "--seeds", "1"]


# ---------------------------------------------------------------------------
# The cross-backend equivalence oracle
# ---------------------------------------------------------------------------

class TestCrossBackendOracle:
    def test_small_campaign_is_clean_and_reports_timings(self):
        from repro.robustness.fuzz import fuzz

        timings = []
        result = fuzz(seeds=25, base_seed=0, backends=ALL_BACKENDS,
                      on_case=lambda case, r: timings.append(r.timings))
        assert result.clean, result.summary()
        assert result.cases == 25
        reported = [t for t in timings if t]
        assert reported, "no case reported per-backend timings"
        for row in reported:
            assert set(row) == set(ALL_BACKENDS)
            assert row["percycle"]["cycles"] == row["fastpath"]["cycles"]
            assert row["classical"]["domain"] == "classical"

    def test_divergence_carries_a_crossbackend_signature(self):
        from repro.robustness.fuzz import run_case_backends
        from repro.robustness.fuzz.generator import generate_case

        case = generate_case(0)
        machine = ClassicalVectorBackend(case.program,
                                         memory=Memory())
        # Sanity: a healthy case passes first.
        healthy = run_case_backends(case.program, case.memory_words)
        assert healthy.verdict == "pass", healthy.signature
        assert machine.backend_id == "classical"
