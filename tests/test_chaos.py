"""The orchestration-layer chaos harness.

ChaosPlan's deterministic fault assignment and per-attempt directive
semantics, plus one small end-to-end ``run_chaos_campaign`` covering
all four fault kinds, jobs=1 vs jobs=N byte-determinism, and
interrupt + journal resume.
"""

import pytest

from repro.robustness.chaos import (
    EXPECTED_RECORD,
    FAULT_KINDS,
    ChaosError,
    ChaosPlan,
    apply_worker_directive,
    chaos_requests,
    run_chaos_campaign,
)


class TestChaosPlan:
    def test_seeded_assignment_is_deterministic(self):
        first = ChaosPlan.seeded(7, 12).kinds()
        second = ChaosPlan.seeded(7, 12).kinds()
        assert first == second
        assert ChaosPlan.seeded(8, 12).kinds() != first

    def test_seeded_faults_land_on_distinct_tasks(self):
        plan = ChaosPlan.seeded(3, 8, kills=2, hangs=2, transients=2,
                                corrupts=2)
        assert len(plan.faults) == 8
        assert sorted(plan.faults.values()) == sorted(
            ["kill"] * 2 + ["hang"] * 2 + ["transient"] * 2 + ["corrupt"] * 2)

    def test_too_many_faults_for_the_campaign_raise(self):
        with pytest.raises(ValueError, match="do not fit"):
            ChaosPlan.seeded(1, 2, kills=3)

    def test_unknown_fault_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            ChaosPlan(faults={0: "gremlins"})

    def test_directive_fires_on_first_attempt_only(self):
        plan = ChaosPlan(faults={2: "transient"})
        assert plan.directive(2, 1) == {"kind": "transient"}
        assert plan.directive(2, 2) is None       # retry recovers
        assert plan.directive(0, 1) is None       # unfaulted task

    def test_persistent_directive_fires_on_every_attempt(self):
        plan = ChaosPlan(faults={2: "transient"}, persistent=True)
        assert plan.directive(2, 3) == {"kind": "transient"}

    def test_hang_directive_carries_the_duration(self):
        plan = ChaosPlan(faults={0: "hang"}, hang_seconds=5.5)
        assert plan.directive(0, 1) == {"kind": "hang", "seconds": 5.5}

    def test_every_fault_kind_has_coverage_semantics(self):
        # Every kind either maps to an expected attempt record or is the
        # self-healing cache fault observed through telemetry.
        assert set(EXPECTED_RECORD) | {"corrupt"} == set(FAULT_KINDS)


class TestWorkerDirectives:
    def test_transient_directive_raises_chaos_error(self):
        with pytest.raises(ChaosError, match="injected transient"):
            apply_worker_directive({"kind": "transient"}, {}, None)

    def test_unknown_directive_kind_raises(self):
        with pytest.raises(ValueError, match="unknown chaos directive"):
            apply_worker_directive({"kind": "gremlins"}, {}, None)

    def test_corrupt_without_cache_is_a_no_op(self):
        apply_worker_directive(
            {"kind": "corrupt"},
            {"workload": "fib", "params": {"count": 8}}, None)


def test_chaos_requests_are_deterministic_and_sized():
    first = chaos_requests(9)
    second = chaos_requests(9)
    assert len(first) == 9
    assert [r.to_dict() for r in first] == [r.to_dict() for r in second]
    assert {r.workload for r in first} == {"fib", "reduction", "gather"}


def test_chaos_campaign_end_to_end(tmp_path):
    """The full harness on a small campaign: every fault kind injected,
    zero lost tasks, byte-identical BENCH at jobs=1 vs jobs=2, and
    interrupt + resume through the journal."""
    report = run_chaos_campaign(
        tasks=6, jobs=2, seed=11, task_timeout=1.0, max_retries=2,
        retry_base=0.02, workdir=str(tmp_path))
    assert report.ok, report.render()
    rendered = report.render()
    assert "all checks passed" in rendered
    assert "BENCH bytes identical" in rendered
    assert "restored from journal" in rendered
