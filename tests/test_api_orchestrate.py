"""The session API and the campaign orchestrator.

Covers the contracts the rest of the repo leans on: digest-keyed cache
hits and invalidation, byte-identical campaign JSON at any worker count,
corrupted-cache self-healing, kwarg normalization behind RunRequest, the
schema validator, and the deprecation shim over the old smoke entry
point.
"""

import json
import os
import warnings

import pytest

from repro.api import (
    MAX_CYCLES_ALIASES,
    RunRequest,
    RunResult,
    Session,
    execute_request,
    restore_point,
    sweep_requests,
    SWEEPS,
)
from repro.cpu.machine import MachineConfig
from repro.orchestrate import (
    ResultCache,
    cache_key,
    dump_bench_json,
    validate_bench_json,
    write_bench_json,
)

FAST_REQUESTS = [
    RunRequest("reduction", {"strategy": "scalar_tree"}),
    RunRequest("reduction", {"strategy": "vector_tree"}),
    RunRequest("fib", {"count": 10}),
    RunRequest("gather", {"pattern": "linked"}),
]


# ---------------------------------------------------------------------------
# RunRequest normalization
# ---------------------------------------------------------------------------

class TestRunRequest:
    @pytest.mark.parametrize("alias", MAX_CYCLES_ALIASES)
    def test_legacy_cycle_budget_spellings_fold_into_max_cycles(self, alias):
        request = RunRequest("fib", {"count": 10, alias: 5000})
        assert request.max_cycles == 5000
        assert alias not in request.params

    def test_conflicting_cycle_budgets_raise(self):
        with pytest.raises(ValueError, match="conflicting cycle budgets"):
            RunRequest("fib", {"stop_cycle": 10}, max_cycles=20)

    def test_unknown_config_field_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown MachineConfig"):
            RunRequest("fib", config={"fpu_latencyy": 3})

    def test_params_normalize_to_plain_data(self):
        request = RunRequest("fib", {"shape": (1, 2), "nested": {"k": (3,)}})
        assert request.params == {"shape": [1, 2], "nested": {"k": [3]}}

    def test_round_trips_through_dict(self):
        request = RunRequest("livermore", {"loop": 7},
                             config={"fpu_latency": 5}, max_cycles=100)
        assert RunRequest.from_dict(request.to_dict()) == request


class TestConfigFingerprint:
    def test_observation_fields_do_not_change_the_fingerprint(self):
        base = MachineConfig().fingerprint()
        assert MachineConfig(trace=True).fingerprint() == base
        assert MachineConfig(audit_invariants=True).fingerprint() == base

    def test_performance_fields_change_the_fingerprint(self):
        assert (MachineConfig(fpu_latency=5).fingerprint()
                != MachineConfig().fingerprint())

    def test_from_overrides_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown MachineConfig"):
            MachineConfig.from_overrides({"no_such_field": 1})


# ---------------------------------------------------------------------------
# The result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_identical_request_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = execute_request(RunRequest("fib", {"count": 10}), cache=cache)
        second = execute_request(RunRequest("fib", {"count": 10}), cache=cache)
        assert not first.cached
        assert second.cached
        assert first.to_dict() == second.to_dict()
        assert cache.hits == 1

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_request(RunRequest("fib", {"count": 10}), cache=cache)
        other = execute_request(RunRequest("fib", {"count": 12}), cache=cache)
        assert not other.cached

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest("livermore", {"loop": 1})
        execute_request(request, cache=cache)
        slower = execute_request(
            RunRequest("livermore", {"loop": 1},
                       config={"fpu_latency": 5}), cache=cache)
        assert not slower.cached
        again = execute_request(request, cache=cache)
        assert again.cached

    def test_observation_config_still_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_request(RunRequest("fib", {"count": 10}), cache=cache)
        traced = execute_request(
            RunRequest("fib", {"count": 10}, config={"audit_invariants": True}),
            cache=cache)
        assert traced.cached

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest("fib", {"count": 10})
        first = execute_request(request, cache=cache)
        # Corrupt every stored entry on disk.
        corrupted = 0
        for root, _dirs, files in os.walk(tmp_path):
            for name in files:
                with open(os.path.join(root, name), "w") as handle:
                    handle.write("{not json")
                corrupted += 1
        assert corrupted == 1
        again = execute_request(request, cache=cache)
        assert not again.cached            # corrupt entry treated as a miss
        assert cache.corrupted == 1
        assert again.to_dict() == first.to_dict()
        third = execute_request(request, cache=cache)
        assert third.cached                # and the cache healed itself

    def test_cache_key_depends_on_program_digest(self):
        base = dict(workload="w", params={"a": 1}, config_fingerprint="f")
        assert (cache_key(**base, program_digest="d1")
                != cache_key(**base, program_digest="d2"))
        assert (cache_key(**base, salt="v1")
                != cache_key(**base, salt="v2"))


def test_program_builds_are_deterministic():
    """Rebuilding a kernel yields a byte-identical instruction stream --
    the property the digest-keyed cache stands on (regression: the
    vector builder used to emit pointer bumps in set order)."""
    from repro.core.semantics import program_digest
    from repro.workloads.livermore import build_loop

    digests = {program_digest(build_loop(1).program.instructions)
               for _ in range(3)}
    assert len(digests) == 1


# ---------------------------------------------------------------------------
# Campaigns: determinism across worker counts
# ---------------------------------------------------------------------------

class TestCampaignDeterminism:
    def test_jobs1_and_jobs4_produce_byte_identical_json(self):
        serial = Session(jobs=1).run_many(list(FAST_REQUESTS))
        fanned = Session(jobs=4).run_many(list(FAST_REQUESTS))
        assert (dump_bench_json(serial, sweep="t")
                == dump_bench_json(fanned, sweep="t"))

    def test_results_come_back_in_request_order(self):
        results = Session(jobs=2).run_many(list(FAST_REQUESTS))
        assert [r.workload for r in results] == [r.workload
                                                 for r in FAST_REQUESTS]
        assert [r.params for r in results] == [r.params
                                               for r in FAST_REQUESTS]

    def test_pool_and_cache_compose(self, tmp_path):
        session = Session(jobs=2, cache_dir=tmp_path)
        session.run_many(list(FAST_REQUESTS))
        again = session.run_many(list(FAST_REQUESTS))
        assert all(result.cached for result in again)


# ---------------------------------------------------------------------------
# BENCH_*.json schema
# ---------------------------------------------------------------------------

class TestBenchJson:
    def test_written_document_validates(self, tmp_path):
        results = Session().run_many(list(FAST_REQUESTS))
        path = write_bench_json(tmp_path / "BENCH_t.json", results, sweep="t")
        document = validate_bench_json(path)
        assert document["count"] == len(FAST_REQUESTS)

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_bench_json({"schema": "something/9", "sweep": "t",
                                 "count": 0, "results": []})

    def test_rejects_count_mismatch(self, tmp_path):
        results = Session().run_many([RunRequest("fib", {"count": 10})])
        path = write_bench_json(tmp_path / "b.json", results, sweep="t")
        with open(path) as handle:
            document = json.load(handle)
        document["count"] = 5
        with pytest.raises(ValueError, match="count"):
            validate_bench_json(document)

    def test_result_round_trips(self):
        (result,) = Session().run_many([RunRequest("fib", {"count": 10})])
        clone = RunResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()


# ---------------------------------------------------------------------------
# Session surface
# ---------------------------------------------------------------------------

class TestSession:
    def test_session_config_merges_under_request_overrides(self):
        session = Session(config={"fpu_latency": 5})
        request = session.request("livermore", {"loop": 1})
        assert request.config["fpu_latency"] == 5
        override = session.request("livermore", {"loop": 1},
                                   config={"fpu_latency": 2})
        assert override.config["fpu_latency"] == 2

    def test_every_named_sweep_builds(self):
        for name in SWEEPS:
            requests = sweep_requests(name, quick=True)
            assert requests, name

    def test_unknown_sweep_raises(self):
        with pytest.raises(ValueError, match="unknown sweep"):
            sweep_requests("no-such-sweep")

    def test_run_kernel_through_session(self):
        from repro.workloads.livermore import build_loop

        result = Session().run_kernel(build_loop(1), warm=True)
        assert result.passed
        assert result.cycles > 0


def test_restore_point_rewinds_for_identical_reruns():
    """The session-owned rewind helper restores the machine bit-exactly:
    running the same kernel twice through one machine gives identical
    cycle counts and identical memory."""
    from repro.cpu.machine import MultiTitan
    from repro.workloads.livermore import build_loop

    kernel = build_loop(1)
    machine = MultiTitan(kernel.program, memory=kernel.memory)
    rewind = restore_point(machine)
    first = machine.run().completion_cycle
    rewind()
    second = machine.run().completion_cycle
    assert first == second


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------

def test_smoke_shim_forwards_and_warns(capsys):
    from repro.robustness import smoke

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        status = smoke.main(["--seeds", "2", "--seed", "1989"])
    assert status == 0
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    out = capsys.readouterr().out
    assert "campaign: 2 seeds" in out
