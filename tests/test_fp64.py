"""Tests for the binary64 helpers."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.fparith import fp64


finite_doubles = st.floats(allow_nan=False, allow_infinity=False)
all_doubles = st.floats(allow_nan=True, allow_infinity=True)


class TestConversions:
    def test_float_to_bits_one(self):
        assert fp64.float_to_bits(1.0) == 0x3FF0000000000000

    def test_bits_to_float_one(self):
        assert fp64.bits_to_float(0x3FF0000000000000) == 1.0

    def test_negative_zero(self):
        assert fp64.float_to_bits(-0.0) == fp64.NEG_ZERO

    @given(finite_doubles)
    def test_round_trip(self, value):
        assert fp64.bits_to_float(fp64.float_to_bits(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_bits_round_trip(self, bits):
        value = fp64.bits_to_float(bits)
        if value == value:  # NaN payloads are not preserved exactly
            assert fp64.float_to_bits(value) == bits


class TestFieldAccess:
    def test_unpack_one(self):
        assert fp64.unpack(fp64.float_to_bits(1.0)) == (0, 1023, 0)

    def test_unpack_minus_two(self):
        sign, exponent, fraction = fp64.unpack(fp64.float_to_bits(-2.0))
        assert (sign, exponent, fraction) == (1, 1024, 0)

    @given(st.integers(0, 1), st.integers(0, 2046),
           st.integers(0, (1 << 52) - 1))
    def test_pack_unpack_round_trip(self, sign, exponent, fraction):
        bits = fp64.pack(sign, exponent, fraction)
        assert fp64.unpack(bits) == (sign, exponent, fraction)

    def test_significand_normal(self):
        assert fp64.significand(fp64.float_to_bits(1.5)) == 3 << 51

    def test_significand_subnormal(self):
        assert fp64.significand(1) == 1

    def test_effective_exponent_subnormal(self):
        assert fp64.effective_exponent(1) == 1 - fp64.BIAS


class TestClassification:
    def test_nan(self):
        assert fp64.is_nan(fp64.float_to_bits(float("nan")))
        assert not fp64.is_nan(fp64.POS_INF)

    def test_inf(self):
        assert fp64.is_inf(fp64.POS_INF)
        assert fp64.is_inf(fp64.NEG_INF)
        assert not fp64.is_inf(fp64.QNAN)

    def test_zero(self):
        assert fp64.is_zero(fp64.POS_ZERO)
        assert fp64.is_zero(fp64.NEG_ZERO)
        assert not fp64.is_zero(fp64.float_to_bits(1e-300))

    def test_subnormal(self):
        assert fp64.is_subnormal(1)
        assert not fp64.is_subnormal(fp64.POS_ZERO)
        assert not fp64.is_subnormal(fp64.float_to_bits(1.0))


class TestRounding:
    def test_round_to_nearest_below_half(self):
        assert fp64.round_nearest_even(0b10001, 2) == 0b100

    def test_round_to_nearest_above_half(self):
        assert fp64.round_nearest_even(0b10011, 2) == 0b101

    def test_tie_rounds_to_even_down(self):
        assert fp64.round_nearest_even(0b10010, 2) == 0b100

    def test_tie_rounds_to_even_up(self):
        assert fp64.round_nearest_even(0b10110, 2) == 0b110

    def test_no_extra_bits(self):
        assert fp64.round_nearest_even(12345, 0) == 12345


class TestUlpDistance:
    def test_adjacent(self):
        a = fp64.float_to_bits(1.0)
        b = fp64.float_to_bits(math.nextafter(1.0, 2.0))
        assert fp64.ulp_distance(a, b) == 1

    def test_across_zero(self):
        smallest_pos = 1
        smallest_neg = fp64.NEG_ZERO | 1
        assert fp64.ulp_distance(smallest_pos, smallest_neg) == 2

    @given(finite_doubles)
    def test_zero_distance(self, value):
        bits = fp64.float_to_bits(value)
        assert fp64.ulp_distance(bits, bits) == 0


class TestNormalizeAndPack:
    def test_exact_one(self):
        bits = fp64.normalize_and_pack(0, 0, 1 << 55, 3)
        assert fp64.bits_to_float(bits) == 1.0

    def test_overflow_to_infinity(self):
        bits = fp64.normalize_and_pack(0, 5000, 1 << 55, 3)
        assert bits == fp64.POS_INF

    def test_negative_sign(self):
        bits = fp64.normalize_and_pack(1, 0, 1 << 55, 3)
        assert fp64.bits_to_float(bits) == -1.0

    def test_zero_significand(self):
        assert fp64.normalize_and_pack(0, 100, 0, 3) == fp64.POS_ZERO

    def test_gradual_underflow(self):
        # 2^-1075 rounds to zero; 2^-1074 is the smallest subnormal.
        bits = fp64.normalize_and_pack(0, -1074, 1 << 55, 3)
        assert fp64.bits_to_float(bits) == 5e-324
