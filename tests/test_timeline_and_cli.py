"""Tests for pipeline tracing, timeline rendering, and the CLI."""

import pytest

from repro.analysis.timeline import element_issue_cycles, occupancy, render_timeline
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.tools.cli import main


def traced_machine(build, setup=None):
    b = ProgramBuilder()
    build(b)
    machine = MultiTitan(b.build(), config=MachineConfig(model_ibuffer=False,
                                                         trace=True))
    if setup:
        setup(machine)
    machine.run()
    return machine


class TestTracing:
    def test_trace_disabled_by_default(self):
        b = ProgramBuilder()
        b.fadd(2, 0, 1)
        machine = MultiTitan(b.build(), config=MachineConfig(model_ibuffer=False))
        machine.run()
        assert machine.trace is None

    def test_element_events_recorded(self):
        machine = traced_machine(lambda b: b.fadd(16, 0, 8, vl=4))
        issues = element_issue_cycles(machine.trace, seq=0)
        assert issues == [0, 1, 2, 3]

    def test_chained_vector_issue_spacing(self):
        """Figure 6/8: chained elements issue every `latency` cycles."""
        def setup(machine):
            machine.fpu.regs.write(0, 1.0)
            machine.fpu.regs.write(1, 1.0)

        machine = traced_machine(lambda b: b.fadd(2, 1, 0, vl=8), setup)
        issues = element_issue_cycles(machine.trace, seq=0)
        assert issues == [0, 3, 6, 9, 12, 15, 18, 21]

    def test_load_store_events(self):
        def build(b):
            b.fstore(0, 1, 0)
            b.fload(2, 1, 8)

        machine = traced_machine(build,
                                 setup=lambda m: (m.iregs.__setitem__(1, 256),
                                                  m.dcache.warm_range(256, 16)))
        kinds = {event[0] for event in machine.trace}
        assert "store" in kinds and "load" in kinds

    def test_occupancy(self):
        machine = traced_machine(lambda b: b.fadd(16, 0, 8, vl=4))
        assert occupancy(machine.trace, "element") == [0, 1, 2, 3]


class TestTimelineRendering:
    def test_figure5_shape(self):
        def build(b):
            b.fadd(8, 0, 1)
            b.fadd(9, 2, 3)
            b.fadd(12, 8, 9)

        machine = traced_machine(build)
        art = render_timeline(machine.trace)
        assert "R8 := R0 + R1" in art
        assert "E" in art
        assert "cycle" in art

    def test_memory_row_present(self):
        def build(b):
            b.fload(0, 1, 0)

        machine = traced_machine(build,
                                 setup=lambda m: m.dcache.warm_range(0, 64))
        art = render_timeline(machine.trace)
        assert "Load/Store IR" in art
        assert "L" in art

    def test_long_labels_truncated(self):
        machine = traced_machine(lambda b: b.fadd(16, 0, 8, vl=16))
        art = render_timeline(machine.trace, label_width=10)
        for line in art.splitlines():
            label = line[:10]
            assert len(label) <= 10


class TestCli:
    def test_run_command(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("fadd f2, f0, f1\nhalt\n")
        code = main(["run", str(source), "--freg", "0=1.5", "--freg", "1=2.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "F2  = 3.5" in out

    def test_trace_command(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("fadd f16, f0, f8, vl=4\nhalt\n")
        code = main(["trace", str(source)])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycle" in out
        assert "EEEE" in out

    def test_figures_command(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "35 cycles, 20.0 MFLOPS" in out

    def test_livermore_command(self, capsys):
        assert main(["livermore", "1", "--coding", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_linpack_command(self, capsys):
        assert main(["linpack", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_kernel_command(self, tmp_path, capsys):
        source = tmp_path / "poly.mk"
        source.write_text("""
            input a; output o; param c;
            o[0] = a[0] * a[0] + c;
        """)
        code = main(["kernel", str(source), "--n", "10", "--param", "c=1.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "self-check: ok" in out
