"""Differential self-checking: the cycle-level machine against the pure
functional reference executor, on real workloads and under injected
faults."""

import pytest

from repro.core.exceptions import DivergenceError
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES
from repro.robustness import (
    DifferentialChecker,
    FaultPlan,
    ReferenceExecutor,
    bit_exact,
    check_kernel,
    run_differential,
)
from repro.workloads.graphics import (
    POINT_BASE_REG,
    RESULT_BASE_REG,
    load_matrix,
    reference_transform,
    transform_program,
)
from repro.workloads.linpack import build_linpack
from repro.workloads.livermore import build_loop


def fast_config(**overrides):
    return MachineConfig(model_ibuffer=False, **overrides)


class TestBitExact:
    def test_distinguishes_signed_zero_and_types(self):
        assert bit_exact(1.5, 1.5)
        assert not bit_exact(0.0, -0.0)
        assert not bit_exact(1, 1.0)
        assert bit_exact(float("nan"), float("nan"))
        assert not bit_exact(float("nan"), float("-nan"))


class TestReferenceStandalone:
    def test_matches_machine_on_vector_scalar_mix(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.li(2, 256)
        for i in range(8):
            b.fload(i, 1, 8 * i)
        b.fmul(8, 0, 0, vl=8)           # squares
        b.fadd(16, 8, 0, vl=8)          # x^2 + x
        for i in range(8):
            b.fstore(16 + i, 2, 8 * i)
        b.li(3, 0)
        b.li(4, 8)
        b.li(5, 0)
        top = b.here("sum")
        b.lw(6, 2, 0)
        b.add(5, 5, 6)
        b.addi(2, 2, 8)
        b.addi(3, 3, 1)
        b.blt(3, 4, top)
        b.sw(5, 0, 512)
        program = b.build()

        def build_memory():
            memory = Memory(size_bytes=4096)
            for i in range(8):
                memory.write(8 * i, 0.5 + 0.25 * i)
            return memory

        machine = MultiTitan(program, memory=build_memory(),
                             config=fast_config())
        machine.run()

        reference = ReferenceExecutor(program.instructions,
                                      memory_words=build_memory().words)
        reference.run()

        assert reference.halted
        for register in range(52):
            assert bit_exact(reference.fregs[register],
                             machine.fpu.regs.values[register])
        for register in range(32):
            assert bit_exact(reference.iregs[register],
                             machine.iregs[register])
        for index, word in enumerate(reference.memory):
            assert bit_exact(word, machine.memory.words[index])

    def test_reference_models_overflow_abort(self):
        """The reference truncates a vector at its first overflowing
        element and records the PSW capture, like the hardware."""
        b = ProgramBuilder()
        b.fmul(16, 0, 8, vl=4)
        program = b.build()
        reference = ReferenceExecutor(program.instructions)
        reference.fregs[0:4] = [1.0, 1e200, 3.0, 4.0]
        reference.fregs[8:12] = [1.0, 1e200, 1.0, 1.0]
        effects = reference.execute(program.instructions[0], pc=0)
        assert effects["freg_writes"] == [(16, 1.0), (17, float("inf"))]
        assert reference.psw_overflow
        assert reference.psw_overflow_dest == 17
        assert reference.psw_overflow_element == 1
        assert reference.fregs[18] == 0.0


class TestCleanWorkloads:
    """Acceptance: the checker runs clean on every existing workload."""

    @pytest.mark.parametrize("loop", [1, 3, 7, 12])
    def test_livermore_loops(self, loop):
        checker = check_kernel(build_loop(loop))
        assert checker.commits > 0
        assert checker.retirements > 0

    def test_livermore_scalar_coding(self):
        checker = check_kernel(build_loop(3, coding="scalar"))
        assert checker.commits > 0

    def test_linpack(self):
        checker = check_kernel(build_linpack(8, "vector"))
        assert checker.retirements > 0

    def test_graphics_transform(self):
        matrix = [[float(i * 4 + j + 1) for j in range(4)] for i in range(4)]
        points = [[1.0, 2.0, 3.0, 1.0], [0.5, -1.0, 2.0, 1.0]]
        memory = Memory()
        arena = Arena(memory, base=64)
        flat = [c for point in points for c in point]
        in_base = arena.alloc_array(flat)
        out_base = arena.alloc(4 * len(points))

        def setup(machine):
            machine.iregs[POINT_BASE_REG] = in_base
            machine.iregs[RESULT_BASE_REG] = out_base
            load_matrix(machine, matrix)

        result, checker = run_differential(
            transform_program(len(points)), memory=memory,
            config=fast_config(), setup=setup)
        assert checker.retirements > 0
        for index, point in enumerate(points):
            got = memory.read_block(out_base + 4 * index * WORD_BYTES, 4)
            assert got == reference_transform(matrix, point)

    def test_interrupt_handler_stream_is_checked_too(self):
        """The reference follows the committed stream, so the handler's
        instructions are verified without modelling interrupt timing."""
        b = ProgramBuilder()
        done = b.label("done")
        b.fadd(2, 1, 0, vl=16)
        b.j(done)
        handler = b.here("handler")
        b.addi(3, 3, 5)
        b.rfe()
        b.place(done)
        b.halt()
        program = b.build()

        machine = MultiTitan(program, config=fast_config())
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        machine.schedule_interrupt(2, handler.index)
        checker = DifferentialChecker(machine)
        machine.run()
        checker.final_check()
        assert machine.iregs[3] == 5
        assert checker.commits >= 5


class TestFaultDetection:
    def _vector_machine(self, trace=False):
        b = ProgramBuilder()
        b.fadd(8, 0, 0, vl=8)
        b.halt()
        machine = MultiTitan(b.build(), config=fast_config(trace=trace))
        machine.fpu.regs.write_group(0, [float(i + 1) for i in range(8)])
        return machine

    def test_single_bit_fault_detected_within_one_retirement(self):
        """Acceptance: a single-bit register flip is flagged at the first
        retirement that consumed it -- not later."""
        # Discover when element 5 (destination R13) issues, from a clean
        # traced run; its source F5 is read in that same cycle.
        probe = self._vector_machine(trace=True)
        probe.run()
        issue_cycle = next(cycle for kind, cycle, _seq, rr in probe.trace
                           if kind == "element" and rr == 13)

        machine = self._vector_machine()
        plan = FaultPlan()
        plan.flip_freg(issue_cycle, 5, 51)  # corrupt F5 as element 5 reads it
        machine.fault_plan = plan
        checker = DifferentialChecker(machine)
        with pytest.raises(DivergenceError) as info:
            machine.run()
            checker.final_check()
        error = info.value
        assert error.register == 13
        # Caught at exactly the faulty element's own retirement.
        assert error.cycle == issue_cycle + machine.config.fpu_latency
        assert not bit_exact(error.actual, error.expected)

    def test_integer_fault_detected_at_commit(self):
        b = ProgramBuilder()
        b.li(1, 10)
        b.addi(2, 1, 5)
        b.addi(3, 2, 1)
        b.halt()
        machine = MultiTitan(b.build(), config=fast_config())
        plan = FaultPlan()
        plan.flip_ireg(1, 1, 3)  # corrupt r1 after li commits
        machine.fault_plan = plan
        checker = DifferentialChecker(machine)
        with pytest.raises(DivergenceError) as info:
            machine.run()
            checker.final_check()
        assert info.value.register in (1, 2, 3)

    def test_memory_fault_detected(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.nop()
        b.nop()
        b.nop()
        b.fload(0, 1, 0)
        b.fstore(0, 1, 8)
        b.halt()
        memory = Memory(size_bytes=1024)
        memory.write(0, 2.5)
        machine = MultiTitan(b.build(), memory=memory, config=fast_config())
        plan = FaultPlan()
        plan.flip_memory(2, 0, 50)  # corrupt the word before the load
        machine.fault_plan = plan
        checker = DifferentialChecker(machine)
        with pytest.raises(DivergenceError):
            machine.run()
            checker.final_check()

    def test_fault_free_run_is_clean(self):
        machine = self._vector_machine()
        checker = DifferentialChecker(machine)
        machine.run()
        checker.final_check()
        assert checker.retirements == 8

    def test_detach_stops_checking(self):
        machine = self._vector_machine()
        checker = DifferentialChecker(machine)
        checker.detach()
        plan = FaultPlan()
        plan.flip_freg(0, 3, 40)
        machine.fault_plan = plan
        machine.run()  # no divergence raised: hooks removed
        assert checker.commits == 0
