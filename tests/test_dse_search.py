"""DSE search: fitness, agents, trajectories, determinism, resume,
reporting, and the ``dse``/``sweep`` CLI surface."""

import hashlib
import json
import random

import pytest

import repro.tools.cli as cli
from repro.api import RunRequest, Session, sweep_requests
from repro.dse import (AGENTS, Evaluation, FitnessSpec, ParameterSpace,
                       TrajectoryError, area_proxy, compare_document,
                       create_agent, load_trajectory, report_document,
                       run_search, search_space_for, space_preset,
                       validate_trajectory)
from repro.dse.fitness import better, result_cycles
from repro.dse.space import Choice, IntRange
from repro.dse.trajectory import repair_torn_tail
from repro.cpu.machine import MachineConfig


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One shared result cache: every simulated point in this module is
    simulated at most once."""
    return str(tmp_path_factory.mktemp("dse-cache"))


def make_session(cache_dir, jobs=1):
    return Session(jobs=jobs, progress=False, cache_dir=cache_dir)


def search(cache_dir, path, agent="random", budget=15, seed=42, jobs=1,
           resume=False, space=None, fitness=None, **agent_opts):
    return run_search(space or space_preset("smoke"),
                      fitness or FitnessSpec("dse-smoke"),
                      create_agent(agent, **agent_opts), budget,
                      make_session(cache_dir, jobs), str(path), seed=seed,
                      resume=resume)


def file_digest(path):
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


# ---------------------------------------------------------------------------
# Fitness
# ---------------------------------------------------------------------------

class TestFitness:
    def test_unknown_suite_and_objective(self):
        with pytest.raises(ValueError, match="unknown fitness suite"):
            FitnessSpec("no-such-suite")
        with pytest.raises(ValueError, match="unknown objective"):
            FitnessSpec("dse-smoke", objective="speed")

    def test_vl_param_threads_the_ceiling(self):
        spec = FitnessSpec("dse-smoke")
        low = spec.requests({"max_vl": 4})
        high = spec.requests({"max_vl": 16})
        assert all(req.params["vl"] == 4 for req in low)
        assert all(req.params["vl"] == 16 for req in high)

    def test_vl_cap_bounds_register_hungry_kernels(self):
        # Livermore loop 7 streams seven operand arrays: above vl=4 its
        # codegen runs out of FPU registers, so its suite entries cap
        # the threaded vl while sibling loops still ride the ceiling.
        spec = FitnessSpec("livermore-quick")
        by_loop = {req.params["loop"]: req.params["vl"]
                   for req in spec.requests({"max_vl": 16})}
        assert by_loop == {1: 16, 3: 16, 7: 4, 12: 16}
        by_loop = {req.params["loop"]: req.params["vl"]
                   for req in spec.requests({"max_vl": 2})}
        assert by_loop == {1: 2, 3: 2, 7: 2, 12: 2}

    def test_linpack_floor_becomes_a_space_constraint(self):
        constraint = FitnessSpec("linpack").constraint()
        assert constraint.name == "fitness:linpack:max_vl>=8"
        assert not constraint.admits({"max_vl": 4})
        assert constraint.admits({"max_vl": 8})
        assert FitnessSpec("dse-smoke").constraint() is None

    def test_search_space_composes_fitness_constraint(self):
        space = ParameterSpace([Choice("max_vl", [4, 8, 16])])
        composed = search_space_for(space, FitnessSpec("linpack"))
        assert not composed.is_valid({"max_vl": 4})
        assert composed.is_valid({"max_vl": 8})
        # Idempotent: composing twice adds nothing.
        again = search_space_for(composed, FitnessSpec("linpack"))
        assert again is composed

    def test_result_cycles_single_and_split(self):
        assert result_cycles({"cycles": 10}) == 10
        assert result_cycles({"scalar_cycles": 4, "vector_cycles": 6,
                              "mflops": 1.5}) == 10
        with pytest.raises(ValueError, match="no cycle count"):
            result_cycles({"mflops": 1.5})

    def test_objectives_scale_the_same_cycles(self, cache_dir):
        overrides = {"fpu_latency": 2, "dcache_miss_penalty": 0,
                     "max_vl": 8}
        session = make_session(cache_dir)
        cycles_spec = FitnessSpec("dse-smoke", objective="cycles")
        results = session.run_many(cycles_spec.requests(overrides))
        score, cycles = cycles_spec.score(overrides, results)
        assert score == float(cycles) and cycles > 0
        ns_score, _ = FitnessSpec("dse-smoke", objective="cycles_ns").score(
            overrides, results)
        assert ns_score == cycles * MachineConfig.from_overrides(
            overrides).cycle_time_ns
        area_score, _ = FitnessSpec(
            "dse-smoke", objective="area_cycles").score(overrides, results)
        assert area_score == cycles * area_proxy(
            MachineConfig.from_overrides(overrides))

    def test_failed_result_fails_the_point(self, cache_dir):
        # livermore's fixed vl=8 codegen cannot run under max_vl=4:
        # the suite result comes back failed, the point scores None.
        spec = FitnessSpec("dse-smoke")
        session = make_session(cache_dir)
        requests = [RunRequest("livermore",
                               {"loop": 1, "n": 32, "warm": True, "vl": 8},
                               config={"max_vl": 4}),
                    RunRequest("livermore",
                               {"loop": 3, "n": 32, "warm": True, "vl": 8},
                               config={"max_vl": 4})]
        results = session.run_many(requests)
        assert spec.score({"max_vl": 4}, results) == (None, None)

    def test_better_prefers_lower_then_earlier(self):
        a = Evaluation(0, {}, 10.0, 10)
        b = Evaluation(1, {}, 10.0, 10)
        c = Evaluation(2, {}, 9.0, 9)
        failed = Evaluation(3, {}, None, None)
        assert better(c, a)
        assert not better(b, a)          # tie: earlier wins
        assert not better(failed, a)
        assert better(a, failed) and better(a, None)

    def test_round_trips_through_dict(self):
        spec = FitnessSpec("linpack", objective="area_cycles",
                           backend="percycle", max_cycles=1000)
        assert FitnessSpec.from_dict(spec.to_dict()).to_dict() == \
            spec.to_dict()


# ---------------------------------------------------------------------------
# Agents
# ---------------------------------------------------------------------------

class TestAgents:
    def test_registry_and_unknown_name(self):
        assert set(AGENTS) == {"random", "genetic", "halving"}
        with pytest.raises(ValueError, match="unknown search agent"):
            create_agent("annealing")

    def test_options_round_trip_rebuilds_identical_agent(self):
        for name, opts in (("random", {"batch": 3, "restart": 0.5}),
                           ("genetic", {"population": 4}),
                           ("halving", {"width": 8})):
            agent = create_agent(name, **opts)
            clone = create_agent(name, **agent.options())
            assert clone.options() == agent.options()

    def test_ask_is_deterministic_under_a_seed(self):
        space = space_preset("smoke")
        for name in AGENTS:
            batches = []
            for _ in range(2):
                agent, rng = create_agent(name), random.Random(9)
                first = agent.ask(space, rng)
                agent.tell([Evaluation(i, p, 100.0 + i, 100 + i)
                            for i, p in enumerate(first)])
                batches.append((first, agent.ask(space, rng)))
            assert batches[0] == batches[1]

    def test_agents_tolerate_all_failures(self):
        space = space_preset("smoke")
        for name in AGENTS:
            agent, rng = create_agent(name), random.Random(3)
            done = 0
            for _ in range(4):
                points = agent.ask(space, rng)
                agent.tell([Evaluation(done + i, p, None, None)
                            for i, p in enumerate(points)])
                done += len(points)
            assert done > 0 and agent.best.score is None


# ---------------------------------------------------------------------------
# Trajectory invariants
# ---------------------------------------------------------------------------

class TestTrajectory:
    def run_one(self, cache_dir, tmp_path, **kwargs):
        path = tmp_path / "t.jsonl"
        outcome = search(cache_dir, path, **kwargs)
        header, records, torn = load_trajectory(path)
        return outcome, header, records, torn

    def test_schema_and_validation(self, cache_dir, tmp_path):
        outcome, header, records, torn = self.run_one(cache_dir, tmp_path)
        assert header["schema"] == "repro-dse/1"
        assert header["seed"] == 42
        assert header["agent"] == {"name": "random",
                                   "options": {"batch": 5, "restart": 0.15}}
        assert torn is None
        assert len(records) == outcome.evaluations
        validate_trajectory(header, records)

    def test_monotone_best_and_causal_best_eval(self, cache_dir, tmp_path):
        _, _, records, _ = self.run_one(cache_dir, tmp_path, budget=20)
        best = None
        for record in records:
            assert record["best_eval"] is None or \
                record["best_eval"] <= record["eval"]
            if record["best_score"] is not None:
                assert best is None or record["best_score"] <= best
                best = record["best_score"]

    def test_corrupt_mid_file_line_is_a_hard_error(self, cache_dir,
                                                   tmp_path):
        _, header, records, _ = self.run_one(cache_dir, tmp_path)
        path = tmp_path / "corrupt.jsonl"
        lines = (tmp_path / "t.jsonl").read_bytes().split(b"\n")
        lines[3] = b"{nonsense"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(TrajectoryError, match="corrupt trajectory "
                                                  "line 4"):
            load_trajectory(path)

    def test_torn_tail_is_detected_and_healed(self, cache_dir, tmp_path):
        self.run_one(cache_dir, tmp_path)
        raw = (tmp_path / "t.jsonl").read_bytes()
        torn_path = tmp_path / "torn.jsonl"
        torn_path.write_bytes(raw[:-10])
        header, records, torn = load_trajectory(torn_path)
        assert torn is not None
        repair_torn_tail(torn_path, torn)
        _, healed, clean = load_trajectory(torn_path)
        assert clean is None and len(healed) == len(records)

    def test_validator_catches_broken_invariants(self):
        header = {"schema": "repro-dse/1", "agent": {}, "space": {},
                  "fitness": {}, "seed": 0}
        good = {"eval": 0, "point": {}, "score": 5.0, "cycles": 5,
                "failed": False, "best_score": 5.0, "best_eval": 0}
        validate_trajectory(header, [good])
        with pytest.raises(TrajectoryError, match="contiguous"):
            validate_trajectory(header, [dict(good, eval=1)])
        with pytest.raises(TrajectoryError, match="worsened"):
            validate_trajectory(header, [
                good, dict(good, eval=1, best_score=6.0, best_eval=1)])
        with pytest.raises(TrajectoryError, match="inconsistent"):
            validate_trajectory(header, [dict(good, failed=True)])
        with pytest.raises(TrajectoryError, match="missing key"):
            validate_trajectory(header, [{"eval": 0}])


# ---------------------------------------------------------------------------
# Determinism + resume (satellite)
# ---------------------------------------------------------------------------

class TestSearchDeterminism:
    def test_byte_identical_at_any_jobs_count(self, cache_dir, tmp_path):
        a = search(cache_dir, tmp_path / "j1.jsonl", budget=20, jobs=1)
        b = search(cache_dir, tmp_path / "j3.jsonl", budget=20, jobs=3)
        assert file_digest(a.path) == file_digest(b.path)
        assert a.best.point == b.best.point

    def test_resume_reaches_identical_bytes_and_best(self, cache_dir,
                                                     tmp_path):
        fresh = search(cache_dir, tmp_path / "fresh.jsonl", budget=20)
        short = search(cache_dir, tmp_path / "part.jsonl", budget=8)
        assert short.evaluations < fresh.evaluations
        resumed = search(cache_dir, tmp_path / "part.jsonl", budget=20,
                         resume=True)
        assert resumed.replayed == short.evaluations
        assert file_digest(tmp_path / "part.jsonl") == \
            file_digest(tmp_path / "fresh.jsonl")
        assert resumed.best.point == fresh.best.point
        assert resumed.best.score == fresh.best.score

    def test_resume_after_torn_mid_batch_interrupt(self, cache_dir,
                                                   tmp_path):
        # Simulate a SIGKILL mid-record: keep the header + 7 records and
        # a torn half-line; resume must heal, replay, and converge to
        # the same bytes as an uninterrupted run.
        fresh = search(cache_dir, tmp_path / "fresh.jsonl", budget=20)
        lines = (tmp_path / "fresh.jsonl").read_bytes().split(b"\n")
        torn = tmp_path / "torn.jsonl"
        torn.write_bytes(b"\n".join(lines[:8]) + b"\n" + lines[8][:17])
        resumed = search(cache_dir, torn, budget=20, resume=True)
        assert resumed.replayed == 7
        assert file_digest(torn) == file_digest(tmp_path / "fresh.jsonl")

    def test_resume_rejects_a_different_search(self, cache_dir, tmp_path):
        search(cache_dir, tmp_path / "t.jsonl", budget=8)
        with pytest.raises(TrajectoryError, match="seed"):
            search(cache_dir, tmp_path / "t.jsonl", budget=20, seed=43,
                   resume=True)
        with pytest.raises(TrajectoryError, match="agent"):
            search(cache_dir, tmp_path / "t.jsonl", budget=20,
                   agent="genetic", resume=True)
        with pytest.raises(TrajectoryError, match="space"):
            search(cache_dir, tmp_path / "t.jsonl", budget=20, resume=True,
                   space=ParameterSpace([IntRange("fpu_latency", 1, 6)]))

    def test_genetic_and_halving_are_deterministic_too(self, cache_dir,
                                                       tmp_path):
        for agent in ("genetic", "halving"):
            a = search(cache_dir, tmp_path / (agent + "-a.jsonl"),
                       agent=agent, budget=18, jobs=1)
            b = search(cache_dir, tmp_path / (agent + "-b.jsonl"),
                       agent=agent, budget=18, jobs=2)
            assert file_digest(a.path) == file_digest(b.path)
            header, records, _ = load_trajectory(a.path)
            validate_trajectory(header, records)

    def test_repeat_search_is_all_cache_hits(self, cache_dir, tmp_path):
        search(cache_dir, tmp_path / "warm1.jsonl", seed=77)
        again = search(cache_dir, tmp_path / "warm2.jsonl", seed=77)
        assert again.cache_hit_rate == 1.0

    def test_memo_short_circuits_duplicate_proposals(self, cache_dir,
                                                     tmp_path):
        outcome = search(cache_dir, tmp_path / "memo.jsonl", budget=30)
        assert outcome.memo_hits == outcome.evaluations - \
            outcome.distinct_points

    def test_budget_overshoot_is_bounded_by_one_batch(self, cache_dir,
                                                      tmp_path):
        outcome = search(cache_dir, tmp_path / "b.jsonl", budget=11,
                         batch=4)
        assert 11 <= outcome.evaluations < 11 + 4


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReports:
    def test_report_document(self, cache_dir, tmp_path):
        outcome = search(cache_dir, tmp_path / "r.jsonl", budget=20)
        document = report_document(tmp_path / "r.jsonl")
        assert document["schema"] == "repro-dse-report/1"
        assert document["evaluations"] == outcome.evaluations
        assert document["distinct_points"] == outcome.distinct_points
        assert document["best"]["point"] == outcome.best.point
        assert document["best"]["score"] == outcome.best.score
        assert document["best"]["config"] == outcome.best.point
        curve = document["curve"]
        assert curve[-1][0] == outcome.evaluations - 1
        scores = [score for _, score in curve if score is not None]
        assert scores == sorted(scores, reverse=True)

    def test_report_is_deterministic(self, cache_dir, tmp_path):
        search(cache_dir, tmp_path / "r.jsonl", budget=15)
        first = report_document(tmp_path / "r.jsonl")
        assert report_document(tmp_path / "r.jsonl") == first

    def test_compare_ranks_and_requires_shared_fitness(self, cache_dir,
                                                       tmp_path):
        search(cache_dir, tmp_path / "a.jsonl", budget=10, seed=1)
        search(cache_dir, tmp_path / "b.jsonl", budget=25, seed=2)
        document = compare_document([tmp_path / "a.jsonl",
                                     tmp_path / "b.jsonl"])
        assert document["schema"] == "repro-dse-compare/1"
        assert len(document["runs"]) == 2
        best_scores = {run["path"]: run["best"]["score"]
                       for run in document["runs"]}
        assert document["winner"] == min(best_scores,
                                         key=lambda p: (best_scores[p], p))
        search(cache_dir, tmp_path / "c.jsonl", budget=10,
               fitness=FitnessSpec("dse-smoke", objective="area_cycles"))
        with pytest.raises(ValueError, match="different fitness"):
            compare_document([tmp_path / "a.jsonl", tmp_path / "c.jsonl"])


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestDseCli:
    def test_search_report_compare(self, cache_dir, tmp_path, capsys):
        trajectory = str(tmp_path / "cli.jsonl")
        bench = str(tmp_path / "BENCH_dse.json")
        assert cli.main(["dse", "search", "--space", "smoke",
                         "--suite", "dse-smoke", "--agent", "random",
                         "--budget", "10", "--seed", "5",
                         "--trajectory", trajectory,
                         "--cache-dir", cache_dir,
                         "--json", bench]) == 0
        out = capsys.readouterr().out
        assert "best config" in out
        with open(bench) as handle:
            document = json.load(handle)
        assert document["sweep"] == "dse"
        assert document["results"][0]["workload"] == "dse"
        assert document["results"][0]["metrics"]["best_score"] is not None
        from repro.orchestrate import validate_bench_json
        validate_bench_json(bench)
        assert cli.main(["dse", "report", "--trajectory", trajectory]) == 0
        assert "improvement steps" in capsys.readouterr().out
        assert cli.main(["dse", "compare", trajectory, trajectory]) == 0
        assert "winner" in capsys.readouterr().out

    def test_resume_extends_via_cli(self, cache_dir, tmp_path, capsys):
        trajectory = str(tmp_path / "cli.jsonl")
        assert cli.main(["dse", "search", "--space", "smoke",
                         "--suite", "dse-smoke", "--budget", "8",
                         "--seed", "5", "--trajectory", trajectory,
                         "--cache-dir", cache_dir]) == 0
        assert cli.main(["dse", "resume", "--trajectory", trajectory,
                         "--budget", "16",
                         "--cache-dir", cache_dir]) == 0
        _, records, _ = load_trajectory(trajectory)
        assert len(records) >= 16
        capsys.readouterr()

    def test_agent_opt_flag(self, cache_dir, tmp_path, capsys):
        trajectory = str(tmp_path / "opt.jsonl")
        assert cli.main(["dse", "search", "--space", "smoke",
                         "--suite", "dse-smoke", "--budget", "6",
                         "--agent-opt", "batch=3",
                         "--trajectory", trajectory,
                         "--cache-dir", cache_dir]) == 0
        header, _, _ = load_trajectory(trajectory)
        assert header["agent"]["options"]["batch"] == 3
        capsys.readouterr()

    def test_dim_flag_overrides_space_preset(self, cache_dir, tmp_path,
                                             capsys):
        trajectory = str(tmp_path / "dim.jsonl")
        assert cli.main(["dse", "search", "--dim", "fpu_latency=int:1:4",
                         "--dim", "max_vl=8,16",
                         "--suite", "dse-smoke", "--budget", "6",
                         "--trajectory", trajectory,
                         "--cache-dir", cache_dir]) == 0
        header, _, _ = load_trajectory(trajectory)
        names = [d["name"] for d in header["space"]["dimensions"]]
        assert names == ["fpu_latency", "max_vl"]
        capsys.readouterr()


class TestSweepCli:
    def test_grid_shim_warns_and_matches_dim_byte_for_byte(self, cache_dir,
                                                           tmp_path,
                                                           capsys):
        old = str(tmp_path / "old.json")
        new = str(tmp_path / "new.json")
        with pytest.warns(DeprecationWarning, match="--grid.*deprecated"):
            assert cli.main(["sweep", "livermore", "--set", "loop=1",
                            "--set", "warm=true",
                             "--grid", "fpu_latency=1,3",
                             "--grid", "dcache_miss_penalty=0,14",
                             "--cache-dir", cache_dir,
                             "--json", old]) == 0
        assert cli.main(["sweep", "livermore", "--set", "loop=1",
                         "--set", "warm=true",
                         "--dim", "fpu_latency=1,3",
                         "--dim", "dcache_miss_penalty=0,14",
                         "--cache-dir", cache_dir,
                         "--json", new]) == 0
        from pathlib import Path
        assert Path(old).read_bytes() == Path(new).read_bytes()
        capsys.readouterr()

    def test_sweep_rejects_unknown_field_with_suggestion(self, capsys):
        with pytest.raises(ValueError, match="did you mean"):
            cli.main(["sweep", "livermore", "--dim", "fpu_latencyy=1,3"])
        capsys.readouterr()

    def test_typed_dim_axes(self, cache_dir, tmp_path, capsys):
        out = str(tmp_path / "typed.json")
        assert cli.main(["sweep", "livermore", "--set", "loop=1",
                         "--dim", "fpu_latency=int:1:3:2",
                         "--cache-dir", cache_dir, "--json", out]) == 0
        with open(out) as handle:
            document = json.load(handle)
        latencies = [entry["config"]["fpu_latency"]
                     for entry in document["results"]]
        assert latencies == [1, 3]
        capsys.readouterr()


class TestAblationSweepsOnSpace:
    """The named ablation sweeps now declare ParameterSpaces; their
    request streams must byte-match the historical hand-built lists."""

    @staticmethod
    def identity(request):
        return (request.workload, tuple(sorted(request.params.items())),
                tuple(sorted(request.config.items())))

    def test_ablation_latency_matches_legacy(self):
        for quick in (True, False):
            latencies = (1, 3, 8) if quick else (1, 2, 3, 5, 8)
            legacy = [RunRequest("livermore", {"loop": loop, "warm": True},
                                 config={"model_ibuffer": False,
                                         "fpu_latency": latency})
                      for latency in latencies for loop in (1, 3, 11)]
            new = sweep_requests("ablation-latency", quick=quick)
            assert [self.identity(r) for r in new] == \
                [self.identity(r) for r in legacy]

    def test_ablation_cache_matches_legacy(self):
        for quick in (True, False):
            penalties = (0, 14, 56) if quick else (0, 7, 14, 28, 56)
            legacy = []
            for penalty in penalties:
                config = {"dcache_miss_penalty": penalty,
                          "ibuf_miss_penalty": penalty}
                for params in ({"loop": 1, "warm": False},
                               {"loop": 1, "warm": True},
                               {"loop": 16, "warm": False}):
                    legacy.append(RunRequest("livermore", params,
                                             config=config))
            new = sweep_requests("ablation-cache", quick=quick)
            assert [self.identity(r) for r in new] == \
                [self.identity(r) for r in legacy]
