"""Tests for the Linpack workload (dgefa/dgesl, section 3.3)."""

import pytest

from repro.workloads.common import run_kernel
from repro.workloads.linpack import (
    build_linpack,
    generate_system,
    linpack_flops,
    measure_linpack,
    reference_solve,
)


class TestReferenceSolver:
    def test_solves_identity(self):
        n = 4
        a = [0.0] * (n * n)
        for i in range(n):
            a[i + n * i] = 1.0
        b = [1.0, 2.0, 3.0, 4.0]
        assert reference_solve(n, a, b) == b

    def test_solves_random_system(self):
        n = 12
        a, b, x_true = generate_system(n, seed=7)
        x = reference_solve(n, a, b)
        for got, want in zip(x, x_true):
            assert got == pytest.approx(want, rel=1e-8, abs=1e-10)

    def test_pivoting_handles_zero_leading_element(self):
        a = [0.0, 1.0,   # column 0: a[0][0]=0 forces a pivot swap
             1.0, 1.0]   # column 1
        b = [2.0, 3.0]
        x = reference_solve(2, a, b)
        # x solves [[0,1],[1,1]] x = b  (column-major storage)
        assert x[0] == pytest.approx(3.0 - 2.0)
        assert x[1] == pytest.approx(2.0)

    def test_flop_count(self):
        assert linpack_flops(100) == int(2e6 / 3 + 2e4)


class TestMachineKernels:
    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_small_system_solves(self, coding):
        result = run_kernel(build_linpack(8, coding))
        assert result.passed, result.check_error

    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_medium_system_solves(self, coding):
        result = run_kernel(build_linpack(20, coding))
        assert result.passed, result.check_error

    def test_odd_size_exercises_remainder_loop(self):
        result = run_kernel(build_linpack(13, "vector"))
        assert result.passed, result.check_error

    def test_different_seeds(self):
        for seed in (1, 2, 3):
            result = run_kernel(build_linpack(10, "vector", seed=seed))
            assert result.passed, result.check_error

    def test_pivoting_is_exercised(self):
        """Random systems must trigger at least one row interchange."""
        n = 16
        a, b, _ = generate_system(n, seed=1989)
        swaps = 0
        a_work = list(a)
        for k in range(n - 1):
            l = max(range(k, n), key=lambda i: abs(a_work[i + n * k]))
            if l != k:
                swaps += 1
            # crude elimination to keep pivot choices realistic
            piv = a_work[l + n * k]
            a_work[l + n * k], a_work[k + n * k] = a_work[k + n * k], piv
        assert swaps > 0


class TestPerformanceShape:
    def test_vector_beats_scalar(self):
        m = measure_linpack(24)
        assert m.check_error is None
        assert m.vector_mflops > m.scalar_mflops

    def test_speedup_is_moderate(self):
        """The paper's 6.1/4.1 = 1.5x: vectorization helps Linpack less
        than peak (memory bandwidth bound)."""
        m = measure_linpack(24)
        assert 1.1 < m.speedup < 2.5

    def test_warm_beats_cold(self):
        cold = run_kernel(build_linpack(16, "vector"), warm=False)
        warm = run_kernel(build_linpack(16, "vector"), warm=True)
        assert warm.mflops > cold.mflops
