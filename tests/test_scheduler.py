"""Tests for the gap-filling load scheduler pass."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import isa
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES
from repro.vectorize.scheduler import schedule_loads, schedule_report


def run(program, memory, setup=None, warm_bytes=None):
    machine = MultiTitan(program, memory=memory,
                         config=MachineConfig(model_ibuffer=False))
    if setup:
        setup(machine)
    if warm_bytes:
        machine.dcache.warm_range(*warm_bytes)
    result = machine.run()
    return machine, result


def naive_chain_program():
    """A four-op dependence chain followed by six unrelated loads."""
    b = ProgramBuilder()
    b.fadd(2, 1, 1)
    b.fadd(3, 2, 2)
    b.fadd(4, 3, 3)
    b.fadd(5, 4, 4)
    for i in range(6):
        b.fload(30 + i, 1, i * WORD_BYTES)
    return b.build()


class TestGapFilling:
    def test_loads_interleave_into_chain_gaps(self):
        program = schedule_loads(naive_chain_program())
        opcodes = [instruction[0] for instruction in program.instructions]
        # Loads now sit between the chained FALUs, two per gap.
        assert opcodes[:7] == [isa.FALU, isa.FLOAD, isa.FLOAD, isa.FALU,
                               isa.FLOAD, isa.FLOAD, isa.FALU]

    def test_chain_program_gets_faster(self):
        memory = Memory()
        arena = Arena(memory, base=256)
        data = arena.alloc_array([float(i) for i in range(6)])

        def measure(program):
            fresh = Memory()
            fresh.words[:] = memory.words
            machine, result = run(program, fresh,
                                  setup=lambda m: m.iregs.__setitem__(1, data),
                                  warm_bytes=(data, 48))
            return machine, result

        baseline_machine, baseline = measure(naive_chain_program())
        scheduled_machine, scheduled = measure(
            schedule_loads(naive_chain_program()))
        assert scheduled.completion_cycle < baseline.completion_cycle
        assert scheduled_machine.fpu.regs.read_group(30, 6) == \
            baseline_machine.fpu.regs.read_group(30, 6)
        assert scheduled_machine.fpu.regs.read(5) == \
            baseline_machine.fpu.regs.read(5)

    def test_report_counts_moves(self):
        before = naive_chain_program()
        after = schedule_loads(before)
        report = schedule_report(before, after)
        assert report["loads_moved"] >= 4


class TestLegality:
    def test_load_does_not_cross_store(self):
        b = ProgramBuilder()
        b.fadd(2, 1, 1)
        b.fadd(3, 2, 2)
        b.fstore(10, 1, 0)
        b.fload(30, 1, 0)   # may not pass the store
        program = schedule_loads(b.build())
        opcodes = [i[0] for i in program.instructions]
        assert opcodes.index(isa.FSTORE) < opcodes.index(isa.FLOAD)

    def test_dependent_store_already_fills_the_gap(self):
        """A store of the producer's result waits the latency out; no
        load should be pulled past it (it would only delay the chain)."""
        b = ProgramBuilder()
        b.fadd(2, 1, 1)
        b.fstore(2, 1, 0)   # dependent store in the gap
        b.fadd(3, 2, 2)
        b.fload(30, 1, 8)
        before = b.build()
        after = schedule_loads(before)
        assert after.instructions == before.instructions

    def test_register_conflict_blocks_the_pull(self):
        b = ProgramBuilder()
        b.fadd(2, 1, 1)
        b.fadd(3, 2, 2)
        b.fload(3, 1, 0)   # destination read/written by the chain
        before = b.build()
        after = schedule_loads(before)
        assert after.instructions == before.instructions

    def test_base_register_conflict_blocks_the_pull(self):
        b = ProgramBuilder()
        b.fadd(2, 1, 1)
        b.fadd(3, 2, 2)
        b.addi(1, 1, 8)
        b.fload(30, 1, 0)   # base produced between gap and load
        program = schedule_loads(b.build())
        opcodes = [i[0] for i in program.instructions]
        assert opcodes.index(isa.ADDI) < opcodes.index(isa.FLOAD)

    def test_vector_footprint_blocks_the_pull(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=8)
        b.fadd(24, 16, 16, vl=1)
        b.fload(20, 1, 0)   # element 4's destination of the first vector
        before = b.build()
        after = schedule_loads(before)
        position_falu = max(i for i, ins in enumerate(after.instructions)
                            if ins[0] == isa.FALU)
        position_load = next(i for i, ins in enumerate(after.instructions)
                             if ins[0] == isa.FLOAD)
        assert position_load > position_falu

    def test_loads_do_not_cross_blocks(self):
        b = ProgramBuilder()
        b.fadd(2, 1, 1)
        b.fadd(3, 2, 2)
        b.blt(1, 2, b.here("next"))  # block boundary right after the chain
        b.fload(30, 1, 0)
        program = schedule_loads(b.build())
        opcodes = [i[0] for i in program.instructions]
        assert opcodes.index(isa.BLT) < opcodes.index(isa.FLOAD)

    def test_vector_producer_needs_no_filling(self):
        """A VL-8 producer occupies the IR for 8 cycles itself; the
        dependent consumer never stalls, so nothing should move."""
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=8)
        b.fadd(24, 16, 17, vl=1)
        b.fload(40, 1, 0)
        before = b.build()
        after = schedule_loads(before)
        assert after.instructions == before.instructions


class TestEquivalenceOnRealKernels:
    @pytest.mark.parametrize("loop", list(range(1, 25)))
    def test_livermore_results_identical(self, loop):
        from repro.workloads.livermore import build_loop
        from repro.workloads.common import run_kernel, BuiltKernel

        kernel = build_loop(loop)
        baseline = run_kernel(kernel)
        scheduled_kernel = BuiltKernel(
            name=kernel.name + " (scheduled)",
            program=schedule_loads(kernel.program),
            memory=kernel.memory,
            nominal_flops=kernel.nominal_flops,
            setup=kernel.setup,
            check=kernel.check,
        )
        scheduled = run_kernel(scheduled_kernel)
        assert scheduled.passed, scheduled.check_error
        assert scheduled.cycles <= baseline.cycles

    def test_linpack_unharmed(self):
        from repro.workloads.linpack import build_linpack
        from repro.workloads.common import run_kernel, BuiltKernel

        kernel = build_linpack(12, "vector")
        baseline = run_kernel(kernel)
        scheduled = BuiltKernel(kernel.name, schedule_loads(kernel.program),
                                kernel.memory, kernel.nominal_flops,
                                kernel.setup, kernel.check)
        result = run_kernel(scheduled)
        assert result.passed, result.check_error
        assert result.cycles <= baseline.cycles * 1.01


class TestFuzzEquivalence:
    @given(st.integers(0, 10_000), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_random_ir_kernels_unchanged_by_scheduling(self, seed, n):
        from repro.vectorize.ir import Kernel
        from repro.workloads.common import Lcg

        k = Kernel(vl=2)
        a, b_h = k.input("a"), k.input("b")
        out = k.output("out")
        k.assign(out, (a[0] * b_h[1] + a[1]) * b_h[0] + a[0])
        rng = Lcg(seed)
        data = {"a": rng.floats(n + 1, 0.5, 1.5),
                "b": rng.floats(n + 1, 0.5, 1.5)}
        compiled = k.compile(n=n, data=data)
        baseline = compiled.run()
        assert baseline.passed

        compiled.program = schedule_loads(compiled.program)
        scheduled = compiled.run()
        assert scheduled.passed, scheduled.check_error
        assert scheduled.outputs == baseline.outputs
        assert scheduled.cycles <= baseline.cycles
