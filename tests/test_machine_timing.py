"""Cycle-exact reproduction of the paper's timing figures, plus tests of
the machine's issue rules (dual issue, store port, delay slots, the
vector/load-store execution constraint)."""

import pytest

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES
from repro.workloads import fib, gather, graphics, reductions


def machine_for(program, memory=None, **config_kwargs):
    config_kwargs.setdefault("model_ibuffer", False)
    return MultiTitan(program, memory=memory,
                      config=MachineConfig(**config_kwargs))


class TestFigure5to8:
    """The reduction and recurrence schedules of Figures 5-8."""

    def test_figure5_scalar_tree_takes_12_cycles(self):
        outcome = reductions.run_reduction("scalar_tree")
        assert outcome.cycles == reductions.SCALAR_TREE_CYCLES == 12
        assert outcome.total == 36.0
        assert outcome.instructions_transferred == 7

    def test_figure6_linear_vector_takes_24_cycles(self):
        outcome = reductions.run_reduction("linear_vector")
        assert outcome.cycles == reductions.LINEAR_VECTOR_CYCLES == 24
        assert outcome.total == 36.0
        assert outcome.instructions_transferred == 1

    def test_figure7_vector_tree_takes_12_cycles(self):
        outcome = reductions.run_reduction("vector_tree")
        assert outcome.cycles == reductions.VECTOR_TREE_CYCLES == 12
        assert outcome.total == 36.0
        assert outcome.instructions_transferred == 3

    def test_figure7_frees_cpu_for_nine_cycles(self):
        """"There are 9 cycles out of the 12 in which the CPU may issue
        other instructions.\""""
        outcome = reductions.run_reduction("vector_tree")
        assert outcome.free_cpu_cycles == 9

    def test_all_strategies_agree_numerically(self):
        values = [2.0, -1.5, 3.25, 0.5, 7.0, -2.0, 1.0, 4.75]
        outcomes = reductions.run_all(values)
        totals = {o.total for o in outcomes.values()}
        assert len(totals) == 1

    def test_figure8_fibonacci_takes_24_cycles(self):
        outcome = fib.run_fibonacci(10)
        assert outcome.cycles == fib.FIGURE8_CYCLES == 24
        assert outcome.values == [1.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0,
                                  21.0, 34.0, 55.0]
        assert outcome.instructions_transferred == 1

    def test_longer_recurrence_chains_multiple_vectors(self):
        outcome = fib.run_fibonacci(30)
        assert outcome.values == fib.fibonacci_reference(30)
        assert outcome.instructions_transferred == 2


class TestFigure9:
    def test_fixed_stride_loads_one_per_cycle(self):
        outcome = gather.run_fixed_stride(stride_words=1)
        assert outcome.values == [10.0 * (k + 1) for k in range(8)]
        # 8 loads at one per cycle, plus the final load's data cycle.
        assert outcome.cycles <= 9

    def test_larger_stride_costs_the_same(self):
        unit = gather.run_fixed_stride(stride_words=1).cycles
        strided = gather.run_fixed_stride(stride_words=7).cycles
        assert strided == unit

    def test_linked_list_is_about_double(self):
        stride = gather.run_fixed_stride().cycles
        linked = gather.run_linked_list().cycles
        assert linked == pytest.approx(2 * stride, abs=3)
        assert gather.run_linked_list().values == \
            [10.0 * (k + 1) for k in range(8)]


class TestFigure13:
    def test_total_latency_35_cycles(self):
        outcome = graphics.run_transform()
        assert outcome.cycles == graphics.FIGURE13_CYCLES == 35

    def test_20_mflops(self):
        outcome = graphics.run_transform()
        assert outcome.mflops == pytest.approx(20.0, rel=1e-9)

    def test_single_scoreboard_stall(self):
        """"There is only one scoreboard stall for data dependencies in
        the routine" -- one stall event, two stall cycles."""
        outcome = graphics.run_transform()
        assert outcome.scoreboard_stalls == 2

    def test_result_is_the_matrix_vector_product(self):
        matrix = [[1.0, 2.0, 0.0, 0.0],
                  [0.0, 1.0, 0.0, 0.0],
                  [0.0, 0.0, 1.0, 0.0],
                  [0.0, 0.0, 0.0, 1.0]]
        outcome = graphics.run_transform(matrix=matrix,
                                         points=[[1.0, 1.0, 1.0, 1.0]])
        assert outcome.result == [3.0, 1.0, 1.0, 1.0]

    def test_many_points_stream(self):
        points = [[float(i), 1.0, 2.0, 1.0] for i in range(5)]
        outcome = graphics.run_transform(points=points)
        assert len(outcome.result) == 5
        assert outcome.cycles < 5 * 40  # overlap beats 5 isolated transforms


class TestDualIssue:
    def test_load_overlaps_vector_issue(self):
        """Peak two operations per cycle: loads proceed through the L/S IR
        while the ALU IR issues vector elements."""
        memory = Memory()
        arena = Arena(memory, base=64)
        data = arena.alloc_array([float(i) for i in range(8)])
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=8)          # occupies the ALU IR for 8 cycles
        for i in range(8):
            b.fload(32 + i, 1, i * WORD_BYTES)
        program = b.build()
        machine = machine_for(program, memory)
        machine.iregs[1] = data
        machine.dcache.warm_range(data, 64)
        result = machine.run()
        # The 8 loads hide entirely under the vector issue + drain.
        assert result.completion_cycle <= 11
        assert machine.fpu.regs.read_group(32, 8) == [float(i) for i in range(8)]

    def test_two_ops_per_cycle_peak(self):
        memory = Memory()
        arena = Arena(memory, base=64)
        data = arena.alloc_array([1.0] * 16)
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=16)
        for i in range(15):
            b.fload(33 + i, 1, i * WORD_BYTES)
        program = b.build()
        machine = machine_for(program, memory)
        machine.iregs[1] = data
        machine.dcache.warm_range(data, 16 * WORD_BYTES)
        result = machine.run()
        issued_ops = machine.fpu.stats.elements_issued + machine.fpu.stats.loads
        assert issued_ops / result.completion_cycle > 1.5


class TestStorePort:
    def test_back_to_back_stores_every_other_cycle(self):
        memory = Memory()
        b = ProgramBuilder()
        for i in range(4):
            b.fstore(i, 1, i * WORD_BYTES)
        machine = machine_for(b.build(), memory)
        machine.iregs[1] = 256
        machine.dcache.warm_range(256, 64)
        result = machine.run()
        # 4 stores at 2 cycles each, minus trailing overlap with halt.
        assert result.completion_cycle == 7

    def test_store_then_alu_overlaps(self):
        b = ProgramBuilder()
        b.fstore(0, 1, 0)
        b.fadd(10, 2, 3)
        machine = machine_for(b.build(), Memory())
        machine.iregs[1] = 256
        machine.dcache.warm_range(256, 16)
        result = machine.run()
        assert result.completion_cycle <= 5


class TestDelaySlots:
    def test_integer_load_has_one_delay_slot(self):
        memory = Memory()
        memory.write(256, 7)
        b = ProgramBuilder()
        b.li(1, 256)
        b.lw(2, 1, 0)
        b.addi(3, 2, 1)   # reads r2 in the delay slot -> one stall
        machine = machine_for(b.build(), memory)
        machine.dcache.warm_range(256, 8)
        result = machine.run()
        assert machine.iregs[3] == 8
        assert machine.stats.stall_int_delay == 1

    def test_independent_instruction_fills_delay_slot(self):
        memory = Memory()
        memory.write(256, 7)
        b = ProgramBuilder()
        b.li(1, 256)
        b.lw(2, 1, 0)
        b.li(4, 9)        # independent
        b.addi(3, 2, 1)
        machine = machine_for(b.build(), memory)
        machine.dcache.warm_range(256, 8)
        machine.run()
        assert machine.stats.stall_int_delay == 0

    def test_taken_branch_costs_two_cycles(self):
        b = ProgramBuilder()
        b.li(1, 1)
        target = b.label()
        b.j(target)
        b.place(target)
        b.halt()
        result = machine_for(b.build()).run()
        assert result.halt_cycle == 3  # li(1) + j(2)


class TestVectorInterlock:
    """The section 2.3.2 execution constraint between a vector instruction
    and following loads/stores of the current element's registers."""

    def test_store_of_unissued_result_waits(self):
        """The store reaches the L/S IR while the producing instruction
        is still waiting (element not yet issued): the interlock, not the
        scoreboard, must hold it."""
        b = ProgramBuilder()
        b.fadd(1, 0, 0)    # R1 := R0 + R0
        b.fadd(2, 1, 1)    # R2 := R1 + R1, stalls on R1
        b.fstore(2, 1, 0)  # must not read R2 before the add issues
        machine = machine_for(b.build(), Memory())
        machine.fpu.regs.write(0, 1.5)
        machine.iregs[1] = 256
        machine.dcache.warm_range(256, 16)
        machine.run()
        assert machine.memory.read(256) == 6.0
        assert machine.stats.stall_vector_interlock >= 1

    def test_stores_in_element_order_follow_the_vector(self):
        """"If a vector operation is followed by stores of each result
        register, the stores can be performed in the same order as the
        result elements are produced.\""""
        memory = Memory()
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=4)
        for i in range(4):
            b.fstore(16 + i, 1, i * WORD_BYTES)
        machine = machine_for(b.build(), memory)
        machine.fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0])
        machine.fpu.regs.write_group(8, [10.0, 20.0, 30.0, 40.0])
        machine.iregs[1] = 256
        machine.dcache.warm_range(256, 64)
        machine.run()
        assert memory.read_block(256, 4) == [11.0, 22.0, 33.0, 44.0]

    def test_load_into_current_element_source_waits(self):
        memory = Memory()
        memory.write(256, 99.0)
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=2)
        b.fload(1, 1, 0)   # element 1 reads R1; the load must wait
        machine = machine_for(b.build(), memory)
        machine.fpu.regs.write_group(0, [1.0, 2.0])
        machine.fpu.regs.write_group(8, [10.0, 20.0])
        machine.iregs[1] = 256
        machine.dcache.warm_range(256, 8)
        machine.run()
        assert machine.fpu.regs.read(17) == 22.0  # old R1 value used
        assert machine.fpu.regs.read(1) == 99.0

    def test_fcmp_waits_for_current_element(self):
        b = ProgramBuilder()
        b.fadd(2, 0, 1)
        b.fcmp(5, 2, 0, 1)  # r5 = (R2 < R0)
        machine = machine_for(b.build())
        machine.fpu.regs.write(0, 5.0)
        machine.fpu.regs.write(1, -10.0)
        machine.run()
        assert machine.iregs[5] == 1  # -5.0 < 5.0, post-add value


class TestCacheTiming:
    def test_cold_load_pays_miss_penalty(self):
        memory = Memory()
        memory.write(256, 4.5)
        b = ProgramBuilder()
        b.fload(0, 1, 0)
        machine = machine_for(b.build(), memory)
        machine.iregs[1] = 256
        result = machine.run()
        assert machine.stats.stall_dcache_miss_cycles == 14
        assert machine.fpu.regs.read(0) == 4.5

    def test_warm_load_is_single_cycle(self):
        memory = Memory()
        memory.write(256, 4.5)
        b = ProgramBuilder()
        b.fload(0, 1, 0)
        machine = machine_for(b.build(), memory)
        machine.iregs[1] = 256
        machine.dcache.warm_range(256, 8)
        result = machine.run()
        assert machine.stats.stall_dcache_miss_cycles == 0
        assert result.halt_cycle == 1

    def test_line_neighbour_hits_after_miss(self):
        memory = Memory()
        memory.write(256, 1.0)
        memory.write(264, 2.0)  # same 16-byte line
        b = ProgramBuilder()
        b.fload(0, 1, 0)
        b.fload(1, 1, 8)
        machine = machine_for(b.build(), memory)
        machine.iregs[1] = 256
        machine.run()
        assert machine.dcache.misses == 1
        assert machine.dcache.hits == 1

    def test_instruction_buffer_misses_cost_cycles(self):
        b = ProgramBuilder()
        for _ in range(8):
            b.nop()
        cold = MultiTitan(b.build(), config=MachineConfig(model_ibuffer=True))
        result = cold.run()
        assert cold.stats.stall_ibuf_miss_cycles > 0

    def test_configurable_miss_penalty(self):
        memory = Memory()
        memory.write(256, 4.5)
        b = ProgramBuilder()
        b.fload(0, 1, 0)
        machine = machine_for(b.build(), memory, dcache_miss_penalty=30)
        machine.iregs[1] = 256
        machine.run()
        assert machine.stats.stall_dcache_miss_cycles == 30


class TestAluIrOccupancy:
    def test_transfer_stalls_while_vector_issues(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=8)
        b.fadd(32, 0, 8, vl=1)
        machine = machine_for(b.build())
        machine.run()
        assert machine.stats.stall_alu_ir_busy == 7

    def test_integer_work_proceeds_during_vector(self):
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=8)
        for i in range(6):
            b.addi(2, 2, 1)
        machine = machine_for(b.build())
        result = machine.run()
        assert machine.iregs[2] == 6
        # Integer instructions hide under the vector issue + latency:
        # elements issue in cycles 0..7, the last result lands at 10.
        assert result.completion_cycle == 10
