"""Tests for the typed event bus, the staged execution core's publishers,
and the event-driven analysis observers (timeline + utilization).
"""

import pytest

from repro.analysis.timeline import (
    TimelineObserver,
    element_issue_cycles,
    render_timeline,
)
from repro.analysis.utilization import UtilizationObserver, analyze
from repro.core.events import (
    AluTransferEvent,
    CommitEvent,
    ElementIssueEvent,
    EventBus,
    LoadIssueEvent,
    RetireEvent,
    StoreIssueEvent,
    TraceRecorder,
)
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder


def figure5_machine(trace=False):
    """The Figure-5 scalar-tree shape: three dependent scalar adds."""
    b = ProgramBuilder()
    b.fadd(8, 0, 1)
    b.fadd(9, 2, 3)
    b.fadd(12, 8, 9)
    return MultiTitan(b.build(), config=MachineConfig(model_ibuffer=False,
                                                      trace=trace))


class TestEventTypes:
    def test_events_are_legacy_tuples(self):
        event = AluTransferEvent(4, 0, (24, 0, 8, 0, 1, 1, 1, 1, False))
        assert event[0] == "alu"
        kind, cycle, seq, instruction = event
        assert (kind, cycle, seq) == ("alu", 4, 0)
        assert event.kind == "alu"
        assert event.cycle == 4
        assert event.seq == 0
        assert event.instruction == instruction

    def test_named_fields(self):
        assert ElementIssueEvent(3, 1, 16).register == 16
        assert LoadIssueEvent(2, 5).register == 5
        assert StoreIssueEvent(7, 9).register == 9
        assert CommitEvent(1, 4, (0,)).pc == 4
        assert RetireEvent(6, [(16, 1.0)]).writes == [(16, 1.0)]

    def test_repr_names_the_type(self):
        assert "ElementIssueEvent" in repr(ElementIssueEvent(3, 1, 16))


class TestEventBus:
    def test_publisher_is_none_when_idle(self):
        assert EventBus().publisher("element") is None

    def test_subscribe_publish_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe("element", seen.append)
        event = ElementIssueEvent(0, 0, 16)
        bus.publish(event)
        assert seen == [event]
        bus.unsubscribe("element", seen.append)
        bus.publish(ElementIssueEvent(1, 0, 17))
        assert seen == [event]
        assert not bus.has_subscribers("element")

    def test_publisher_fans_out(self):
        bus = EventBus()
        first, second = [], []
        bus.subscribe("commit", first.append)
        bus.subscribe("commit", second.append)
        publisher = bus.publisher("commit")
        event = CommitEvent(0, 0, (0,))
        publisher(event)
        assert first == [event] and second == [event]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventBus().subscribe("mystery", lambda event: None)


class TestCorePublishers:
    def test_trace_config_still_records_tuples(self):
        machine = figure5_machine(trace=True)
        machine.run()
        kinds = [event[0] for event in machine.trace]
        assert kinds.count("alu") == 3
        assert kinds.count("element") == 3

    def test_commit_and_retire_events(self):
        machine = figure5_machine()
        commits, retires = [], []
        machine.events.subscribe("commit", commits.append)
        machine.events.subscribe("retire", retires.append)
        machine.run()
        # 3 FALU transfers + HALT commit; 3 scalar results retire.
        assert len(commits) == 4
        assert all(isinstance(event, CommitEvent) for event in commits)
        assert sum(len(event.writes) for event in retires) == 3
        retired = [register for event in retires
                   for register, _value in event.writes]
        assert sorted(retired) == [8, 9, 12]

    def test_unobserved_run_allocates_no_trace(self):
        machine = figure5_machine()
        machine.run()
        assert machine.trace is None

    def test_reset_cpu_clears_trace_without_duplicating(self):
        machine = figure5_machine(trace=True)
        machine.run()
        first = list(machine.trace)
        machine.reset_cpu()
        assert machine.trace == []
        machine.run()
        assert [event[0] for event in machine.trace] \
            == [event[0] for event in first]


class TestTimelineObserver:
    def test_figure5_timeline_via_bus(self):
        """render_timeline over the event-bus path reproduces the
        Figure-5 chart: three transfers, the third add waiting on its
        operands' 3-cycle latency."""
        machine = figure5_machine()
        observer = TimelineObserver(machine)
        machine.run()
        observer.detach()
        assert element_issue_cycles(observer.trace, seq=0) == [0]
        assert element_issue_cycles(observer.trace, seq=1) == [1]
        # The dependent add issues once R8 and R9 have retired.
        assert element_issue_cycles(observer.trace, seq=2) == [4]
        art = observer.render()
        assert "R8 := R0 + R1" in art
        assert "R12 := R8 + R9" in art
        assert "cycle" in art and "E" in art and "T" in art

    def test_observer_matches_trace_config(self):
        machine = figure5_machine(trace=True)
        observer = TimelineObserver(machine)
        machine.run()
        observer.detach()
        assert list(observer.trace) == list(machine.trace)
        assert render_timeline(observer.trace) \
            == render_timeline(machine.trace)

    def test_detach_stops_recording(self):
        machine = figure5_machine()
        observer = TimelineObserver(machine)
        observer.detach()
        machine.run()
        assert observer.trace == []


class TestUtilizationObserver:
    def test_matches_offline_analyze(self):
        b = ProgramBuilder()
        b.li(1, 0)
        for lane in range(4):
            b.fload(lane, 1, lane * 8)
        b.fadd(16, 0, 8, vl=4)
        machine = MultiTitan(b.build(), config=MachineConfig(
            model_ibuffer=False, trace=True))
        machine.dcache.warm_range(0, 64)
        observer = UtilizationObserver(machine)
        result = machine.run()
        observer.detach()
        live = observer.result(result.completion_cycle)
        offline = analyze(machine.trace, result.completion_cycle)
        assert live == offline
        assert live.memory_ops == 4
        assert live.alu_elements > 0


class TestTraceRecorder:
    def test_attach_detach(self):
        bus = EventBus()
        recorder = TraceRecorder().attach(bus)
        bus.publish(ElementIssueEvent(0, 0, 16))
        recorder.detach(bus)
        bus.publish(ElementIssueEvent(1, 0, 17))
        assert len(recorder.events) == 1
