"""Property-based tests over randomly generated (valid) machine programs:
issue-rate invariants, determinism, and latency monotonicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES

DATA_WORDS = 64


def program_specs():
    """Random instruction descriptors; all reference valid registers and
    in-bounds memory so any generated program is legal."""
    falu = st.tuples(st.just("falu"),
                     st.integers(0, 2),     # dest bank (x16)
                     st.integers(0, 2),     # src a bank
                     st.integers(0, 2),     # src b bank
                     st.integers(1, 16),    # vl
                     st.booleans(), st.booleans())
    load = st.tuples(st.just("load"), st.integers(0, 47),
                     st.integers(0, DATA_WORDS - 1))
    store = st.tuples(st.just("store"), st.integers(0, 47),
                      st.integers(0, DATA_WORDS - 1))
    integer = st.tuples(st.just("int"), st.integers(1, 15),
                        st.integers(-100, 100))
    return st.lists(st.one_of(falu, load, store, integer),
                    min_size=1, max_size=25)


def build_program(specs):
    b = ProgramBuilder()
    for spec in specs:
        kind = spec[0]
        if kind == "falu":
            _, dest, src_a, src_b, vl, sra, srb = spec
            rr = dest * 16
            ra = src_a * 16
            rb = src_b * 16
            if rr + vl > 52:
                vl = 52 - rr
            if sra and ra + vl > 52:
                ra = 0
            if srb and rb + vl > 52:
                rb = 0
            b.fadd(rr, ra, rb, vl=max(1, vl), sra=sra, srb=srb)
        elif kind == "load":
            b.fload(spec[1], 1, spec[2] * WORD_BYTES)
        elif kind == "store":
            b.fstore(spec[1], 1, spec[2] * WORD_BYTES)
        else:
            b.addi(spec[1], spec[1], spec[2])
    return b.build()


def run_program(program, latency=3, warm=True):
    memory = Memory()
    arena = Arena(memory, base=256)
    data = arena.alloc_array([float(i % 7) / 8 + 0.25
                              for i in range(DATA_WORDS)])
    machine = MultiTitan(program, memory=memory,
                         config=MachineConfig(model_ibuffer=False,
                                              fpu_latency=latency))
    machine.iregs[1] = data
    for register in range(52):
        machine.fpu.regs.write(register, (register % 5) * 0.25 + 0.125)
    if warm:
        machine.dcache.warm_range(data, DATA_WORDS * WORD_BYTES)
    result = machine.run()
    return machine, result


class TestRandomProgramInvariants:
    @given(program_specs())
    @settings(max_examples=60, deadline=None)
    def test_issue_rate_caps(self, specs):
        """Never more than one ALU element, one memory operation per
        cycle; total at most two per cycle."""
        machine, result = run_program(build_program(specs))
        cycles = max(result.completion_cycle, 1)
        elements = machine.fpu.stats.elements_issued
        memory_ops = machine.fpu.stats.loads + machine.fpu.stats.stores
        assert elements <= cycles
        assert memory_ops <= cycles
        assert elements + memory_ops <= 2 * cycles

    @given(program_specs())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, specs):
        program = build_program(specs)
        machine_a, result_a = run_program(program)
        machine_b, result_b = run_program(program)
        assert result_a.completion_cycle == result_b.completion_cycle
        assert machine_a.fpu.regs.values == machine_b.fpu.regs.values
        assert machine_a.memory.words == machine_b.memory.words

    @given(program_specs())
    @settings(max_examples=30, deadline=None)
    def test_latency_monotonicity(self, specs):
        """Raising the FPU latency never speeds a program up."""
        program = build_program(specs)
        _, fast = run_program(program, latency=1)
        _, base = run_program(program, latency=3)
        _, slow = run_program(program, latency=6)
        assert fast.completion_cycle <= base.completion_cycle \
            <= slow.completion_cycle

    @given(program_specs())
    @settings(max_examples=30, deadline=None)
    def test_cold_never_faster_than_warm(self, specs):
        program = build_program(specs)
        _, warm = run_program(program, warm=True)
        _, cold = run_program(program, warm=False)
        assert cold.completion_cycle >= warm.completion_cycle

    @given(program_specs())
    @settings(max_examples=30, deadline=None)
    def test_scoreboard_clean_after_drain(self, specs):
        machine, _ = run_program(build_program(specs))
        assert machine.fpu.scoreboard.reserved_registers() == []
        assert not machine.fpu.busy
