"""Tests for the register file, PSW, scoreboard, and functional units."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import NUM_REGISTERS
from repro.core.exceptions import (
    RegisterIndexError,
    ReservedOperationError,
    SimulationError,
)
from repro.core.functional_units import (
    CYCLE_TIME_NS,
    FUNCTIONAL_UNIT_LATENCY,
    FunctionalUnit,
    latency_ns,
    make_units,
)
from repro.core.registers import ProgramStatusWord, RegisterFile, STORAGE_BITS
from repro.core.scoreboard import PORT_BUDGET, Scoreboard
from repro.core.types import (
    FLOP_OPS,
    Op,
    UNARY_OPS,
    execute_op,
    result_overflowed,
)


class TestRegisterFile:
    def test_fifty_two_registers(self):
        assert NUM_REGISTERS == 52

    def test_storage_is_3_3_kbits(self):
        assert STORAGE_BITS == 52 * 64 == 3328

    def test_read_write(self):
        regs = RegisterFile()
        regs.write(10, 2.5)
        assert regs.read(10) == 2.5

    def test_initial_zero(self):
        assert RegisterFile().read(51) == 0.0

    def test_out_of_range(self):
        regs = RegisterFile()
        with pytest.raises(RegisterIndexError):
            regs.read(52)
        with pytest.raises(RegisterIndexError):
            regs.write(-1, 0.0)

    def test_group_round_trip(self):
        regs = RegisterFile()
        regs.write_group(4, [1.0, 2.0, 3.0])
        assert regs.read_group(4, 3) == [1.0, 2.0, 3.0]

    def test_group_bounds(self):
        regs = RegisterFile()
        with pytest.raises(RegisterIndexError):
            regs.write_group(50, [0.0, 0.0, 0.0])
        with pytest.raises(RegisterIndexError):
            regs.read_group(50, 3)

    def test_integers_allowed(self):
        regs = RegisterFile()
        regs.write(0, 42)
        assert regs.read(0) == 42
        assert type(regs.read(0)) is int

    def test_snapshot_is_copy(self):
        regs = RegisterFile()
        snapshot = regs.snapshot()
        regs.write(0, 9.0)
        assert snapshot[0] == 0.0


class TestPsw:
    def test_records_first_overflow_only(self):
        psw = ProgramStatusWord()
        psw.record_overflow(7)
        psw.record_overflow(9)
        assert psw.overflow
        assert psw.overflow_dest == 7

    def test_clear(self):
        psw = ProgramStatusWord()
        psw.record_overflow(7)
        psw.clear()
        assert not psw.overflow
        assert psw.overflow_dest is None


class TestScoreboard:
    def test_reserve_and_clear(self):
        sb = Scoreboard()
        sb.reserve(3)
        assert sb.is_reserved(3)
        sb.clear(3)
        assert not sb.is_reserved(3)

    def test_double_reservation_is_an_error(self):
        sb = Scoreboard()
        sb.reserve(3)
        with pytest.raises(SimulationError):
            sb.reserve(3)

    def test_any_reserved(self):
        sb = Scoreboard()
        sb.reserve(10)
        assert sb.any_reserved([9, 10, 11])
        assert not sb.any_reserved([0, 1])

    def test_out_of_range(self):
        with pytest.raises(RegisterIndexError):
            Scoreboard().reserve(52)

    def test_port_budget_definition(self):
        # 2 + 1 + 1 + 1 = the five ports of section 2.3.1
        assert sum(PORT_BUDGET.values()) == 5

    def test_port_audit_catches_overuse(self):
        sb = Scoreboard(audit_ports=True)
        sb.is_reserved(0, cycle=1)
        sb.is_reserved(1, cycle=1)
        with pytest.raises(SimulationError):
            sb.is_reserved(2, cycle=1)

    def test_port_audit_resets_each_cycle(self):
        sb = Scoreboard(audit_ports=True)
        sb.is_reserved(0, cycle=1)
        sb.is_reserved(1, cycle=1)
        sb.is_reserved(0, cycle=2)
        sb.is_reserved(1, cycle=2)

    @given(st.lists(st.integers(0, NUM_REGISTERS - 1), unique=True))
    def test_reserved_registers_reflect_state(self, registers):
        sb = Scoreboard()
        for register in registers:
            sb.reserve(register)
        assert sorted(sb.reserved_registers()) == sorted(registers)


class TestFunctionalUnits:
    def test_three_units(self):
        assert set(make_units()) == {"add", "multiply", "reciprocal"}

    def test_latency_is_three_cycles_120ns(self):
        assert FUNCTIONAL_UNIT_LATENCY == 3
        assert latency_ns() == 120.0
        assert CYCLE_TIME_NS == 40.0

    def test_result_after_latency(self):
        unit = FunctionalUnit("add")
        unit.issue(0, Op.ADD, 1.0, 2.0, destination=5)
        assert unit.retire(2) == []
        assert unit.retire(3) == [(3, 5, 3.0)]

    def test_fully_pipelined(self):
        unit = FunctionalUnit("multiply")
        for cycle in range(4):
            unit.issue(cycle, Op.MUL, float(cycle), 2.0, destination=cycle)
        results = [unit.retire(cycle) for cycle in range(3, 7)]
        assert [r[0][2] for r in results] == [0.0, 2.0, 4.0, 6.0]

    def test_double_issue_same_cycle_rejected(self):
        unit = FunctionalUnit("add")
        unit.issue(0, Op.ADD, 1.0, 2.0, 0)
        with pytest.raises(SimulationError):
            unit.issue(0, Op.ADD, 1.0, 2.0, 1)

    def test_wrong_unit_routing_rejected(self):
        unit = FunctionalUnit("add")
        with pytest.raises(SimulationError):
            unit.issue(0, Op.MUL, 1.0, 2.0, 0)

    def test_division_ops_route_to_multiply_unit(self):
        unit = FunctionalUnit("multiply")
        unit.issue(0, Op.ITER, 2.0, 0.25, 0)
        assert unit.retire(3)[0][2] == 1.5


class TestOpSemantics:
    def test_add_sub_mul(self):
        assert execute_op(Op.ADD, 1.5, 2.5) == 4.0
        assert execute_op(Op.SUB, 1.5, 2.5) == -1.0
        assert execute_op(Op.MUL, 1.5, 2.0) == 3.0

    def test_iteration_step(self):
        assert execute_op(Op.ITER, 4.0, 0.25) == 1.0

    def test_reciprocal_is_approximate(self):
        result = execute_op(Op.RECIP, 3.0, None)
        assert abs(result * 3.0 - 1.0) < 2 ** -16

    def test_float_requires_integer(self):
        assert execute_op(Op.FLOAT, 7, None) == 7.0
        with pytest.raises(SimulationError):
            execute_op(Op.FLOAT, 7.0, None)

    def test_truncate_requires_float(self):
        assert execute_op(Op.TRUNC, 7.9, None) == 7
        with pytest.raises(SimulationError):
            execute_op(Op.TRUNC, 7, None)

    def test_integer_multiply(self):
        assert execute_op(Op.IMUL, 6, 7) == 42

    def test_unary_set(self):
        assert UNARY_OPS == {Op.FLOAT, Op.TRUNC, Op.RECIP}

    def test_flop_accounting_set(self):
        assert Op.ADD in FLOP_OPS
        assert Op.TRUNC not in FLOP_OPS

    def test_overflow_detection(self):
        big = 1e308
        result = execute_op(Op.MUL, big, big)
        assert result_overflowed(Op.MUL, big, big, result)

    def test_infinite_operand_is_not_overflow(self):
        inf = float("inf")
        assert not result_overflowed(Op.ADD, inf, 1.0, inf)

    def test_finite_result_is_not_overflow(self):
        assert not result_overflowed(Op.ADD, 1.0, 2.0, 3.0)
