"""Fast-path execution core: bit-exactness of superblock dispatch,
vector element bursts, quiescent-cycle skipping and steady-state loop
memoization against the reference per-cycle loop.

Every behavioural test here runs the same program through both paths
(``MachineConfig(fast_path=...)``) and compares final snapshots with the
same bit-exact recursion the differential fuzzer uses, so a regression
in either path shows up as a concrete field path, not a flaky number.
"""

import operator
import struct

import pytest

from repro.core.exceptions import SimulationError
from repro.core.functional_units import CYCLE_TIME_NS
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.pipeline import _taken_run
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory, WORD_BYTES
from repro.robustness.fuzz.driver import _state_difference


def machine_for(program, words=None, fast_path=True, **config_kwargs):
    memory = Memory()
    if words:
        memory.words[: len(words)] = list(words)
    config = MachineConfig(fast_path=fast_path, **config_kwargs)
    return MultiTitan(program, memory=memory, config=config)


def run_both(program, words=None, **config_kwargs):
    """Run on both paths; assert bit-identical state and results."""
    fast = machine_for(program, words, fast_path=True, **config_kwargs)
    slow = machine_for(program, words, fast_path=False, **config_kwargs)
    fast_result = fast.run()
    slow_result = slow.run()
    difference = _state_difference(fast.snapshot(), slow.snapshot())
    assert difference is None, "fast/slow state diverged at %s" % difference
    assert fast_result.halt_cycle == slow_result.halt_cycle
    assert fast_result.completion_cycle == slow_result.completion_cycle
    return fast, fast_result


def bits_of(value):
    return struct.pack("<d", value)


NAN_A = struct.unpack("<d", struct.pack("<Q", 0x7FF8000000000001))[0]
NAN_B = struct.unpack("<d", struct.pack("<Q", 0xFFF8000000000002))[0]


# ---------------------------------------------------------------------------
# Satellite: completion_cycle vs halt_cycle in RunResult
# ---------------------------------------------------------------------------

class TestCompletionAfterHalt:
    """A vector retiring after HALT must drive elapsed time and MFLOPS
    through ``completion_cycle``, not ``halt_cycle``."""

    def _result(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.fload(0, 1, 0)
        # Long scalar-source vector issued right before HALT: the CPU
        # halts while the FPU is still retiring elements.
        b.fmul(16, 0, 0, vl=8)
        b.halt()
        words = [1.5] + [0.0] * 31
        return run_both(b.build(), words)

    def test_final_vector_retires_after_halt(self):
        _, result = self._result()
        assert result.completion_cycle > result.halt_cycle

    def test_elapsed_seconds_uses_completion_cycle(self):
        _, result = self._result()
        expected = result.completion_cycle * CYCLE_TIME_NS * 1e-9
        assert result.elapsed_seconds() == expected
        assert result.elapsed_seconds() > \
            result.halt_cycle * CYCLE_TIME_NS * 1e-9

    def test_mflops_uses_completion_cycle(self):
        _, result = self._result()
        nominal = 8
        expected = nominal / result.elapsed_seconds() / 1e6
        assert result.mflops(nominal) == pytest.approx(expected)

    def test_stats_cycles_match_completion(self):
        machine, result = self._result()
        assert machine.stats.cycles == result.completion_cycle


# ---------------------------------------------------------------------------
# Satellite: errors mid-vector leave consistent state on both paths
# ---------------------------------------------------------------------------

class TestErrorMidVector:
    def _program(self):
        b = ProgramBuilder()
        b.li(1, 0)
        for reg in range(8):
            b.fload(reg, 1, reg * WORD_BYTES)
        # Vector source sweeps F0..F7; element 3 hits the integer word
        # and raises inside execute_op, mid-vector.
        b.fadd(16, 0, 0, vl=8, sra=False, srb=True)
        b.halt()
        words = [float(i) for i in range(8)]
        words[3] = 3  # non-architectural int slips past the loader
        return b.build(), words + [0.0] * 8

    def test_simulation_error_leaves_cycle_and_pc_consistent(self):
        program, words = self._program()
        outcomes = []
        for fast_path in (True, False):
            machine = machine_for(program, words, fast_path=fast_path)
            with pytest.raises(SimulationError):
                machine.run()
            outcomes.append(machine)
        fast, slow = outcomes
        # The finally-clause writeback must leave the hoisted locals in
        # the machine even when the error propagates mid-burst.
        assert fast.cycle == slow.cycle
        assert fast.pc == slow.pc
        assert fast.halted == slow.halted
        difference = _state_difference(fast.snapshot(), slow.snapshot())
        assert difference is None, difference

    def test_faulting_machine_can_be_snapshot(self):
        program, words = self._program()
        machine = machine_for(program, words, fast_path=True)
        with pytest.raises(SimulationError):
            machine.run()
        snap = machine.snapshot()
        assert snap["cycle"] == machine.cycle
        assert snap["pc"] == machine.pc


# ---------------------------------------------------------------------------
# Satellite: snapshot at arbitrary stop_cycle inside a fast-path burst
# ---------------------------------------------------------------------------

def _vector_store_kernel():
    """A kernel with a vector burst immediately followed by a store run,
    so a stop-cycle sweep crosses both an element burst and a cycle
    where the store port holds the CPU."""
    b = ProgramBuilder()
    b.li(1, 0)
    b.li(2, 16 * WORD_BYTES)
    for reg in range(8):
        b.fload(reg, 1, reg * WORD_BYTES)
    b.fadd(16, 0, 0, vl=8, sra=False, srb=True)
    b.fmul(24, 16, 16, vl=8, sra=False, srb=True)
    for reg in range(8):
        b.fstore(24 + reg, 2, reg * WORD_BYTES)
    b.halt()
    words = [float(i + 1) * 0.5 for i in range(8)] + [0.0] * 24
    return b.build(), words


class TestStopCycleInsideBurst:
    def test_stop_restore_resume_is_byte_identical(self):
        program, words = _vector_store_kernel()
        golden = machine_for(program, words, fast_path=True)
        golden_result = golden.run()
        golden_snap = golden.snapshot()
        final = golden_result.completion_cycle
        assert final > 8  # the sweep actually crosses in-flight work

        for stop in range(1, final + 1):
            paused = machine_for(program, words, fast_path=True)
            paused.run(stop_cycle=stop)  # stop_cycle forces the
            # per-cycle loop; the snapshot lands mid-burst/mid-store
            resumed = machine_for(program, words, fast_path=True)
            resumed.restore(paused.snapshot())
            result = resumed.run()
            assert result.completion_cycle == final, "stop=%d" % stop
            difference = _state_difference(resumed.snapshot(), golden_snap)
            assert difference is None, \
                "stop=%d diverged at %s" % (stop, difference)


# ---------------------------------------------------------------------------
# Steady-state loop memoization
# ---------------------------------------------------------------------------

def _loop_program(body, count, init=()):
    """A counted loop (r4 = 0 .. r5 = count) around ``body(builder)``."""
    b = ProgramBuilder()
    for rd, imm in init:
        b.li(rd, imm)
    b.li(4, 0)
    b.li(5, count)
    top, close = b.counted_loop(4, 5)
    body(b)
    b.addi(4, 4, 1)
    close()
    b.halt()
    return b.build()


class TestLoopMemoization:
    """The memoizer must engage only when every per-iteration delta is
    provably constant; these kernels pin both the engage and refuse
    sides to bit-exact agreement with the per-cycle loop."""

    def test_linear_loop_matches_slow_path(self):
        # Constant ireg deltas: the memoizable steady state.
        program = _loop_program(
            lambda b: (b.add(6, 6, 7), b.addi(8, 8, 3)),
            count=500, init=[(6, 0), (7, 2), (8, 1)])
        machine, result = run_both(program)
        assert machine.iregs[6] == 1000
        assert machine.iregs[8] == 1 + 3 * 500

    def test_nonlinear_loop_matches_slow_path(self):
        # xor of the counter gives a non-constant delta; the memoizer
        # must refuse, and both paths still agree bit-exactly.
        program = _loop_program(
            lambda b: b.xor(6, 4, 7), count=300, init=[(6, 0), (7, 5)])
        run_both(program)

    def test_fixed_base_vector_loop_matches_slow_path(self):
        def body(b):
            for reg in range(4):
                b.fload(reg, 1, reg * WORD_BYTES)
            b.fadd(8, 0, 0, vl=4, sra=False, srb=True)
            for reg in range(4):
                b.fstore(8 + reg, 2, reg * WORD_BYTES)
        program = _loop_program(body, count=400,
                                init=[(1, 0), (2, 8 * WORD_BYTES)])
        words = [1.0, 2.0, 3.0, 4.0] + [0.0] * 12
        machine, _ = run_both(program, words)
        assert machine.memory.read(8 * WORD_BYTES) == 2.0

    def test_moving_base_loop_matches_slow_path(self):
        # The store base advances every iteration: addresses are not
        # iteration-invariant, so the memoizer must refuse.
        def body(b):
            b.fload(0, 1, 0)
            b.fstore(0, 2, 0)
            b.addi(2, 2, WORD_BYTES)
        program = _loop_program(body, count=64,
                                init=[(1, 0), (2, WORD_BYTES)])
        words = [7.25] + [0.0] * 127
        machine, _ = run_both(program, words)
        assert machine.memory.read(64 * WORD_BYTES) == 7.25

    def test_memoized_loop_resumes_after_snapshot(self):
        # Pause the slow path mid-loop, restore into a fast machine:
        # the memoizer picks up from arbitrary interior state.
        program = _loop_program(
            lambda b: b.add(6, 6, 7), count=1000, init=[(6, 0), (7, 1)])
        golden = machine_for(program, fast_path=True)
        final = golden.run().completion_cycle
        paused = machine_for(program, fast_path=True)
        paused.run(stop_cycle=final // 2)
        resumed = machine_for(program, fast_path=True)
        resumed.restore(paused.snapshot())
        assert resumed.run().completion_cycle == final
        difference = _state_difference(resumed.snapshot(), golden.snapshot())
        assert difference is None, difference


BRUTE_TESTS = (operator.lt, operator.le, operator.gt,
               operator.ge, operator.eq, operator.ne)


class TestTakenRunSolver:
    @pytest.mark.parametrize("test", BRUTE_TESTS,
                             ids=[t.__name__ for t in BRUTE_TESTS])
    def test_matches_brute_force(self, test):
        cap = 25
        for c in range(-9, 10):
            for e in range(-4, 5):
                expected = 0
                for j in range(1, cap + 1):
                    if not test(c + j * e, 0):
                        break
                    expected += 1
                got = _taken_run(test, c, e, cap)
                assert got == expected, \
                    "test=%s c=%d e=%d: %d != %d" % (
                        test.__name__, c, e, got, expected)

    def test_cap_bounds_infinite_runs(self):
        assert _taken_run(operator.ne, 5, 0, 10 ** 9) == 10 ** 9
        assert _taken_run(operator.lt, -1, 0, 7) == 7


# ---------------------------------------------------------------------------
# NaN payload propagation (regression: burst arithmetic call sites)
# ---------------------------------------------------------------------------

class TestNaNPayloads:
    """Inline burst arithmetic must retire the same NaN bit pattern as
    ``execute_op`` (the reference executor's call site): CPython's
    per-site specialization of commutative float ``+`` can otherwise
    propagate the *other* operand's payload."""

    def test_nan_plus_nan_bit_pattern_matches_slow_path(self):
        b = ProgramBuilder()
        b.li(1, 0)
        b.fload(0, 1, 0)
        b.fload(1, 1, WORD_BYTES)
        b.fadd(16, 0, 1, vl=4)
        b.fmul(24, 0, 1, vl=4)
        b.halt()
        words = [NAN_A, NAN_B] + [0.0] * 14
        machine, _ = run_both(b.build(), words)
        for reg in (16, 24):
            assert machine.fpu.regs.values[reg] != \
                machine.fpu.regs.values[reg]  # NaN retired

    def test_nan_store_run_matches_slow_path(self):
        # NaN flowing through a load/compute/store run: the store-run
        # planner must bail to the per-element path rather than commit
        # a payload computed at a different call site.
        def body(b):
            b.fload(0, 1, 0)
            b.fload(1, 1, WORD_BYTES)
            b.fadd(8, 0, 1)
            b.fstore(8, 2, 0)
        program = _loop_program(body, count=20,
                                init=[(1, 0), (2, 4 * WORD_BYTES)])
        words = [NAN_A, NAN_B] + [0.0] * 14
        machine, _ = run_both(program, words)
        stored = machine.memory.read(4 * WORD_BYTES)
        assert stored != stored


# ---------------------------------------------------------------------------
# Dispatcher eligibility: anything needing per-cycle visibility must
# force the reference loop
# ---------------------------------------------------------------------------

class TestFastPathEligibility:
    def test_event_subscriber_forces_slow_path(self):
        b = ProgramBuilder()
        b.li(1, 7)
        b.halt()
        machine = machine_for(b.build(), fast_path=True)
        seen = []
        machine.events.subscribe("commit", seen.append)
        machine.run()
        assert seen  # per-cycle events were published

    def test_stop_cycle_forces_slow_path_then_fast_resume(self):
        program = _loop_program(
            lambda b: b.add(6, 6, 7), count=50, init=[(6, 0), (7, 1)])
        machine = machine_for(program, fast_path=True)
        machine.run(stop_cycle=10)
        assert machine.cycle == 10 and not machine.halted
        result = machine.run()
        reference = machine_for(program, fast_path=False)
        assert result.completion_cycle == \
            reference.run().completion_cycle
