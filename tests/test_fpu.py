"""Tests for the FPU chip model: vector element sequencing, scoreboard
interlocks, overflow aborts, and the load/store hazard checker."""

import pytest

from repro.core.encoding import AluInstruction
from repro.core.exceptions import SimulationError, VectorHazardError
from repro.core.fpu import Fpu


def alu(rr, ra, rb, unit=1, func=0, vl=1, sra=True, srb=True):
    return AluInstruction(rr=rr, ra=ra, rb=rb, unit=unit, func=func,
                          vector_length=vl, stride_ra=sra, stride_rb=srb)


def run_until_drained(fpu, start=0, limit=200):
    cycle = start
    while fpu.busy and cycle < limit:
        cycle += 1
        fpu.retire(cycle)
        fpu.try_issue_element(cycle)
    return cycle


class TestScalarIssue:
    def test_scalar_add(self):
        fpu = Fpu()
        fpu.regs.write(0, 1.0)
        fpu.regs.write(1, 2.0)
        fpu.retire(0)
        fpu.accept_alu(alu(2, 0, 1), 0)
        run_until_drained(fpu)
        assert fpu.regs.read(2) == 3.0

    def test_result_not_visible_before_latency(self):
        fpu = Fpu()
        fpu.regs.write(0, 1.0)
        fpu.regs.write(1, 2.0)
        fpu.accept_alu(alu(2, 0, 1), 0)
        fpu.retire(2)
        assert fpu.regs.read(2) == 0.0
        assert fpu.scoreboard.is_reserved(2)
        fpu.retire(3)
        assert fpu.regs.read(2) == 3.0
        assert not fpu.scoreboard.is_reserved(2)

    def test_ir_frees_cycle_after_last_element(self):
        fpu = Fpu()
        fpu.accept_alu(alu(2, 0, 1), 0)
        assert not fpu.ir_free(0)
        assert fpu.ir_free(1)


class TestVectorSequencing:
    def test_all_specifiers_increment(self):
        """Rr always increments; Ra/Rb follow their stride bits."""
        fpu = Fpu()
        fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0])
        fpu.regs.write_group(8, [10.0, 20.0, 30.0, 40.0])
        fpu.accept_alu(alu(16, 0, 8, vl=4), 0)
        run_until_drained(fpu)
        assert fpu.regs.read_group(16, 4) == [11.0, 22.0, 33.0, 44.0]

    def test_scalar_source_with_clear_stride_bit(self):
        fpu = Fpu()
        fpu.regs.write(32, 10.0)
        fpu.regs.write_group(0, [1.0, 2.0, 3.0])
        fpu.accept_alu(alu(16, 32, 0, unit=2, vl=3, sra=False), 0)
        run_until_drained(fpu)
        assert fpu.regs.read_group(16, 3) == [10.0, 20.0, 30.0]

    def test_vector_from_scalar_op_scalar(self):
        """Both stride bits clear: vector := scalar op scalar."""
        fpu = Fpu()
        fpu.regs.write(0, 3.0)
        fpu.regs.write(1, 4.0)
        fpu.accept_alu(alu(16, 0, 1, vl=4, sra=False, srb=False), 0)
        run_until_drained(fpu)
        assert fpu.regs.read_group(16, 4) == [7.0] * 4

    def test_one_element_per_cycle(self):
        fpu = Fpu()
        fpu.regs.write_group(0, [1.0] * 16)
        fpu.regs.write_group(16, [1.0] * 16)
        fpu.accept_alu(alu(32, 0, 16, vl=16), 0)
        for cycle in range(1, 16):
            fpu.retire(cycle)
            assert fpu.try_issue_element(cycle)
        assert fpu.alu_ir is None

    def test_recurrence_chains_through_scoreboard(self):
        """Element k may depend on element k-1 (Figure 8)."""
        fpu = Fpu()
        fpu.regs.write(0, 1.0)
        fpu.regs.write(1, 1.0)
        fpu.accept_alu(alu(2, 1, 0, vl=8), 0)
        final = run_until_drained(fpu)
        assert fpu.regs.read_group(0, 10) == [1.0, 1.0, 2.0, 3.0, 5.0,
                                              8.0, 13.0, 21.0, 34.0, 55.0]
        assert final == 24  # 8 chained elements x 3-cycle latency

    def test_unified_file_allows_element_access(self):
        """Vector results are ordinary scalar registers afterwards."""
        fpu = Fpu()
        fpu.regs.write_group(0, [1.0, 2.0])
        fpu.regs.write_group(8, [5.0, 6.0])
        fpu.accept_alu(alu(16, 0, 8, vl=2), 0)
        run_until_drained(fpu)
        # Scalar op on the second element of the vector result.
        fpu.accept_alu(alu(20, 17, 17), 30)
        cycle = 30
        while fpu.busy:
            cycle += 1
            fpu.retire(cycle)
            fpu.try_issue_element(cycle)
        assert fpu.regs.read(20) == 16.0

    def test_stats_track_vector_instructions(self):
        fpu = Fpu()
        fpu.accept_alu(alu(16, 0, 8, vl=4), 0)
        run_until_drained(fpu)
        assert fpu.stats.alu_instructions == 1
        assert fpu.stats.vector_instructions == 1
        assert fpu.stats.elements_issued == 4
        assert fpu.stats.flops == 4


class TestOverflowAbort:
    def test_overflow_discards_remaining_elements(self):
        fpu = Fpu()
        fpu.regs.write_group(0, [1.0, 1e308, 1.0, 1.0])
        fpu.regs.write_group(8, [1.0, 1e308, 1.0, 1.0])
        fpu.accept_alu(alu(16, 0, 8, vl=4), 0)
        run_until_drained(fpu)
        assert fpu.regs.psw.overflow
        assert fpu.regs.psw.overflow_dest == 17
        assert fpu.regs.read(17) == float("inf")
        # Elements after the overflow never executed.
        assert fpu.regs.read(18) == 0.0
        assert fpu.regs.read(19) == 0.0
        assert fpu.stats.overflow_aborts == 1

    def test_ir_freed_after_abort(self):
        fpu = Fpu()
        fpu.regs.write(0, 1e308)
        fpu.regs.write(8, 1e308)
        fpu.accept_alu(alu(16, 0, 8, unit=2, vl=4), 0)
        fpu.retire(1)
        assert fpu.ir_free(1)


class TestLoadsStores:
    def test_load_data_usable_next_cycle(self):
        fpu = Fpu()
        fpu.load_write(5, 9.0, 0)
        assert fpu.scoreboard.is_reserved(5)
        fpu.retire(1)
        assert fpu.regs.read(5) == 9.0
        assert not fpu.scoreboard.is_reserved(5)

    def test_store_waits_for_reservation(self):
        fpu = Fpu()
        fpu.regs.write(0, 1.0)
        fpu.regs.write(1, 2.0)
        fpu.accept_alu(alu(2, 0, 1), 0)
        assert not fpu.store_ready(2)
        fpu.retire(3)
        assert fpu.store_ready(2)
        assert fpu.store_read(2, 3) == 3.0


class TestHazardChecker:
    def _vector_in_flight(self, strict):
        fpu = Fpu(strict_hazards=strict)
        fpu.accept_alu(alu(16, 0, 8, vl=8), 0)  # element 0 issues now
        return fpu

    def test_current_element_excluded_from_footprint(self):
        fpu = self._vector_in_flight(strict=False)
        footprint = fpu.unissued_footprint()
        # Element 0 issued; element 1 (rr=17, ra=1, rb=9) is now current
        # and interlocked by hardware, so the footprint starts at element 2.
        assert 17 not in footprint
        assert 18 in footprint
        assert 2 in footprint
        assert 10 in footprint

    def test_deep_store_overlap_raises_in_strict_mode(self):
        fpu = self._vector_in_flight(strict=True)
        with pytest.raises(VectorHazardError):
            fpu.store_read(20, 1)  # element 4's destination, not yet issued

    def test_deep_load_overlap_raises_in_strict_mode(self):
        fpu = self._vector_in_flight(strict=True)
        with pytest.raises(VectorHazardError):
            fpu.load_write(3, 1.0, 1)  # element 3's source, not yet read

    def test_store_of_issued_element_is_fine(self):
        fpu = self._vector_in_flight(strict=True)
        fpu.store_read(16, 1)  # element 0 already issued

    def test_store_of_vector_source_is_fine(self):
        """A store only reads -- no conflict with element sources."""
        fpu = self._vector_in_flight(strict=True)
        fpu.store_read(4, 1)

    def test_non_strict_mode_records_warnings(self):
        fpu = self._vector_in_flight(strict=False)
        fpu.store_read(20, 1)
        assert len(fpu.hazard_warnings) == 1

    def test_no_hazard_when_idle(self):
        fpu = Fpu(strict_hazards=True)
        fpu.load_write(3, 1.0, 0)  # no vector in flight


class TestAcceptErrors:
    def test_accept_when_busy_is_an_error(self):
        fpu = Fpu()
        fpu.accept_alu(alu(16, 0, 8, vl=4), 0)
        with pytest.raises(SimulationError):
            fpu.accept_alu(alu(20, 0, 8), 0)

    def test_reset_clears_everything(self):
        fpu = Fpu()
        fpu.regs.write(0, 5.0)
        fpu.accept_alu(alu(16, 0, 8, vl=4), 0)
        fpu.reset()
        assert not fpu.busy
        assert fpu.regs.read(0) == 0.0
        assert fpu.stats.elements_issued == 0
