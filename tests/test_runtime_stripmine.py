"""Tests for runtime-length strip-mining (indeterminate vector lengths)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory
from repro.vectorize.builder import VectorKernelBuilder

MAX_N = 64


def build_runtime_saxpy(vl):
    """out[i] = 2*x[i] + y[i] over a count passed in a register at run
    time; one program serves every length."""
    memory = Memory()
    arena = Arena(memory, base=256)
    x_addr = arena.alloc(MAX_N)
    y_addr = arena.alloc(MAX_N)
    out_addr = arena.alloc(MAX_N)

    pb = ProgramBuilder()
    count_reg = 25  # caller-provided
    vb = VectorKernelBuilder(pb, vl=vl)
    x = vb.array(x_addr)
    y = vb.array(y_addr)
    out = vb.array(out_addr)

    def body(effective_vl):
        xv = vb.vload(x, 0, vl=effective_vl)
        yv = vb.vload(y, 0, vl=effective_vl)
        t = vb.add(xv, xv, into=xv)
        t = vb.add(t, yv, into=t)
        vb.vstore(out, t)

    vb.strip_loop_runtime(count_reg, body)
    return pb.build(), memory, (x_addr, y_addr, out_addr), count_reg


class TestRuntimeStripMining:
    @pytest.mark.parametrize("n", [0, 1, 3, 7, 8, 9, 16, 23, 64])
    def test_every_length_with_one_program(self, n):
        program, memory, (x_addr, y_addr, out_addr), count_reg = \
            build_runtime_saxpy(vl=8)
        xs = [float(i + 1) for i in range(MAX_N)]
        ys = [float(10 * (i + 1)) for i in range(MAX_N)]
        memory.write_block(x_addr, xs)
        memory.write_block(y_addr, ys)
        machine = MultiTitan(program, memory=memory,
                             config=MachineConfig(model_ibuffer=False,
                                                  strict_hazards=True))
        machine.iregs[count_reg] = n
        machine.run()
        got = memory.read_block(out_addr, MAX_N)
        for i in range(n):
            assert got[i] == 2 * xs[i] + ys[i]
        for i in range(n, MAX_N):
            assert got[i] == 0.0  # untouched beyond the runtime count

    @given(st.integers(0, MAX_N), st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_count_and_strip_size(self, n, vl):
        program, memory, (x_addr, y_addr, out_addr), count_reg = \
            build_runtime_saxpy(vl=vl)
        xs = [float(i) for i in range(MAX_N)]
        memory.write_block(x_addr, xs)
        machine = MultiTitan(program, memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.iregs[count_reg] = n
        machine.run()
        got = memory.read_block(out_addr, max(n, 1))
        for i in range(n):
            assert got[i] == 2 * xs[i]

    def test_count_register_preserved(self):
        program, memory, _, count_reg = build_runtime_saxpy(vl=8)
        machine = MultiTitan(program, memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.iregs[count_reg] = 21
        machine.run()
        assert machine.iregs[count_reg] == 21

    def test_vector_path_amortizes(self):
        """The same program runs faster per element at large counts."""
        def cycles_for(n):
            program, memory, _, count_reg = build_runtime_saxpy(vl=8)
            machine = MultiTitan(program, memory=memory,
                                 config=MachineConfig(model_ibuffer=False))
            machine.dcache.warm_range(0, 4096)
            machine.iregs[count_reg] = n
            return machine.run().completion_cycle

        small = cycles_for(4)      # pure scalar cleanup
        large = cycles_for(64)     # eight full strips
        assert large / 64 < small / 4
