"""Tests for the BLAS routines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.machine import MachineConfig
from repro.workloads.blas import (
    daxpy_kernel,
    dcopy_kernel,
    ddot_kernel,
    dgemv_kernel,
    dger_kernel,
    dscal_kernel,
    measure_routine,
)
from repro.workloads.common import run_kernel

STRICT = MachineConfig(model_ibuffer=False, strict_hazards=True)


class TestLevel1:
    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    @pytest.mark.parametrize("n", [1, 7, 8, 33, 100])
    def test_dcopy(self, n, coding):
        result = run_kernel(dcopy_kernel(n, coding=coding), config=STRICT)
        assert result.passed, result.check_error

    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_dscal(self, coding):
        result = run_kernel(dscal_kernel(50, alpha=-2.5, coding=coding),
                            config=STRICT)
        assert result.passed, result.check_error

    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_daxpy(self, coding):
        result = run_kernel(daxpy_kernel(64, coding=coding), config=STRICT)
        assert result.passed, result.check_error

    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_ddot(self, coding):
        result = run_kernel(ddot_kernel(100, coding=coding), config=STRICT)
        assert result.passed, result.check_error

    @given(st.integers(1, 70), st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_daxpy_any_length(self, n, seed):
        result = run_kernel(daxpy_kernel(n, seed=seed or 1), config=STRICT)
        assert result.passed, result.check_error


class TestLevel2:
    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_dgemv(self, coding):
        result = run_kernel(dgemv_kernel(24, 6, coding=coding), config=STRICT)
        assert result.passed, result.check_error

    @pytest.mark.parametrize("coding", ["scalar", "vector"])
    def test_dger(self, coding):
        result = run_kernel(dger_kernel(24, 6, coding=coding), config=STRICT)
        assert result.passed, result.check_error

    def test_dgemv_odd_shapes(self):
        for m, n in ((1, 1), (7, 3), (17, 5)):
            result = run_kernel(dgemv_kernel(m, n), config=STRICT)
            assert result.passed, "%dx%d: %s" % (m, n, result.check_error)


class TestPerformanceShape:
    def test_daxpy_vector_beats_scalar(self):
        measurement = measure_routine("daxpy", n=128)
        assert measurement.check_error is None
        assert measurement.vector_mflops > measurement.scalar_mflops
        assert 1.2 < measurement.speedup < 4.0

    def test_ddot_reduction_still_vectorizes(self):
        """On a classical machine ddot's reduction would be scalar; here
        the vector coding wins as well."""
        measurement = measure_routine("ddot", n=128)
        assert measurement.check_error is None
        assert measurement.vector_mflops > measurement.scalar_mflops

    def test_dscal_bandwidth_bound(self):
        """One flop per load+store pair: the speedup is modest."""
        measurement = measure_routine("dscal", n=128)
        assert measurement.check_error is None
        assert measurement.speedup < 3.0
