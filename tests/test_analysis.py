"""Tests for metrics, n-half measurement, storage accounting, reporting."""

import pytest

from repro.analysis.metrics import (
    N_HALF_LIMIT,
    harmonic_mean,
    measure_n_half,
    mflops,
    speedup,
    time_vector_op,
)
from repro.analysis.report import render_curve, render_table
from repro.analysis.storage import (
    CLASSICAL_VECTOR,
    UNIFIED,
    context_switch_ratio,
    storage_ratio,
    summary,
)


class TestMetrics:
    def test_mflops_at_40ns(self):
        # 1000 flops in 1000 cycles at 40ns = 25 MFLOPS.
        assert mflops(1000, 1000) == pytest.approx(25.0)

    def test_mflops_zero_cycles(self):
        assert mflops(100, 0) == 0.0

    def test_speedup(self):
        assert speedup(200, 100) == 2.0
        with pytest.raises(ValueError):
            speedup(100, 0)

    def test_harmonic_mean_dominated_by_smallest(self):
        assert harmonic_mean([1.0, 100.0]) < 2.0


class TestNHalf:
    def test_vector_op_time_grows_linearly(self):
        times = [time_vector_op(n, include_memory=False) for n in (1, 4, 8, 16)]
        assert times == [n + 2 for n in (1, 4, 8, 16)]

    def test_alu_n_half_is_latency_minus_one(self):
        result = measure_n_half(include_memory=False)
        assert result["n_half"] == pytest.approx(2.0, abs=0.01)
        assert result["r_inf_per_cycle"] == pytest.approx(1.0, rel=0.01)

    def test_n_half_well_below_the_limit(self):
        """Section 2.2.1: n_half "must be kept to less than 8"."""
        for include_memory in (False, True):
            result = measure_n_half(include_memory=include_memory)
            assert result["n_half"] < N_HALF_LIMIT

    def test_memory_bound_rate_is_a_quarter_result_per_cycle(self):
        """"about 4 cycles per result - two loads, a compute, and then a
        partially overlapped store.\""""
        result = measure_n_half(include_memory=True)
        assert result["r_inf_per_cycle"] == pytest.approx(0.25, rel=0.1)


class TestStorage:
    def test_unified_file_is_3328_bits(self):
        assert UNIFIED.bits == 3328

    def test_classical_file_is_32k_bits(self):
        assert CLASSICAL_VECTOR.bits == 32768

    def test_order_of_magnitude_ratio(self):
        assert 9.0 < storage_ratio() < 11.0

    def test_context_switch_ratio_matches_storage_ratio(self):
        assert context_switch_ratio() == pytest.approx(storage_ratio())

    def test_summary_keys(self):
        s = summary()
        assert s["unified_bits"] == 3328
        assert s["storage_ratio"] > 9


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["loop", "mflops"], [[1, 19.0], [2, 17.3]])
        lines = text.splitlines()
        assert "loop" in lines[0]
        assert "19.0" in lines[2]
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_table_none_blank(self):
        text = render_table(["a"], [[None]])
        assert text.splitlines()[-1].strip() == ""

    def test_render_table_title(self):
        text = render_table(["a"], [[1]], title="Figure 14")
        assert text.startswith("Figure 14")

    def test_render_curve_contains_markers(self):
        series = [("f=0.5", [(1.0, 1.0), (5.0, 1.6), (10.0, 1.8)])]
        art = render_curve(series, width=30, height=8)
        assert "*" in art
        assert "f=0.5" in art

    def test_render_curve_single_series_shorthand(self):
        art = render_curve([(0.0, 0.0), (1.0, 1.0)], width=20, height=6)
        assert "*" in art
