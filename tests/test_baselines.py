"""Tests for the comparison models: Amdahl curves (Figure 11), Hockney
(r_inf, n_half) models, the classical vector machine, and reference data."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines.amdahl import (
    CRAY_1S_PEAK_RATIO,
    MULTITITAN_PEAK_RATIO,
    diminishing_returns_ratio,
    figure11_curves,
    measured_vector_fraction,
    overall_speedup,
)
from repro.baselines.classical import (
    ClassicalTiming,
    ClassicalVectorMachine,
    VECTOR_LENGTH,
    VECTOR_REGISTER_BITS,
)
from repro.baselines.hockney import (
    CRAY_1,
    CYBER_205,
    ICL_DAP,
    MULTITITAN,
    crossover_length,
    fit_n_half,
)
from repro.baselines import reference_data
from repro.core.exceptions import SimulationError


class TestAmdahl:
    def test_no_vectorization_no_speedup(self):
        assert overall_speedup(0.0, 10.0) == 1.0

    def test_full_vectorization_gives_peak(self):
        assert overall_speedup(1.0, 10.0) == pytest.approx(10.0)

    def test_paper_example_infinitely_fast_vectors(self):
        """"the range of vectorization ... 0.3 to 0.7 ... infinitely fast
        vector performance would only improve ... 1.4 to 3.3 times.\""""
        assert overall_speedup(0.3, 1e12) == pytest.approx(1.0 / 0.7, rel=1e-3)
        assert overall_speedup(0.7, 1e12) == pytest.approx(1.0 / 0.3, rel=1e-3)

    @given(st.floats(0.0, 1.0), st.floats(1.0, 100.0))
    def test_speedup_monotone_in_ratio(self, fraction, ratio):
        assert overall_speedup(fraction, ratio + 1.0) >= \
            overall_speedup(fraction, ratio) - 1e-12

    @given(st.floats(0.01, 0.99))
    def test_multititan_captures_most_of_the_benefit(self, fraction):
        """At 2x the machine is already past the knee for f <= ~0.6."""
        at_two = diminishing_returns_ratio(fraction, MULTITITAN_PEAK_RATIO)
        at_ten = diminishing_returns_ratio(fraction, CRAY_1S_PEAK_RATIO)
        assert 0.0 < at_two <= at_ten <= 1.0

    def test_half_the_asymptote_at_ratio_two_for_low_f(self):
        # f=0.5: asymptote 2.0, at r=2 speedup 1.33 -> 1/3 of the gap;
        # at r=10: 1.82 -> 82%.
        assert overall_speedup(0.5, 2.0) == pytest.approx(4.0 / 3.0)

    def test_figure11_curves_shape(self):
        curves = figure11_curves()
        assert set(curves) == {0.2, 0.4, 0.6, 0.8, 1.0}
        for fraction, series in curves.items():
            speeds = [s for _, s in series]
            assert speeds == sorted(speeds)  # monotone in ratio
        # Higher fraction dominates at every ratio.
        for (r1, s1), (r2, s2) in zip(curves[0.2], curves[0.8]):
            assert s2 >= s1

    def test_measured_fraction_inversion(self):
        fraction = 0.6
        speedup = overall_speedup(fraction, 2.0)
        recovered = measured_vector_fraction(1000, int(1000 / speedup), 2.0)
        assert recovered == pytest.approx(fraction, rel=0.02)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            overall_speedup(1.5, 2.0)
        with pytest.raises(ValueError):
            overall_speedup(0.5, 0.0)


class TestHockney:
    def test_half_performance_at_n_half(self):
        for model in (MULTITITAN, CRAY_1, CYBER_205, ICL_DAP):
            assert model.rate_mflops(model.n_half) == \
                pytest.approx(model.r_inf_mflops / 2)

    def test_paper_n_half_values(self):
        assert MULTITITAN.n_half == 4
        assert CRAY_1.n_half == 15
        assert CYBER_205.n_half == 100
        assert ICL_DAP.n_half == 2048

    def test_multititan_wins_at_short_vectors(self):
        """Low n_half means better efficiency on the short vectors the
        52-register file imposes."""
        assert MULTITITAN.efficiency(8) > CRAY_1.efficiency(8)
        assert MULTITITAN.efficiency(8) > CYBER_205.efficiency(8)

    def test_cray_wins_at_long_vectors_in_absolute_rate(self):
        assert CRAY_1.rate_mflops(1000) > MULTITITAN.rate_mflops(1000)

    def test_crossover_against_the_cyber_205(self):
        """The Cyber 205's n_half of 100 hands short vectors to the
        MultiTitan in absolute time, despite a 4x peak-rate deficit."""
        n = crossover_length(MULTITITAN, CYBER_205)
        assert n is not None and n > 8
        assert MULTITITAN.time_us(8) < CYBER_205.time_us(8)
        assert MULTITITAN.time_us(int(n) + 10) > CYBER_205.time_us(int(n) + 10)

    def test_fit_recovers_parameters(self):
        samples = [(n, MULTITITAN.time_us(n)) for n in range(1, 20)]
        r_inf, n_half = fit_n_half(samples)
        assert r_inf == pytest.approx(MULTITITAN.r_inf_mflops, rel=1e-9)
        assert n_half == pytest.approx(MULTITITAN.n_half, rel=1e-9)

    def test_fit_requires_two_samples(self):
        with pytest.raises(ValueError):
            fit_n_half([(1, 1.0)])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            MULTITITAN.time_us(-1)


class TestClassicalMachine:
    def test_register_file_is_ten_times_larger(self):
        from repro.core.registers import STORAGE_BITS
        assert VECTOR_REGISTER_BITS / STORAGE_BITS == pytest.approx(9.85, rel=0.01)

    def test_elementwise_op_is_fast(self):
        machine = ClassicalVectorMachine()
        machine.vload(0, [1.0] * 64)
        machine.vload(1, [2.0] * 64)
        machine.reset_cycles()
        machine.vop("add", 2, 0, 1)
        assert machine.vregs[2][:3] == [3.0, 3.0, 3.0]
        assert machine.cycles < 2 * 64  # amortized startup

    def test_reduction_pays_the_scalar_tax(self):
        machine = ClassicalVectorMachine()
        machine.vload(0, [1.0] * 8)
        machine.reset_cycles()
        total = machine.sum_reduce(0)
        assert total == 8.0
        # 8 moves + 7 scalar adds at long latencies: far above the
        # MultiTitan's 12 cycles for the same reduction (Figure 5).
        assert machine.cycles > 3 * 12

    def test_recurrence_is_fully_scalar(self):
        machine = ClassicalVectorMachine()
        out = machine.first_order_recurrence(0.0, [1.0, 2.0, 3.0])
        assert out == [1.0, 3.0, 6.0]
        assert machine.scalar_ops == 3

    def test_vector_length_limit(self):
        machine = ClassicalVectorMachine()
        with pytest.raises(SimulationError):
            machine.vload(0, [0.0] * 65)

    def test_chaining_reduces_cost(self):
        timing = ClassicalTiming()
        machine = ClassicalVectorMachine(timing)
        machine.vload(0, [1.0] * 64)
        machine.vload(1, [1.0] * 64)
        machine.reset_cycles()
        machine.vop("mul", 2, 0, 1)
        unchained = machine.cycles
        machine.reset_cycles()
        machine.vop("add", 3, 2, 0, chained=True)
        assert machine.cycles < unchained

    def test_context_switch_cost(self):
        machine = ClassicalVectorMachine()
        assert machine.context_switch_cycles() == 8 * VECTOR_LENGTH

    def test_scalar_vector_operand(self):
        machine = ClassicalVectorMachine()
        machine.vload(0, [1.0, 2.0])
        machine.sregs[3] = 10.0
        machine.vop("mul", 1, 0, ("s", 3), n=2)
        assert machine.vregs[1][:2] == [10.0, 20.0]


class TestReferenceData:
    def test_figure14_covers_all_loops(self):
        assert set(reference_data.FIGURE14_MFLOPS) == set(range(1, 25))

    def test_figure14_warm_beats_cold(self):
        for loop, (cold, warm, _, _) in reference_data.FIGURE14_MFLOPS.items():
            assert warm >= cold

    def test_figure14_xmp_beats_cray1s(self):
        for loop, (_, _, cray1s, xmp) in reference_data.FIGURE14_MFLOPS.items():
            assert xmp > cray1s

    def test_multititan_beats_cray_on_5_and_11(self):
        """"the warm cache MultiTitan had better performance than the
        Cray-1S on Livermore Loops 5 and 11.\""""
        for loop in (5, 11):
            cold, warm, cray1s, xmp = reference_data.FIGURE14_MFLOPS[loop]
            assert warm > cray1s
            assert loop not in reference_data.CRAY_VECTORIZED_LOOPS

    def test_harmonic_means_match_table(self):
        from repro.analysis.metrics import harmonic_mean
        for group, indices in (("1-12", range(1, 13)), ("13-24", range(13, 25)),
                               ("1-24", range(1, 25))):
            for column in range(4):
                values = [reference_data.FIGURE14_MFLOPS[i][column]
                          for i in indices]
                published = reference_data.FIGURE14_HARMONIC_MEANS[group][column]
                assert harmonic_mean(values) == pytest.approx(published, rel=0.06)

    def test_figure10_latency_ratios(self):
        fpu, xmp = reference_data.FIGURE10_LATENCIES_NS["addition/subtraction"]
        assert fpu == 3 * reference_data.MULTITITAN_CYCLE_NS
        div_fpu, div_xmp = reference_data.FIGURE10_LATENCIES_NS["division (via 1/x)"]
        assert div_fpu == 6 * fpu  # six 3-cycle operations

    def test_linpack_numbers(self):
        assert reference_data.LINPACK_MFLOPS["MultiTitan vector"] > \
            reference_data.LINPACK_MFLOPS["MultiTitan scalar"]
