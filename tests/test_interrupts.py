"""Interrupt semantics (section 2.3.1): in-flight vector instructions
keep issuing across an interrupt; the handler runs on the CPU meanwhile."""

import pytest

from repro.core.exceptions import SimulationError
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder


def machine_for(program):
    return MultiTitan(program, config=MachineConfig(model_ibuffer=False))


class TestInterruptDelivery:
    def _program_with_handler(self):
        b = ProgramBuilder()
        main_done = b.label("main_done")
        b.addi(2, 2, 1)        # 0: main body
        b.addi(2, 2, 1)        # 1
        b.addi(2, 2, 1)        # 2
        b.addi(2, 2, 1)        # 3
        b.j(main_done)
        handler = b.here("handler")
        b.addi(3, 3, 100)
        b.rfe()
        b.place(main_done)
        b.halt()
        return b.build(), handler.index

    def test_handler_runs_and_resumes(self):
        program, handler_pc = self._program_with_handler()
        machine = machine_for(program)
        machine.schedule_interrupt(2, handler_pc)
        machine.run()
        assert machine.iregs[3] == 100   # handler executed
        assert machine.iregs[2] == 4     # main body completed fully
        assert machine.epc is None

    def test_no_interrupt_without_schedule(self):
        program, _ = self._program_with_handler()
        machine = machine_for(program)
        machine.run()
        assert machine.iregs[3] == 0

    def test_rfe_outside_handler_is_an_error(self):
        b = ProgramBuilder()
        b.rfe()
        with pytest.raises(SimulationError):
            machine_for(b.build()).run()

    def test_nested_interrupts_are_deferred(self):
        """A second interrupt waits until the first handler returns."""
        program, handler_pc = self._program_with_handler()
        machine = machine_for(program)
        machine.schedule_interrupt(1, handler_pc)
        machine.schedule_interrupt(2, handler_pc)
        machine.run()
        assert machine.iregs[3] == 200  # both handled, serially


class TestVectorContinuesThroughInterrupt:
    def test_48_cycle_recursion_completes(self):
        """"In the case of vector recursion (e.g., r[a] := r[a-1] +
        r[a-2]) of length 16, the last element would be written 48 cycles
        later, even if an interrupt occurred in the meantime.\""""
        b = ProgramBuilder()
        done = b.label("done")
        b.fadd(2, 1, 0, vl=16)   # 16-element chained recurrence
        b.j(done)
        handler = b.here("handler")
        b.addi(3, 3, 1)
        b.addi(3, 3, 1)
        b.rfe()
        b.place(done)
        b.halt()
        program = b.build()

        machine = machine_for(program)
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        # Deliver while the vector is still issuing (the CPU reaches HALT
        # after only a few cycles; the interrupt must arrive before it).
        machine.schedule_interrupt(2, handler.index)
        result = machine.run()

        assert machine.iregs[3] == 2           # handler ran mid-vector
        assert result.completion_cycle == 48   # last element written at 48
        fib = [1.0, 1.0]
        for _ in range(16):
            fib.append(fib[-1] + fib[-2])
        assert machine.fpu.regs.read_group(0, 18) == fib

    def test_handler_alu_op_waits_for_the_vector(self):
        """The handler's own FPU ALU instruction queues behind the
        in-flight vector (single ALU instruction register)."""
        b = ProgramBuilder()
        done = b.label("done")
        b.fadd(2, 1, 0, vl=16)
        b.j(done)
        handler = b.here("handler")
        b.fadd(40, 0, 1)   # stalls until the vector drains the IR
        b.rfe()
        b.place(done)
        b.halt()
        machine = machine_for(b.build())
        machine.fpu.regs.write(0, 1.0)
        machine.fpu.regs.write(1, 1.0)
        machine.schedule_interrupt(3, handler.index)
        machine.run()
        assert machine.fpu.regs.read(40) == 2.0
        assert machine.stats.stall_alu_ir_busy > 30
