"""Additional edge-case tests for the small workload modules and shared
infrastructure (gather, fib, common helpers, Lcg)."""

import pytest

from repro.workloads.common import Lcg, expect_close, expect_scalar, run_kernel
from repro.workloads.fib import fibonacci_program, fibonacci_reference, run_fibonacci
from repro.workloads.gather import (
    build_linked_list,
    run_fixed_stride,
    run_linked_list,
)
from repro.mem.memory import Arena, Memory


class TestLcg:
    def test_deterministic(self):
        assert Lcg(1).floats(5) == Lcg(1).floats(5)

    def test_seed_sensitivity(self):
        assert Lcg(1).floats(5) != Lcg(2).floats(5)

    def test_range(self):
        for value in Lcg(3).floats(1000, lo=2.0, hi=5.0):
            assert 2.0 <= value < 5.0

    def test_distribution_is_not_degenerate(self):
        values = Lcg(4).floats(1000)
        assert len(set(values)) == 1000
        # Roughly uniform: each decile gets its share.
        deciles = [0] * 10
        for value in values:
            deciles[min(int(value * 10), 9)] += 1
        assert min(deciles) > 50


class TestExpectHelpers:
    def test_expect_close_passes(self):
        memory = Memory()
        memory.write_block(0, [1.0, 2.0])
        assert expect_close(memory, 0, [1.0, 2.0]) is None

    def test_expect_close_reports_index(self):
        memory = Memory()
        memory.write_block(0, [1.0, 2.5])
        error = expect_close(memory, 0, [1.0, 2.0], label="arr")
        assert "arr[1]" in error

    def test_expect_close_integer_mismatch(self):
        memory = Memory()
        memory.write(0, 7)
        assert expect_close(memory, 0, [8]) is not None
        assert expect_close(memory, 0, [7]) is None

    def test_expect_scalar(self):
        assert expect_scalar(1.0, 1.0) is None
        assert expect_scalar(1.0, 1.1) is not None


class TestFibModule:
    def test_reference(self):
        assert fibonacci_reference(5) == [1.0, 1.0, 2.0, 3.0, 5.0]

    def test_minimum_count(self):
        with pytest.raises(ValueError):
            fibonacci_program(2)

    def test_register_file_limits_long_chains(self):
        # 52 registers bound the longest in-register sequence.
        outcome = run_fibonacci(50)
        assert outcome.values == fibonacci_reference(50)
        from repro.core.exceptions import EncodingError
        with pytest.raises(EncodingError):
            run_fibonacci(60)

    def test_chained_vectors_cost_three_cycles_per_element(self):
        outcome = run_fibonacci(34)   # 32 chained elements, two instructions
        assert outcome.cycles == 3 * 32


class TestGatherModule:
    def test_fixed_stride_values_independent_of_stride(self):
        for stride in (1, 2, 5):
            outcome = run_fixed_stride(stride_words=stride)
            assert outcome.values == [10.0 * (k + 1) for k in range(8)]

    def test_linked_list_layout(self):
        memory = Memory()
        arena = Arena(memory, base=64)
        head = build_linked_list(memory, arena, [5.0, 6.0, 7.0])
        # Walk the list in Python.
        values = []
        node = head
        while node:
            values.append(memory.read(node + 8))
            node = memory.read(node)
        assert values == [5.0, 6.0, 7.0]

    def test_cold_linked_list_still_correct(self):
        outcome = run_linked_list(warm=False)
        assert outcome.values == [10.0 * (k + 1) for k in range(8)]

    def test_shorter_gathers(self):
        outcome = run_fixed_stride(count=4)
        assert len(outcome.values) == 4


class TestRunKernelHarness:
    def test_check_can_be_skipped(self):
        from repro.workloads.livermore import build_loop
        result = run_kernel(build_loop(12), check=False)
        assert result.check_error is None

    def test_memory_restored_after_run(self):
        from repro.workloads.livermore import build_loop
        kernel = build_loop(12)
        image_before = list(kernel.memory.words)
        run_kernel(kernel)
        assert kernel.memory.words == image_before
