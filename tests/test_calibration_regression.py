"""Calibration-regression locks.

The timing model was calibrated cycle-exactly against the paper's worked
examples; these tests lock key *derived* cycle counts so an accidental
timing-model change is caught immediately.  If a deliberate model change
shifts these numbers, re-derive them and update both this file and
EXPERIMENTS.md together.
"""

import pytest

from repro.workloads.common import run_kernel
from repro.workloads.livermore import build_loop
from repro.workloads.linpack import build_linpack

# loop -> (cold cycles, warm cycles) at the default sizes and seed.
LIVERMORE_LOCKS = {
    1: (3225, 835),
    3: (2574, 646),
    7: (5162, 2145),
    13: (9820, 4939),
    21: (26087, 18215),
    24: (3270, 1800),
}


class TestLivermoreCycleLocks:
    @pytest.mark.parametrize("loop", sorted(LIVERMORE_LOCKS))
    def test_cold_cycles(self, loop):
        result = run_kernel(build_loop(loop), warm=False)
        assert result.passed
        expected = LIVERMORE_LOCKS[loop][0]
        assert result.cycles == expected, (
            "loop %d cold: %d cycles, calibration expects %d"
            % (loop, result.cycles, expected))

    @pytest.mark.parametrize("loop", sorted(LIVERMORE_LOCKS))
    def test_warm_cycles(self, loop):
        result = run_kernel(build_loop(loop), warm=True)
        assert result.passed
        expected = LIVERMORE_LOCKS[loop][1]
        assert result.cycles == expected, (
            "loop %d warm: %d cycles, calibration expects %d"
            % (loop, result.cycles, expected))


class TestLinpackLock:
    def test_small_linpack_cycles(self):
        result = run_kernel(build_linpack(12, "vector"), warm=True)
        assert result.passed
        # Lock loosely (±2%): the solver path is long and any timing
        # drift shows up well inside this band.
        assert result.cycles == pytest.approx(10465, rel=0.02)
