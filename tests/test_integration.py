"""End-to-end integration tests crossing module boundaries."""

import pytest

from repro import (
    AluInstruction,
    MachineConfig,
    Memory,
    MultiTitan,
    ProgramBuilder,
    assemble,
    decode_alu,
    encode_alu,
)
from repro.core.types import Op
from repro.mem.memory import Arena, WORD_BYTES
from repro.workloads.common import run_kernel
from repro.workloads.livermore import build_loop


class TestPublicApi:
    def test_quickstart_sequence(self):
        """The README quickstart must work as written."""
        b = ProgramBuilder()
        b.fadd(16, 0, 8, vl=4)
        program = b.build()
        machine = MultiTitan(program)
        machine.fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0])
        machine.fpu.regs.write_group(8, [10.0, 20.0, 30.0, 40.0])
        result = machine.run()
        assert machine.fpu.regs.read_group(16, 4) == [11.0, 22.0, 33.0, 44.0]
        assert result.completion_cycle > 0

    def test_encode_execute_round_trip(self):
        """An instruction encoded to its 32-bit word, decoded, and issued
        must behave like the original."""
        word = encode_alu(AluInstruction(rr=16, ra=0, rb=8, unit=2, func=0,
                                         vector_length=2))
        decoded = decode_alu(word)
        b = ProgramBuilder()
        b.falu(decoded.op, decoded.rr, decoded.ra, decoded.rb,
               vl=decoded.vector_length, sra=decoded.stride_ra,
               srb=decoded.stride_rb)
        machine = MultiTitan(b.build(), config=MachineConfig(model_ibuffer=False))
        machine.fpu.regs.write_group(0, [3.0, 4.0])
        machine.fpu.regs.write_group(8, [5.0, 6.0])
        machine.run()
        assert machine.fpu.regs.read_group(16, 2) == [15.0, 24.0]


class TestOverflowProgram:
    def test_vector_overflow_aborts_and_sets_psw(self):
        memory = Memory()
        arena = Arena(memory, base=64)
        data = arena.alloc_array([2.0, 1e300, 2.0, 2.0])
        scale = arena.alloc_array([1e10])
        b = ProgramBuilder()
        for i in range(4):
            b.fload(i, 1, i * WORD_BYTES)
        b.fload(8, 2, 0)
        b.fmul(16, 8, 0, vl=4, sra=False)
        machine = MultiTitan(b.build(), memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.iregs[1] = data
        machine.iregs[2] = scale
        machine.run()
        psw = machine.fpu.regs.psw
        assert psw.overflow
        assert psw.overflow_dest == 17  # second element overflowed
        assert machine.fpu.regs.read(18) == 0.0  # discarded


class TestContextSwitchCost:
    def test_saving_the_unified_file_is_cheap(self):
        """Storing all 52 registers takes ~104 store-port cycles, an
        order of magnitude below a classical 512-word vector file."""
        memory = Memory()
        b = ProgramBuilder()
        for i in range(52):
            b.fstore(i, 1, i * WORD_BYTES)
        machine = MultiTitan(b.build(), memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.iregs[1] = 4096
        machine.dcache.warm_range(4096, 52 * WORD_BYTES)
        result = machine.run()
        assert result.completion_cycle <= 2 * 52 + 2
        from repro.baselines.classical import ClassicalVectorMachine
        assert ClassicalVectorMachine().context_switch_cycles(2) \
            >= 8 * result.completion_cycle


class TestMixedVectorScalar:
    def test_dot_product_without_data_movement(self):
        """Multiply as a vector, reduce the *same registers* as scalars:
        the transfer a split register file would force never happens."""
        source = """
            fmul f16, f0, f8, vl=4      ; elementwise products
            fadd f20, f16, f18, vl=2    ; pairwise sums (tree)
            fadd f24, f20, f21          ; final scalar add
            halt
        """
        machine = MultiTitan(assemble(source),
                             config=MachineConfig(model_ibuffer=False))
        machine.fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0])
        machine.fpu.regs.write_group(8, [10.0, 20.0, 30.0, 40.0])
        machine.run()
        assert machine.fpu.regs.read(24) == 10.0 + 40.0 + 90.0 + 160.0

    def test_loads_overlap_reduction(self):
        """While a reduction issues, the CPU streams the next row in --
        the matrix-multiply overlap of section 2.1.1."""
        memory = Memory()
        arena = Arena(memory, base=64)
        next_row = arena.alloc_array([float(i) for i in range(8)])
        # Loads scheduled into the cycles the ALU IR would otherwise
        # leave the CPU idle -- the compiler interleaving of section 2.1.1.
        b = ProgramBuilder()
        b.fadd(8, 0, 4, vl=4)          # tree reduction of R0..R7
        for i in range(3):
            b.fload(16 + i, 1, i * WORD_BYTES)
        b.fadd(12, 8, 10, vl=2)
        for i in range(3, 5):
            b.fload(16 + i, 1, i * WORD_BYTES)
        b.fadd(14, 12, 13)
        for i in range(5, 8):
            b.fload(16 + i, 1, i * WORD_BYTES)
        machine = MultiTitan(b.build(), memory=memory,
                             config=MachineConfig(model_ibuffer=False))
        machine.fpu.regs.write_group(0, [1.0] * 8)
        machine.iregs[1] = next_row
        machine.dcache.warm_range(next_row, 64)
        result = machine.run()
        # All 8 loads hide inside the reduction's 12 cycles (+ drain).
        assert result.completion_cycle <= 13
        assert machine.fpu.regs.read(14) == 8.0


class TestLatencyConfigurability:
    def test_longer_latency_slows_recurrences_linearly(self):
        def run_with(latency):
            b = ProgramBuilder()
            b.fadd(2, 1, 0, vl=8)
            machine = MultiTitan(b.build(), config=MachineConfig(
                model_ibuffer=False, fpu_latency=latency))
            machine.fpu.regs.write(0, 1.0)
            machine.fpu.regs.write(1, 1.0)
            return machine.run().completion_cycle

        assert run_with(3) == 24
        assert run_with(1) == 8
        assert run_with(6) == 48

    def test_latency_barely_affects_independent_vectors(self):
        def run_with(latency):
            b = ProgramBuilder()
            b.fadd(16, 0, 8, vl=8)
            machine = MultiTitan(b.build(), config=MachineConfig(
                model_ibuffer=False, fpu_latency=latency))
            return machine.run().completion_cycle

        assert run_with(6) - run_with(3) == 3  # only the drain grows


class TestWarmColdHarness:
    def test_warm_run_restores_data(self):
        kernel = build_loop(5)
        warm = run_kernel(kernel, warm=True)
        assert warm.passed, warm.check_error

    def test_cold_has_more_misses_than_warm(self):
        cold = run_kernel(build_loop(1), warm=False)
        warm = run_kernel(build_loop(1), warm=True)
        assert cold.cache_misses > warm.cache_misses
        assert warm.cycles < cold.cycles
