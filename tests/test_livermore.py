"""Correctness and shape tests for the Livermore Loop kernels."""

import pytest

from repro.cpu.machine import MachineConfig
from repro.workloads.common import run_kernel
from repro.workloads.livermore import (
    ALL_LOOPS,
    KERNELS,
    VECTORIZED_LOOPS,
    build_loop,
    harmonic_mean,
    make_data,
    measure_loop,
    suite_summary,
)
from repro.workloads.livermore.reference import REFERENCES


class TestReferenceImplementations:
    @pytest.mark.parametrize("loop", ALL_LOOPS)
    def test_reference_returns_outputs_and_flops(self, loop):
        n, arrays = make_data(loop)
        outputs, flops = REFERENCES[loop](n, arrays)
        assert outputs
        assert flops > 0

    def test_loop3_is_a_dot_product(self):
        n, arrays = make_data(3)
        outputs, _ = REFERENCES[3](n, arrays)
        direct = sum(z * x for z, x in zip(arrays["z"], arrays["x"]))
        assert outputs["q"] == pytest.approx(direct, rel=1e-12)

    def test_loop11_is_a_prefix_sum(self):
        n, arrays = make_data(11)
        outputs, _ = REFERENCES[11](n, arrays)
        assert outputs["x"][-1] == pytest.approx(sum(arrays["y"]), rel=1e-12)

    def test_loop24_finds_the_minimum(self):
        n, arrays = make_data(24)
        outputs, _ = REFERENCES[24](n, arrays)
        assert arrays["x"][outputs["m"]] == min(arrays["x"])

    def test_data_is_deterministic(self):
        _, a = make_data(1, seed=42)
        _, b = make_data(1, seed=42)
        assert a["y"] == b["y"]

    def test_data_seeds_differ(self):
        _, a = make_data(1, seed=1)
        _, b = make_data(1, seed=2)
        assert a["y"] != b["y"]


class TestKernelCorrectness:
    @pytest.mark.parametrize("loop", ALL_LOOPS)
    def test_default_coding_cold(self, loop):
        result = run_kernel(build_loop(loop))
        assert result.passed, result.check_error

    @pytest.mark.parametrize("loop", ALL_LOOPS)
    def test_scalar_coding(self, loop):
        result = run_kernel(build_loop(loop, coding="scalar"))
        assert result.passed, result.check_error

    @pytest.mark.parametrize("loop", sorted(VECTORIZED_LOOPS))
    def test_vector_coding_warm(self, loop):
        result = run_kernel(build_loop(loop, coding="vector"), warm=True)
        assert result.passed, result.check_error

    @pytest.mark.parametrize("loop", [1, 3, 12])
    def test_alternate_strip_lengths(self, loop):
        for vl in (2, 4, 8, 16):
            result = run_kernel(build_loop(loop, coding="vector", vl=vl))
            assert result.passed, "vl=%d: %s" % (vl, result.check_error)

    def test_loop7_small_strips_only(self):
        for vl in (2, 4):
            result = run_kernel(build_loop(7, coding="vector", vl=vl))
            assert result.passed, "vl=%d: %s" % (vl, result.check_error)

    def test_register_pressure_raises_the_papers_compile_error(self):
        """Loop 7 needs nine vector temporaries; at VL=8 that exceeds the
        52-register file -- "a compile error was raised" (section 3)."""
        from repro.vectorize.allocator import AllocationError
        with pytest.raises(AllocationError):
            build_loop(7, coding="vector", vl=8)

    @pytest.mark.parametrize("loop", [1, 3, 5, 11])
    def test_alternate_problem_sizes(self, loop):
        for n in (17, 33, 64):
            result = run_kernel(build_loop(loop, n=n))
            assert result.passed, "n=%d: %s" % (n, result.check_error)

    @pytest.mark.parametrize("loop", [1, 5, 16, 22])
    def test_alternate_seeds(self, loop):
        result = run_kernel(build_loop(loop, seed=2024))
        assert result.passed, result.check_error


class TestPerformanceShape:
    """The qualitative claims of Figure 14 must hold in simulation."""

    def test_warm_beats_cold_everywhere(self):
        for loop in (1, 3, 7, 13, 22):
            m = measure_loop(loop)
            assert m.warm_mflops > m.cold_mflops, "loop %d" % loop

    def test_vector_beats_scalar_on_vectorized_loops(self):
        for loop in (1, 3, 7, 9, 12, 21):
            vector = run_kernel(build_loop(loop, coding="vector"), warm=True)
            scalar = run_kernel(build_loop(loop, coding="scalar"), warm=True)
            assert vector.mflops > scalar.mflops, "loop %d" % loop

    def test_first_half_beats_second_half(self):
        """Warm harmonic mean of loops 1-12 well above loops 13-24."""
        sample_first = [measure_loop(l).warm_mflops for l in (1, 3, 7, 9)]
        sample_second = [measure_loop(l).warm_mflops for l in (13, 15, 16, 24)]
        assert harmonic_mean(sample_first) > 2 * harmonic_mean(sample_second)

    def test_cold_cache_penalty_is_large_for_simple_loops(self):
        """"factors of about three to six" between cold and warm."""
        m = measure_loop(1)
        ratio = m.warm_mflops / m.cold_mflops
        assert 2.0 < ratio < 8.0

    def test_cold_cache_penalty_is_smaller_for_complex_loops(self):
        """Loops 13-24 have more branching, so misses are diluted."""
        simple = measure_loop(1)
        complex_loop = measure_loop(16)
        assert (complex_loop.warm_mflops / complex_loop.cold_mflops
                < simple.warm_mflops / simple.cold_mflops)

    def test_suite_summary_groups(self):
        measurements = {loop: measure_loop(loop) for loop in (1, 2, 13, 14)}
        summary = suite_summary(measurements)
        assert set(summary) == {"1-12", "13-24", "1-24"}
        assert summary["1-12"][1] > summary["13-24"][1]


class TestMiscProperties:
    def test_registry_covers_all_loops(self):
        assert set(KERNELS) == set(range(1, 25))

    def test_vectorized_set_matches_registry(self):
        assert all(KERNELS[l].vectorizable for l in VECTORIZED_LOOPS)

    def test_loop2_requires_power_of_two(self):
        with pytest.raises(ValueError):
            make_data(2, n=100)

    def test_kernel_rerun_is_reproducible(self):
        kernel = build_loop(7)
        first = run_kernel(kernel)
        second = run_kernel(kernel)
        assert first.cycles == second.cycles
        assert second.passed

    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == 2.0
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)
        assert harmonic_mean([]) == 0.0
