"""Tests for flat memory, the arena allocator, and the cache models."""

import pytest
from hypothesis import given, strategies as st

from repro.core.exceptions import SimulationError
from repro.mem.cache import DirectMappedCache, data_cache, instruction_buffer
from repro.mem.memory import Arena, Memory, WORD_BYTES


class TestMemory:
    def test_read_write(self):
        memory = Memory()
        memory.write(64, 1.5)
        assert memory.read(64) == 1.5

    def test_initially_zero(self):
        assert Memory().read(1024) == 0.0

    def test_unaligned_rejected(self):
        with pytest.raises(SimulationError):
            Memory().read(7)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            Memory().write(-8, 1.0)

    def test_grows_on_demand(self):
        memory = Memory(size_bytes=64)
        memory.write(1 << 16, 2.0)
        assert memory.read(1 << 16) == 2.0

    def test_block_round_trip(self):
        memory = Memory()
        memory.write_block(128, [1.0, 2.0, 3.0])
        assert memory.read_block(128, 3) == [1.0, 2.0, 3.0]

    def test_integers_preserved(self):
        memory = Memory()
        memory.write(0, 42)
        assert memory.read(0) == 42
        assert type(memory.read(0)) is int


class TestArena:
    def test_sequential_allocation(self):
        memory = Memory()
        arena = Arena(memory, base=256)
        first = arena.alloc(4)
        second = arena.alloc(2)
        assert first == 256
        assert second == 256 + 4 * WORD_BYTES

    def test_alloc_array_initializes(self):
        memory = Memory()
        arena = Arena(memory)
        address = arena.alloc_array([9.0, 8.0])
        assert memory.read_block(address, 2) == [9.0, 8.0]

    def test_initializer_length_checked(self):
        with pytest.raises(SimulationError):
            Arena(Memory()).alloc(3, initial=[1.0])

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=20))
    def test_allocations_never_overlap(self, sizes):
        arena = Arena(Memory(), base=0)
        spans = []
        for size in sizes:
            address = arena.alloc(size)
            spans.append((address, address + size * WORD_BYTES))
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start


class TestDirectMappedCache:
    def test_miss_then_hit(self):
        cache = DirectMappedCache(1024, 16, miss_penalty=14)
        assert cache.access(0) == 14
        assert cache.access(0) == 0
        assert cache.access(8) == 0  # same line

    def test_line_granularity(self):
        cache = DirectMappedCache(1024, 16, miss_penalty=14)
        cache.access(0)
        assert cache.access(16) == 14  # next line

    def test_conflict_eviction(self):
        cache = DirectMappedCache(64, 16, miss_penalty=14)  # 4 lines
        assert cache.access(0) == 14
        assert cache.access(64) == 14  # same index, different tag
        assert cache.access(0) == 14   # evicted

    def test_dirty_writeback_counted(self):
        cache = DirectMappedCache(64, 16, miss_penalty=14)
        cache.access(0, is_write=True)
        cache.access(64)
        assert cache.writebacks == 1

    def test_clean_eviction_not_counted(self):
        cache = DirectMappedCache(64, 16, miss_penalty=14)
        cache.access(0)
        cache.access(64)
        assert cache.writebacks == 0

    def test_warm_range(self):
        cache = DirectMappedCache(1024, 16, miss_penalty=14)
        cache.warm_range(0, 256)
        for address in range(0, 256, 8):
            assert cache.access(address) == 0

    def test_flush(self):
        cache = DirectMappedCache(1024, 16, miss_penalty=14)
        cache.access(0)
        cache.flush()
        assert cache.access(0) == 14

    def test_hit_rate(self):
        cache = DirectMappedCache(1024, 16, miss_penalty=14)
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == 0.5

    def test_size_must_be_line_multiple(self):
        with pytest.raises(SimulationError):
            DirectMappedCache(100, 16)

    def test_contains(self):
        cache = DirectMappedCache(1024, 16, miss_penalty=14)
        assert not cache.contains(32)
        cache.access(32)
        assert cache.contains(32)

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_second_pass_all_hits_when_footprint_fits(self, addresses):
        """Any word set that fits one pass of a big cache hits on rerun."""
        cache = DirectMappedCache(1 << 21, 16, miss_penalty=14)
        footprint = [(a // 8) * 8 for a in addresses]
        for address in footprint:
            cache.access(address)
        for address in footprint:
            assert cache.access(address) == 0


class TestPaperParameters:
    def test_data_cache_is_64k_direct_mapped_16byte_lines(self):
        cache = data_cache()
        assert cache.size_bytes == 64 * 1024
        assert cache.line_bytes == 16
        assert cache.miss_penalty == 14
        assert cache.num_lines == 4096

    def test_instruction_buffer_is_2k(self):
        buffer = instruction_buffer()
        assert buffer.size_bytes == 2 * 1024
