"""Tests for the textual kernel language."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import AssemblerError
from repro.vectorize.mahler import compile_kernel, parse_kernel
from repro.workloads.common import Lcg


def floats(n, seed=5, lo=0.1, hi=1.5):
    return Lcg(seed).floats(n, lo, hi)


class TestParsing:
    def test_declarations(self):
        kernel = parse_kernel("""
            input a, b;
            output o;
            param p;
            o[0] = a[0] + b[0] * p;
        """)
        assert set(kernel._inputs) == {"a", "b"}
        assert set(kernel._outputs) == {"o"}
        assert kernel._params == ["p"]

    def test_comments_ignored(self):
        kernel = parse_kernel("""
            -- a comment line
            input a;   -- trailing comment
            output o;
            o[0] = a[0];
        """)
        assert set(kernel._inputs) == {"a"}

    def test_precedence(self):
        source = """
            input a; output o; param p;
            o[0] = a[0] + a[1] * p - 2.0;
        """
        compiled = compile_kernel(source, n=4,
                                  data={"a": floats(5)}, params={"p": 3.0})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error
        a = compiled.data["a"]
        assert outcome.outputs["o"][0] == pytest.approx(
            a[0] + a[1] * 3.0 - 2.0, rel=1e-12)

    def test_parentheses_and_unary_minus(self):
        source = """
            input a; output o;
            o[0] = -(a[0] + 1.0) * 2.0;
        """
        compiled = compile_kernel(source, n=3, data={"a": floats(3)})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error

    def test_scientific_literals(self):
        source = """
            input a; output o;
            o[0] = a[0] * 2.5e-1;
        """
        compiled = compile_kernel(source, n=3, data={"a": floats(3)})
        outcome = compiled.run()
        assert outcome.passed
        assert outcome.outputs["o"][1] == pytest.approx(
            compiled.data["a"][1] * 0.25, rel=1e-12)


class TestErrors:
    def test_undeclared_array(self):
        with pytest.raises(AssemblerError):
            parse_kernel("output o; o[0] = q[0];")

    def test_undeclared_parameter(self):
        with pytest.raises(AssemblerError):
            parse_kernel("input a; output o; o[0] = a[0] * alpha;")

    def test_assignment_to_input(self):
        with pytest.raises(AssemblerError):
            parse_kernel("input a; a[0] = a[1];")

    def test_double_declaration(self):
        with pytest.raises(AssemblerError):
            parse_kernel("input a; param a;")

    def test_missing_semicolon(self):
        with pytest.raises(AssemblerError):
            parse_kernel("input a; output o; o[0] = a[0]")

    def test_bad_character(self):
        with pytest.raises(AssemblerError):
            parse_kernel("input a; output o; o[0] = a[0] @ 2;")


class TestEndToEnd:
    def test_livermore_loop1_text(self):
        source = """
            -- Livermore loop 1: hydro fragment
            input  y, z;
            output x;
            param  q, r, t;
            x[0] = q + y[0] * (r * z[10] + t * z[11]);
        """
        n = 50
        compiled = compile_kernel(source, n=n,
                                  data={"y": floats(n), "z": floats(n + 11, 6)},
                                  params={"q": 0.5, "r": 0.25, "t": 0.125})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error

    def test_reduction_statement(self):
        source = """
            input a, b;
            sum dot = a[0] * b[0];
        """
        n = 32
        compiled = compile_kernel(source, n=n,
                                  data={"a": floats(n, 1), "b": floats(n, 2)})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error
        direct = sum(x * y for x, y in zip(compiled.data["a"],
                                           compiled.data["b"]))
        assert outcome.sums["dot"] == pytest.approx(direct, rel=1e-10)

    def test_division_lowering(self):
        source = """
            input a, b; output o;
            o[0] = a[0] / (b[0] + 1.0);
        """
        n = 16
        compiled = compile_kernel(source, n=n,
                                  data={"a": floats(n, 3), "b": floats(n, 4)})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error

    def test_multiple_statements(self):
        source = """
            input a; output dbl, sq;
            param two;
            dbl[0] = a[0] * two;
            sq[0]  = a[0] * a[0];
            sum total = a[0];
        """
        n = 20
        compiled = compile_kernel(source, n=n, data={"a": floats(n)},
                                  params={"two": 2.0})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error

    @given(st.integers(1, 40), st.integers(0, 9999))
    @settings(max_examples=15, deadline=None)
    def test_property_text_equals_python(self, n, seed):
        source = """
            input a, b; output o; param p;
            o[0] = (a[0] + b[0]) * p - a[1] * b[1];
        """
        compiled = compile_kernel(source, n=n,
                                  data={"a": floats(n + 1, seed + 1),
                                        "b": floats(n + 1, seed + 2)},
                                  params={"p": 1.5})
        outcome = compiled.run()
        assert outcome.passed, outcome.check_error
