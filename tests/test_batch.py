"""The batched ``soa`` fleet: lane masking, lockstep slicing, and the
batched campaign session.

The masking battery is the satellite contract: one fleet whose lanes
meet every fate at once -- an immediate HALT, a section 2.3.3 overflow
abort, a livelock that runs to ``max_cycles``, and a clean run -- and
every lane's result (or error) is byte-identical to a solo ``percycle``
run of the same program and memory.  Masked-out lanes must never
perturb their neighbours.

The session half proves :func:`run_batched_campaign` is a drop-in for
the scalar path: identical metrics and cache keys, request order
preserved, ``"batched"`` sidecar telemetry, scalar degradation for
broken groups, and the prefix-restore fast path returning memories to
their exact template image.
"""

import pytest

from repro.batch import HAVE_NUMPY

if not HAVE_NUMPY:
    pytest.skip("NumPy unavailable: the soa backend is not registered",
                allow_module_level=True)

from repro import api, orchestrate
from repro.api import RunRequest
from repro.batch.engine import SoaFleet
from repro.batch.session import (BatchSession, _restore_words,
                                 is_batchable, run_batched_campaign)
from repro.core.backend import create_machine
from repro.core.exceptions import LivelockError, SimulationError
from repro.cpu.machine import MachineConfig
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Memory
from repro.robustness.differential import bit_exact

# The mode word each lane reads to pick its fate (one shared program,
# per-lane memories).
BASE = 256
MODE_HALT, MODE_SPIN, MODE_WORK = 0, 1, 2

PLAIN = ((1.0, 2.0, 3.0, 4.0), (5.0, 6.0, 7.0, 8.0))
# Element 1 overflows (1e200 * 1e200): the section 2.3.3 abort captures
# dest/element in the PSW and discards the rest of the vector.
OVERFLOW = ((1.0, 1e200, 3.0, 4.0), (1.0, 1e200, 1.0, 1.0))


def _mode_program():
    b = ProgramBuilder()
    spin = b.label("spin")
    stop = b.label("stop")
    b.li(1, BASE)
    b.lw(2, 1, 0)
    b.beq(2, 0, stop)           # MODE_HALT: straight to the HALT
    b.li(3, 1)
    b.beq(2, 3, spin)           # MODE_SPIN: branch-to-self livelock
    for element in range(4):    # MODE_WORK: a VL=4 multiply
        b.fload(element, 1, 8 + 8 * element)
        b.fload(8 + element, 1, 40 + 8 * element)
    b.fmul(16, 0, 8, vl=4)
    b.fstore(16, 1, 72)
    b.fstore(19, 1, 80)         # unwritten after an overflow abort
    b.j(stop)
    b.place(spin)
    b.j(spin)
    b.place(stop)
    b.halt()
    return b.build()


def _mode_memory(mode, operands=PLAIN):
    memory = Memory()
    memory.write(BASE, mode)
    for offset, values in zip((8, 40), operands):
        for element, value in enumerate(values):
            memory.write(BASE + offset + 8 * element, value)
    return memory


def _battery():
    """(mode, operands) per lane: HALT, overflow, livelock, clean."""
    return [(MODE_HALT, PLAIN), (MODE_WORK, OVERFLOW),
            (MODE_SPIN, PLAIN), (MODE_WORK, PLAIN)]


def _solo_percycle(program, mode, operands, config):
    machine = create_machine("percycle", program,
                             memory=_mode_memory(mode, operands),
                             config=config)
    try:
        return machine.run(), None, machine
    except SimulationError as error:
        return None, error, machine


def _assert_results_match(result, other):
    """RunResult equality with FpuStats compared by value (it is a
    plain counter object without ``__eq__``)."""
    assert result.halt_cycle == other.halt_cycle
    assert result.completion_cycle == other.completion_cycle
    assert result.stats == other.stats
    assert result.fpu_stats.as_dict() == other.fpu_stats.as_dict()
    assert result.dcache_hits == other.dcache_hits
    assert result.dcache_misses == other.dcache_misses


def _assert_states_match(lane, machine):
    state, solo = lane.architectural_state(), machine.architectural_state()
    assert state["halted"] == solo["halted"]
    assert state["iregs"] == solo["iregs"]
    assert state["psw"] == solo["psw"]
    assert all(bit_exact(a, b)
               for a, b in zip(state["fregs"], solo["fregs"]))
    assert state["memory"]["words"].keys() == solo["memory"]["words"].keys()
    assert all(bit_exact(state["memory"]["words"][index],
                         solo["memory"]["words"][index])
               for index in state["memory"]["words"])


class TestLaneMaskingBattery:
    def _configs(self):
        # A tight watchdog so the livelock lane hits its budget fast.
        return [MachineConfig(max_cycles=500) for _ in _battery()]

    def _fleet(self):
        program = _mode_program()
        configs = self._configs()
        memories = [_mode_memory(mode, operands)
                    for mode, operands in _battery()]
        return program, SoaFleet(program, configs, memories=memories)

    def test_mixed_fates_match_solo_percycle(self):
        program, fleet = self._fleet()
        results, errors = fleet.run_all()
        for index, (mode, operands) in enumerate(_battery()):
            solo_result, solo_error, machine = _solo_percycle(
                program, mode, operands, self._configs()[index])
            if mode == MODE_SPIN:
                assert results[index] is None
                assert isinstance(errors[index], LivelockError)
                assert isinstance(solo_error, LivelockError)
                assert str(errors[index]) == str(solo_error)
            else:
                assert errors[index] is None
                _assert_results_match(results[index], solo_result)
            _assert_states_match(fleet.lanes[index], machine)

    def test_overflow_lane_captured_the_section_2_3_3_psw(self):
        _program, fleet = self._fleet()
        fleet.run_all()
        overflow_lane = fleet.lanes[1]
        psw = overflow_lane.fpu.regs.psw
        assert psw.overflow
        assert psw.overflow_dest == 17
        assert psw.overflow_element == 1
        assert overflow_lane.fpu.stats.overflow_aborts == 1
        # The abort is architectural, not an error: the lane halted.
        assert overflow_lane.halted
        # Its neighbours saw nothing: no overflow on the clean lane.
        assert not fleet.lanes[3].fpu.regs.psw.overflow
        assert fleet.lanes[3].fpu.stats.overflow_aborts == 0

    def test_masked_halt_lane_never_advances_again(self):
        _program, fleet = self._fleet()
        results, _errors = fleet.run_all()
        assert fleet.lanes[0].halted
        halt_lane_cycle = fleet.lanes[0].cycle
        assert halt_lane_cycle <= results[0].halt_cycle + 1
        # The spin lane burned its whole budget; the halted lane's clock
        # stayed put (masked out, never unbatched or re-advanced).
        assert fleet.lanes[2].cycle >= 500
        assert halt_lane_cycle < 50

    def test_lockstep_slicing_is_invisible_in_the_results(self):
        """``run_all(slice_cycles=...)`` bounds how far lanes run ahead
        per round; results, errors and final state must be identical to
        the free-running fleet."""
        program, free = self._fleet()
        free_results, free_errors = free.run_all()
        _program, sliced = self._fleet()
        sliced_results, sliced_errors = sliced.run_all(slice_cycles=7)
        for a, b in zip(sliced_results, free_results):
            assert (a is None) == (b is None)
            if a is not None:
                _assert_results_match(a, b)
        for a, b in zip(sliced_errors, free_errors):
            assert (a is None) == (b is None)
            if a is not None:
                assert str(a) == str(b)
        for index in range(len(_battery())):
            _assert_states_match(sliced.lanes[index], free.lanes[index])

    def test_unsupported_observation_flags_fail_at_construction(self):
        program = _mode_program()
        for flag in ("trace", "audit_invariants", "audit_scoreboard_ports"):
            config = MachineConfig(**{flag: True})
            with pytest.raises(SimulationError, match=flag):
                SoaFleet(program, [config])


# ---------------------------------------------------------------------------
# The batched campaign session
# ---------------------------------------------------------------------------

def _campaign_requests(backend="soa"):
    requests = []
    for loop in (1, 3):
        for latency in (1, 4):
            requests.append(RunRequest(
                "livermore", {"loop": loop, "n": 16, "warm": True},
                config={"fpu_latency": latency}, backend=backend))
    return requests


class TestBatchedCampaign:
    def test_results_match_the_scalar_path_in_request_order(self):
        requests = _campaign_requests()
        run = run_batched_campaign(requests)
        assert len(run.results) == len(requests)
        for request, result, sidecar in zip(requests, run.results,
                                            run.sidecars):
            scalar = api.execute_request(request)
            assert result.passed, result.check_error
            assert result.metrics == scalar.metrics
            assert result.key == scalar.key
            assert result.params == request.params
            assert sidecar["batched"] is True

    def test_cache_interop_with_the_scalar_path(self, tmp_path):
        """Batched and scalar runs share one digest-keyed cache: either
        side's entries are the other side's hits."""
        requests = _campaign_requests()
        cache = str(tmp_path / "cache")
        seeded = run_batched_campaign(requests, cache_dir=cache)
        assert seeded.cached_count == 0
        for request in requests:
            hit = api.execute_request(
                request, cache=orchestrate.ResultCache(cache))
            assert hit.cached
        again = run_batched_campaign(requests, cache_dir=cache)
        assert again.cached_count == len(requests)
        assert again.cache_hit_rate == 1.0

    def test_non_batchable_requests_are_rejected(self):
        request = RunRequest("livermore", {"loop": 1, "n": 16},
                             backend="percycle")
        assert not is_batchable(request)
        with pytest.raises(ValueError, match="not batchable"):
            run_batched_campaign([request])

    def test_broken_group_degrades_to_task_error(self, tmp_path):
        """A params dict whose kernel build raises degrades each request
        to a deterministic task_error record, like the orchestrator's
        quarantine -- never an exception out of the campaign."""
        requests = [RunRequest("livermore", {"loop": 999, "n": 16},
                               backend="soa")]
        run = run_batched_campaign(requests)
        assert not run.results[0].passed
        assert run.results[0].failure["kind"] == "task_error"

    def test_raw_backend_none_requests_adopt_the_session_default(self):
        """The README quickstart shape: raw ``RunRequest``s with no
        backend handed straight to ``run_many`` must batch under the
        session default, not fall back to the registry default."""
        requests = [RunRequest("livermore", {"loop": 1, "n": 16,
                                             "warm": True},
                               config={"fpu_latency": latency})
                    for latency in (1, 2)]
        session = BatchSession()
        results = session.run_many(requests)
        assert all(sidecar["batched"] is True
                   for sidecar in session.last_campaign.sidecars)
        for request, result in zip(requests, results):
            assert result.backend == "soa"
            scalar = api.execute_request(
                RunRequest(request.workload, request.params,
                           config=request.config, backend="soa"))
            assert result.metrics == scalar.metrics
            assert result.key == scalar.key

    def test_an_explicit_request_backend_still_wins(self):
        request = RunRequest("livermore", {"loop": 1, "n": 16},
                             backend="percycle")
        session = BatchSession()
        results = session.run_many([request])
        assert results[0].backend == "percycle"
        assert session.last_campaign.sidecars[0].get("batched") is None

    def test_session_merges_batched_and_orchestrated_requests(self):
        requests = _campaign_requests()[:2] + [
            RunRequest("fib", {"count": 8})]
        session = BatchSession()
        results = session.run_many(requests)
        assert [r.params for r in results] == [r.params for r in requests]
        campaign = session.last_campaign
        assert campaign.sidecars[0].get("batched") is True
        assert campaign.sidecars[2].get("batched") is None
        scalar = api.execute_request(requests[2])
        assert results[2].metrics == scalar.metrics


class TestRestoreWords:
    def test_prefix_restore_rewinds_only_the_writable_prefix(self):
        memory = Memory()
        for index in range(6):
            memory.write(8 * index, float(index))
        template = list(memory.words)
        prefix = template[:3]
        memory.write(0, -1.0)
        memory.write(16, 99.5)
        _restore_words(memory, template, prefix)
        assert memory.words == template

    def test_length_change_falls_back_to_the_full_image(self):
        memory = Memory()
        memory.write(0, 1.0)
        template = list(memory.words)
        memory.write(8 * (len(template) + 4), 2.0)   # the memory grew
        assert len(memory.words) != len(template)
        _restore_words(memory, template, template[:1])
        assert memory.words == template
