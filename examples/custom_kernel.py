#!/usr/bin/env python
"""Writing your own kernel with the Mahler-style vector builder.

Implements a polynomial evaluator -- ``out[i] = c3*x^3 + c2*x^2 + c1*x +
c0`` by Horner's rule -- through :class:`repro.vectorize.
VectorKernelBuilder`: strip-mined loops, register-group allocation, and
the stride bits all fall out of the builder, and the result is checked
against a host-Python reference.

Run:  python examples/custom_kernel.py
"""

from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory
from repro.vectorize.builder import VectorKernelBuilder
from repro.workloads.common import Lcg

N = 100
COEFFICIENTS = [0.5, -1.25, 2.0, 0.75]  # c0..c3


def build(memory, x_addr, out_addr, coeff_addr):
    pb = ProgramBuilder()
    vb = VectorKernelBuilder(pb, vl=8)
    x = vb.array(x_addr)
    out = vb.array(out_addr)
    coeffs = vb.array(coeff_addr)
    c0 = vb.scalar_load(coeffs, 0)
    c1 = vb.scalar_load(coeffs, 1)
    c2 = vb.scalar_load(coeffs, 2)
    c3 = vb.scalar_load(coeffs, 3)

    def body(vl):
        xv = vb.vload(x, 0, vl=vl)
        # Horner: ((c3*x + c2)*x + c1)*x + c0
        acc = vb.mul(xv, c3)
        acc = vb.add(acc, c2, into=acc)
        acc = vb.mul(acc, xv, into=acc)
        acc = vb.add(acc, c1, into=acc)
        acc = vb.mul(acc, xv, into=acc)
        acc = vb.add(acc, c0, into=acc)
        vb.vstore(out, acc)

    vb.strip_loop(N, body)
    return pb.build()


def main():
    rng = Lcg(7)
    values = rng.floats(N, -2.0, 2.0)

    memory = Memory()
    arena = Arena(memory, base=256)
    x_addr = arena.alloc_array(values)
    out_addr = arena.alloc(N)
    coeff_addr = arena.alloc_array(COEFFICIENTS)

    program = build(memory, x_addr, out_addr, coeff_addr)
    machine = MultiTitan(program, memory=memory,
                         config=MachineConfig(strict_hazards=True))
    cold = machine.run()

    c0, c1, c2, c3 = COEFFICIENTS
    expected = [((c3 * v + c2) * v + c1) * v + c0 for v in values]
    got = memory.read_block(out_addr, N)
    worst = max(abs(g - e) for g, e in zip(got, expected))

    flops = 6 * N
    print("polynomial kernel over %d elements" % N)
    print("  instructions executed :", cold.stats.instructions)
    print("  cycles (cold cache)   :", cold.completion_cycle)
    print("  MFLOPS at 40 ns       : %.2f" % cold.mflops(flops))
    print("  cache hit rate        : %.1f%%" % (100 * machine.dcache.hit_rate))
    print("  worst |error|         : %.3g" % worst)
    print("  strict hazard checks  : clean")
    assert worst < 1e-12


if __name__ == "__main__":
    main()
