#!/usr/bin/env python
"""Interrupts and long-running vectors (section 2.3.1).

"Note that vector ALU instructions may continue long after an interrupt.
For example in the case of vector recursion (e.g., r[a] := r[a-1] +
r[a-2]) of length 16, the last element would be written 48 cycles later,
even if an interrupt occurred in the meantime."

This example launches exactly that 16-element recurrence, interrupts the
CPU two cycles in, runs a handler while the vector keeps issuing, and
shows the last element landing at cycle 48 -- then renders the traced
timeline.

Run:  python examples/interrupt_latency.py
"""

from repro.analysis.timeline import element_issue_cycles, render_timeline
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder


def main():
    b = ProgramBuilder()
    done = b.label("done")
    b.fadd(2, 1, 0, vl=16)       # r[a] := r[a-1] + r[a-2], length 16
    b.j(done)
    handler = b.here("handler")
    for _ in range(4):
        b.addi(3, 3, 1)          # handler work on the CPU
    b.rfe()
    b.place(done)
    b.halt()

    machine = MultiTitan(b.build(), config=MachineConfig(model_ibuffer=False,
                                                         trace=True))
    machine.fpu.regs.write(0, 1.0)
    machine.fpu.regs.write(1, 1.0)
    machine.schedule_interrupt(2, handler.index)
    result = machine.run()

    issues = element_issue_cycles(machine.trace, seq=0)
    print("16-element vector recursion with an interrupt at cycle 2")
    print("  handler iterations executed :", machine.iregs[3])
    print("  element issue cycles        :", issues)
    print("  last element written at     :", issues[-1] + 3,
          "(paper: 48 cycles)")
    print("  total completion            :", result.completion_cycle)
    print()
    print(render_timeline(machine.trace))
    print()
    print("The chained vector occupies the ALU instruction register for")
    print("all 48 cycles; the handler's integer work rides along on the")
    print("CPU, and a handler FPU ALU instruction would simply queue.")


if __name__ == "__main__":
    main()
