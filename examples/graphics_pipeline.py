#!/usr/bin/env python
"""The paper's graphics motivation: transforming a 3-D model.

Section 2.2.2 argues that "many applications will always have very short
vectors -- for example, 3-D graphics transforms are expressed as the
multiplication of a 4 element vector by a 4x4 transformation matrix."
This example pushes a small wireframe cube through a rotation+translation
matrix using the Figure 13 code sequence, reproducing the paper's 35-cycle
latency and 20 MFLOPS, then streams all vertices to show the sustained
rate.

Run:  python examples/graphics_pipeline.py
"""

import math

from repro.workloads.graphics import (
    FIGURE13_CYCLES,
    reference_transform,
    run_transform,
)

# A unit cube in homogeneous coordinates.
CUBE = [[float(x), float(y), float(z), 1.0]
        for x in (0, 1) for y in (0, 1) for z in (0, 1)]


def rotation_z(theta, translate=(0.5, -0.25, 2.0)):
    c, s = math.cos(theta), math.sin(theta)
    tx, ty, tz = translate
    return [[c, -s, 0.0, tx],
            [s, c, 0.0, ty],
            [0.0, 0.0, 1.0, tz],
            [0.0, 0.0, 0.0, 1.0]]


def main():
    matrix = rotation_z(math.pi / 6)

    single = run_transform(matrix=matrix, points=[CUBE[7]])
    print("one vertex:")
    print("  cycles  = %d (paper: %d)" % (single.cycles, FIGURE13_CYCLES))
    print("  latency = %.2f us at 40 ns (paper: 1.4 us)"
          % (single.cycles * 40e-3))
    print("  MFLOPS  = %.1f (paper: 20)" % single.mflops)

    stream = run_transform(matrix=matrix, points=CUBE)
    print("\n%d-vertex stream:" % len(CUBE))
    print("  cycles  = %d (%.1f per vertex)"
          % (stream.cycles, stream.cycles / len(CUBE)))
    print("  MFLOPS  = %.1f sustained" % stream.mflops)

    print("\ntransformed cube (simulated vs host):")
    for point, got in zip(CUBE, stream.result):
        want = reference_transform(matrix, point)
        match = all(abs(g - w) < 1e-12 for g, w in zip(got, want))
        print("  %s -> [%s]  %s"
              % (point, ", ".join("%7.3f" % v for v in got),
                 "ok" if match else "MISMATCH"))


if __name__ == "__main__":
    main()
