#!/usr/bin/env python
"""A Figure-14-style survey of the Livermore Loops.

Runs a representative subset of the 24 kernels cold and warm, prints the
measured MFLOPS beside the paper's published MultiTitan columns, and
reports the scalar-vs-vector speedup for the vectorized loops.

Run the full 24-loop experiment with:
    pytest benchmarks/bench_fig14_livermore.py --benchmark-only -s

Run:  python examples/livermore_survey.py [loops...]
"""

import sys

from repro.analysis.report import render_table
from repro.baselines.reference_data import FIGURE14_MFLOPS
from repro.workloads.common import run_kernel
from repro.workloads.livermore import KERNELS, VECTORIZED_LOOPS, build_loop, measure_loop

DEFAULT_LOOPS = (1, 3, 5, 7, 11, 13, 16, 21, 22, 24)


def main(loops):
    rows = []
    for loop in loops:
        measurement = measure_loop(loop)
        if not measurement.passed:
            raise SystemExit("loop %d failed its numeric check: %s"
                             % (loop, measurement.check_error))
        cold_paper, warm_paper, _, _ = FIGURE14_MFLOPS[loop]
        if loop in VECTORIZED_LOOPS:
            scalar = run_kernel(build_loop(loop, coding="scalar"), warm=True)
            speedup = "%.2fx" % (measurement.warm_cycles
                                 and scalar.cycles / measurement.warm_cycles)
        else:
            speedup = "(scalar)"
        rows.append([loop, KERNELS[loop].description,
                     measurement.cold_mflops, cold_paper,
                     measurement.warm_mflops, warm_paper, speedup])
    print(render_table(
        ["loop", "kernel", "cold", "paper", "warm", "paper", "vec speedup"],
        rows, title="Livermore Loops, MFLOPS at 40 ns (measured vs WRL 89/8)"))
    print()
    print("All numeric results are checked against pure-Python references;")
    print("absolute MFLOPS differ from the paper (different codings and")
    print("problem sizes) while the shape -- warm >> cold, loops 1-12 >>")
    print("13-24, modest vectorized speedups -- reproduces.")


if __name__ == "__main__":
    selected = [int(arg) for arg in sys.argv[1:]] or list(DEFAULT_LOOPS)
    main(selected)
