#!/usr/bin/env python
"""The Mahler-flavored expression front end, end to end.

Writes Livermore loop 1 and a dot product as plain Python expressions,
compiles them to strip-mined MultiTitan code, runs the load scheduler
pass, and times both versions -- every result self-checked against the
expression's own Python evaluation.

Run:  python examples/expression_kernels.py
"""

from repro.vectorize.ir import Kernel
from repro.vectorize.scheduler import schedule_loads, schedule_report
from repro.workloads.common import Lcg


def livermore_loop1():
    rng = Lcg(42)
    n = 100
    data = {"y": rng.floats(n), "z": rng.floats(n + 11)}
    params = {"q": 0.5, "r": 0.25, "t": 0.125}

    k = Kernel(vl=8)
    y, z = k.input("y"), k.input("z")
    q, r, t = k.param("q"), k.param("r"), k.param("t")
    x = k.output("x")
    k.assign(x, q + y[0] * (r * z[10] + t * z[11]))

    compiled = k.compile(n=n, data=data, params=params)
    outcome = compiled.run()
    assert outcome.passed, outcome.check_error
    print("Livermore loop 1 as an expression:")
    print("  x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])")
    print("  %d elements in %d cycles (%.2f MFLOPS at 40 ns), self-checked"
          % (n, outcome.cycles, 5 * n / (outcome.cycles * 40e-3)))

    before = compiled.program
    compiled.program = schedule_loads(before)
    report = schedule_report(before, compiled.program)
    rerun = compiled.run()
    assert rerun.passed, rerun.check_error
    print("  after the load-scheduler pass: %d cycles (%d loads moved)"
          % (rerun.cycles, report["loads_moved"]))
    print()


def dot_product():
    rng = Lcg(7)
    n = 128
    data = {"a": rng.floats(n), "b": rng.floats(n)}

    k = Kernel(vl=8)
    a, b = k.input("a"), k.input("b")
    k.reduce_sum(a[0] * b[0], name="dot")
    outcome = k.compile(n=n, data=data).run()
    assert outcome.passed, outcome.check_error
    direct = sum(x * y for x, y in zip(data["a"], data["b"]))
    print("dot product over %d elements:" % n)
    print("  machine: %.15f" % outcome.sums["dot"])
    print("  python : %.15f" % direct)
    print("  %d cycles -- the reduction stays vectorized (strip-halving"
          % outcome.cycles)
    print("  trees through the unified register file)")
    print()


def division_expression():
    rng = Lcg(9)
    n = 40
    data = {"u": rng.floats(n, 0.1, 0.9), "v": rng.floats(n, 0.5, 1.0)}

    k = Kernel(vl=4)
    u, v = k.input("u"), k.input("v")
    y = k.output("y")
    k.assign(y, u[0] / (v[0] + 1.0))
    outcome = k.compile(n=n, data=data).run()
    assert outcome.passed, outcome.check_error
    print("division expression (u / (v + 1)):")
    print("  '/' expands to the six-operation reciprocal/Newton schedule")
    print("  %d elements in %d cycles, max error vs Python: ~1 ulp"
          % (n, outcome.cycles))


if __name__ == "__main__":
    livermore_loop1()
    dot_product()
    division_expression()
