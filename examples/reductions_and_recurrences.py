#!/usr/bin/env python
"""Reductions and recurrences: what the unified register file buys.

Reproduces Figures 5-8 (three ways to sum eight elements; Fibonacci as a
single vector instruction) and contrasts each with a classical vector
register machine, where reductions and recurrences round-trip through a
separate scalar unit.

Run:  python examples/reductions_and_recurrences.py
"""

from repro.analysis.report import render_table
from repro.baselines.classical import ClassicalVectorMachine
from repro.workloads.fib import fibonacci_reference, run_fibonacci
from repro.workloads.reductions import run_all


def reductions():
    print("Summing 8 elements (Figures 5-7)")
    outcomes = run_all()
    rows = []
    for name, outcome in outcomes.items():
        rows.append([name, outcome.cycles, outcome.instructions_transferred,
                     outcome.free_cpu_cycles, outcome.total])
    classical = ClassicalVectorMachine()
    classical.vload(0, [float(i + 1) for i in range(8)])
    classical.reset_cycles()
    total = classical.sum_reduce(0)
    rows.append(["classical machine", classical.cycles,
                 "15 (moves+adds)", 0, total])
    print(render_table(
        ["strategy", "cycles", "CPU instrs", "CPU-free cycles", "sum"],
        rows))
    print()
    print("The vector tree matches the scalar tree's 12 cycles with three")
    print("instructions instead of seven, leaving 9 cycles for the CPU to")
    print("load the next row of a matrix multiply in parallel.")
    print()


def recurrences():
    print("Fibonacci as a vector (Figure 8)")
    outcome = run_fibonacci(10)
    print("  R2 := R1 + R0 (length 8):", outcome.cycles, "cycles,",
          outcome.instructions_transferred, "instruction")
    print("  values:", [int(v) for v in outcome.values])
    assert outcome.values == fibonacci_reference(10)

    classical = ClassicalVectorMachine()
    classical.first_order_recurrence(1.0, [1.0] * 8)
    print("  classical machine (scalar loop):", classical.cycles, "cycles")
    print()
    print("Arbitrary data dependencies between the elements of one vector")
    print("are legal because every element issues through the ordinary")
    print("scalar scoreboard -- a classical machine forbids this outright.")


if __name__ == "__main__":
    reductions()
    recurrences()
