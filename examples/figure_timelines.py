#!/usr/bin/env python
"""Redraw the paper's timing figures from live simulation traces.

Figures 5-8 and 13 of WRL 89/8 are hand-drawn pipeline diagrams; this
example re-derives them by running the corresponding code with tracing
enabled and rendering the recorded events.

Run:  python examples/figure_timelines.py
"""

from repro.analysis.timeline import render_timeline
from repro.cpu.machine import MachineConfig, MultiTitan
from repro.cpu.program import ProgramBuilder
from repro.mem.memory import Arena, Memory, WORD_BYTES


def traced(build, setup=None, memory=None):
    b = ProgramBuilder()
    build(b)
    machine = MultiTitan(b.build(), memory=memory,
                         config=MachineConfig(model_ibuffer=False, trace=True))
    if setup:
        setup(machine)
    result = machine.run()
    return machine.trace, result


def show(title, paper_cycles, build, setup=None, memory=None):
    trace, result = traced(build, setup, memory)
    print("%s  (measured %d cycles, paper %d)"
          % (title, result.completion_cycle, paper_cycles))
    print(render_timeline(trace))
    print()


def values_1_to_8(machine):
    machine.fpu.regs.write_group(0, [float(i + 1) for i in range(8)])


def main():
    show("Figure 5: summing with a tree of scalar operations", 12,
         lambda b: [b.fadd(8, 0, 1), b.fadd(9, 2, 3), b.fadd(10, 4, 5),
                    b.fadd(11, 6, 7), b.fadd(12, 8, 9), b.fadd(13, 10, 11),
                    b.fadd(14, 12, 13)],
         values_1_to_8)

    show("Figure 6: summing with a linear vector", 24,
         lambda b: b.fadd(9, 8, 0, vl=8),
         values_1_to_8)

    show("Figure 7: summing with a tree of vector operations", 12,
         lambda b: [b.fadd(8, 0, 4, vl=4), b.fadd(12, 8, 10, vl=2),
                    b.fadd(14, 12, 13)],
         values_1_to_8)

    show("Figure 8: vectorization of recurrences (Fibonacci)", 24,
         lambda b: b.fadd(2, 1, 0, vl=8),
         lambda m: (m.fpu.regs.write(0, 1.0), m.fpu.regs.write(1, 1.0)))

    # Figure 13: the graphics transform with loads and stores.
    memory = Memory()
    arena = Arena(memory, base=64)
    point = arena.alloc_array([1.0, 2.0, 3.0, 1.0])
    out = arena.alloc(4)

    def build(b):
        b.fload(32, 1, 0)
        b.fmul(16, 32, 0, vl=4, sra=False)
        b.fload(33, 1, 8)
        b.fmul(20, 33, 4, vl=4, sra=False)
        b.fload(34, 1, 16)
        b.fmul(24, 34, 8, vl=4, sra=False)
        b.fload(35, 1, 24)
        b.fmul(28, 35, 12, vl=4, sra=False)
        b.fadd(16, 16, 20, vl=4)
        b.fadd(24, 24, 28, vl=4)
        b.fadd(36, 16, 24, vl=4)
        for i in range(4):
            b.fstore(36 + i, 2, i * WORD_BYTES)

    def setup(machine):
        machine.iregs[1] = point
        machine.iregs[2] = out
        for column in range(4):
            for row in range(4):
                machine.fpu.regs.write(column * 4 + row,
                                       float(row * 4 + column + 1))
        machine.dcache.warm_range(point, 64)

    show("Figure 13: graphics transform", 35, build, setup, memory)


if __name__ == "__main__":
    main()
