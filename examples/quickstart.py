#!/usr/bin/env python
"""Quickstart: assemble and run a program on the MultiTitan simulator.

Demonstrates the three public entry points -- the textual assembler, the
ProgramBuilder DSL, and the cycle-accurate machine -- on a vector/scalar
mix that a classical vector machine could not express without moving data
between register files.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, Memory, MultiTitan, ProgramBuilder, assemble
from repro.mem.memory import Arena, WORD_BYTES


def from_assembly():
    """A dot product written in assembly text.

    The vector multiply leaves its elements in ordinary registers; the
    tree of adds then reduces *the same registers* with scalar/short
    vector operations -- the unified vector/scalar register file at work.
    """
    source = """
        ; R0..R3 and R8..R11 hold the input vectors (preloaded below).
        fmul f16, f0, f8, vl=4      ; elementwise products
        fadd f20, f16, f18, vl=2    ; pairwise sums
        fadd f24, f20, f21          ; final scalar add
        halt
    """
    machine = MultiTitan(assemble(source),
                         config=MachineConfig(model_ibuffer=False))
    machine.fpu.regs.write_group(0, [1.0, 2.0, 3.0, 4.0])
    machine.fpu.regs.write_group(8, [10.0, 20.0, 30.0, 40.0])
    result = machine.run()
    print("dot product   =", machine.fpu.regs.read(24))
    print("cycles        =", result.completion_cycle)
    print("FPU elements  =", machine.fpu.stats.elements_issued)
    print()


def from_builder():
    """The same machine driven from the ProgramBuilder DSL, with memory."""
    memory = Memory()
    arena = Arena(memory, base=256)
    a = arena.alloc_array([1.5, 2.5, 3.5, 4.5])
    out = arena.alloc(4)

    b = ProgramBuilder()
    for i in range(4):
        b.fload(i, 1, i * WORD_BYTES)       # load the vector
    b.fadd(8, 0, 0, vl=4)                   # double every element
    for i in range(4):
        b.fstore(8 + i, 2, i * WORD_BYTES)  # store the result
    program = b.build()

    print(program.disassemble())
    machine = MultiTitan(program, memory=memory,
                         config=MachineConfig(model_ibuffer=False))
    machine.iregs[1] = a
    machine.iregs[2] = out
    machine.dcache.warm_range(a, 64)
    result = machine.run()
    print("doubled       =", memory.read_block(out, 4))
    print("cycles        =", result.completion_cycle,
          "(loads and stores overlap the vector issue)")


if __name__ == "__main__":
    from_assembly()
    from_builder()
